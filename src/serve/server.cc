#include "serve/server.hh"

#include <algorithm>
#include <csignal>
#include <future>
#include <sstream>
#include <utility>

#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "core/lane_batch.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "telemetry/telemetry.hh"
#include "util/keyvalue.hh"
#include "util/logging.hh"
#include "util/sim_time.hh"

namespace ecolo::serve {

namespace {

/** Accept-poll period; bounds drain latency of an idle acceptor. */
constexpr int kAcceptPollMs = 200;

bool
isKnownPolicy(const std::string &name)
{
    return name == "standby" || name == "random" || name == "myopic" ||
           name == "foresighted" || name == "oneshot";
}

RpcErrorCode
toRpcError(util::ErrorCode code)
{
    switch (code) {
    case util::ErrorCode::ParseError:
        return RpcErrorCode::ParseError;
    case util::ErrorCode::ValidationError:
        return RpcErrorCode::ValidationError;
    default:
        return RpcErrorCode::Internal;
    }
}

void
replyError(util::TcpConnection &conn, std::uint64_t request_id,
           RpcErrorCode code, const std::string &message)
{
    (void)writeFrame(conn, MessageType::ErrorReply, request_id,
                     encodeError(ErrorPayload{code, message}));
}

/**
 * Everything a batchable admitted run needs, parked in the scheduler
 * queue as the BatchItem payload until a dispatching worker packs it
 * into a LaneBatchRunner lane.
 */
struct PendingRun
{
    std::shared_ptr<util::TcpConnection> conn; //!< null: journal replay
    std::uint64_t id = 0;
    SubmitPayload request;
    core::SimulationConfig config;
    CacheKey key;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point received;
    /** Gate the submit handler opens after writing ACCEPTED. */
    std::shared_future<void> acceptedSent;
};

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_([&] {
          Scheduler::Options o;
          o.numWorkers = options_.numWorkers;
          o.maxQueued = options_.maxQueued;
          o.batchBoostEvery = options_.batchBoostEvery;
          if (options_.batching) {
              o.batchMaxLanes = options_.batchMaxLanes;
              o.batchWindow =
                  std::chrono::milliseconds(options_.batchWindowMs);
              o.batchExecutor =
                  [this](std::vector<Scheduler::BatchItem> &items) {
                      runSimulationBatch(items);
                  };
          }
          return o;
      }()),
      cache_(options_.cacheMaxBytes, options_.cacheMaxEntries),
      setupCache_(options_.batching
                      ? std::make_shared<core::SetupCache>()
                      : nullptr)
{}

Server::~Server()
{
    requestDrain();
    waitUntilStopped();
}

util::Result<void>
Server::start()
{
    // A client that resets mid-response must cost this process an EPIPE
    // error return (writes already use MSG_NOSIGNAL, this covers any
    // other stray pipe write), never a fatal signal.
    std::signal(SIGPIPE, SIG_IGN);

    if (!options_.journalDir.empty()) {
        auto journal = RequestJournal::open(options_.journalDir);
        if (!journal)
            return journal.error();
        journal_ = std::make_unique<RequestJournal>(journal.take());
        std::uint64_t max_id = 0;
        for (const RequestJournal::PendingRequest &p :
             journal_->recovered())
            max_id = std::max(max_id, p.id);
        // Fresh ids must stay above every journaled id so replayed and
        // new requests never collide in the scheduler or the journal.
        if (max_id >= nextRequestId_.load(std::memory_order_relaxed))
            nextRequestId_.store(max_id + 1, std::memory_order_relaxed);
        journalRecovered_.store(journal_->recovered().size(),
                                std::memory_order_relaxed);
    }

    auto listener = util::TcpListener::listenLoopback(options_.port);
    if (!listener)
        return listener.error();
    listener_ = listener.take();
    port_ = listener_.port();
    running_.store(true, std::memory_order_release);
    if (journal_)
        replayRecovered();
    schedulerThread_ = std::thread([this] { scheduler_.run(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    ecolo::inform("edgetherm-serve listening on 127.0.0.1:", port_, " (",
                  options_.numWorkers, " workers, queue bound ",
                  options_.maxQueued, ")");
    return {};
}

void
Server::requestDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
        return;
    // With a spool dir, in-flight runs stop at the next simulated
    // minute and checkpoint; without one they run to their horizon.
    scheduler_.drain(!options_.drainCheckpointDir.empty());
}

void
Server::waitUntilStopped()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (stopped_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (schedulerThread_.joinable())
        schedulerThread_.join();
    {
        std::lock_guard<std::mutex> handlers_lock(handlersMutex_);
        for (Handler &handler : handlers_) {
            if (handler.thread.joinable())
                handler.thread.join();
        }
        handlers_.clear();
    }
    running_.store(false, std::memory_order_release);
    stopped_ = true;
}

void
Server::reapHandlerThreadsLocked()
{
    auto it = handlers_.begin();
    while (it != handlers_.end()) {
        if (it->done->load(std::memory_order_acquire)) {
            it->thread.join();
            it = handlers_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptLoop()
{
    while (!draining_.load(std::memory_order_acquire)) {
        auto accepted = listener_.acceptFor(kAcceptPollMs);
        if (!accepted) {
            if (!draining_.load(std::memory_order_acquire))
                ecolo::warn("serve: accept failed: ",
                            accepted.error().message);
            break;
        }
        if (!accepted.value().has_value())
            continue; // poll timeout: re-check the drain flag
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<util::TcpConnection>(
            std::move(*accepted.value()));
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread([this, conn, done] {
            handleConnection(conn);
            done->store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(handlersMutex_);
        reapHandlerThreadsLocked();
        handlers_.push_back(Handler{std::move(thread), std::move(done)});
    }
    // Late connects get a hard refusal instead of an unanswered backlog.
    listener_.close();
}

void
Server::handleConnection(std::shared_ptr<util::TcpConnection> conn)
{
    (void)conn->setReceiveTimeout(options_.receiveTimeoutMs);
    auto frame = readFrame(*conn);
    if (!frame) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, 0, RpcErrorCode::ParseError,
                   frame.error().message);
        return;
    }

    switch (frame.value().type) {
    case MessageType::Submit:
        handleSubmit(conn, frame.value());
        return;
    case MessageType::Cancel: {
        auto payload = decodeCancel(frame.value().payload);
        if (!payload) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            replyError(*conn, 0, RpcErrorCode::ParseError,
                       payload.error().message);
            return;
        }
        const std::uint64_t target = payload.value().targetId;
        const bool found =
            scheduler_.cancel(target, CancelReason::Client);
        (void)writeFrame(*conn, MessageType::CancelAck, target,
                         encodeCancelAck(CancelAckPayload{found}));
        return;
    }
    case MessageType::Stats:
        (void)writeFrame(*conn, MessageType::StatsReport, 0,
                         encodeStatsReport(
                             StatsReportPayload{metricsJson()}));
        return;
    case MessageType::Shutdown:
        // Ack first: requestDrain() closes the listener side of the
        // world, but this connection stays answerable.
        (void)writeFrame(*conn, MessageType::ShutdownAck, 0, "");
        requestDrain();
        return;
    default:
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, frame.value().requestId,
                   RpcErrorCode::ParseError,
                   std::string("unexpected client frame type ") +
                       toString(frame.value().type));
        return;
    }
}

util::Result<PreparedSubmit>
prepareSubmitPayload(SubmitPayload &request,
                     std::int64_t max_horizon_minutes)
{
    if (request.clientId.empty())
        request.clientId = "anon";

    // Validate everything up front: a request that can't run is
    // answered here and never touches the scheduler or the cache.
    if (!isKnownPolicy(request.policy)) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "unknown policy '", request.policy,
                           "' (expected standby|random|myopic|"
                           "foresighted|oneshot)");
    }
    if (request.horizonMinutes <= 0 ||
        request.horizonMinutes > max_horizon_minutes) {
        return ECOLO_ERROR(util::ErrorCode::ValidationError,
                           "horizon must be in [1, ",
                           max_horizon_minutes, "] minutes, got ",
                           request.horizonMinutes);
    }
    std::istringstream scenario_stream(request.scenarioText);
    auto kv = KeyValueConfig::tryParse(scenario_stream,
                                       "<request scenario>");
    if (!kv)
        return kv.error();
    PreparedSubmit prepared;
    prepared.config = core::SimulationConfig::paperDefault();
    ECOLO_TRY_VOID(core::tryApplyScenario(kv.value(), prepared.config));
    ECOLO_TRY_VOID(prepared.config.validated());
    if (!request.paramSet) {
        request.param = core::defaultPolicyParam(request.policy);
        request.paramSet = true;
    }

    // Content address: the canonical scenario (sorted key=value pairs,
    // comments and ordering already gone) + policy + param + horizon +
    // the thermal kernel the applied config resolves to + engine schema
    // version. The kernel is hashed explicitly so a mode switch (even
    // via a changed server default, with no thermal.kernel in the
    // scenario text) can never serve a stale cross-kernel result.
    prepared.key =
        makeCacheKey(kv.value(), request.policy, request.param,
                     request.horizonMinutes, prepared.config.thermalMode);
    prepared.lane = request.priority == Priority::Batch
                        ? Lane::Batch
                        : Lane::Interactive;
    return prepared;
}

util::Result<PreparedSubmit>
Server::prepareRequest(SubmitPayload &request)
{
    return prepareSubmitPayload(request, options_.maxHorizonMinutes);
}

void
Server::handleSubmit(std::shared_ptr<util::TcpConnection> conn,
                     const Frame &frame)
{
    const auto received = std::chrono::steady_clock::now();
    auto decoded = decodeSubmit(frame.payload);
    if (!decoded) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        replyError(*conn, 0, RpcErrorCode::ParseError,
                   decoded.error().message);
        return;
    }
    SubmitPayload request = decoded.take();
    auto prepared = prepareRequest(request);
    if (!prepared) {
        replyError(*conn, 0, toRpcError(prepared.error().code),
                   prepared.error().message);
        return;
    }
    const CacheKey key = prepared.value().key;
    const Lane lane = prepared.value().lane;
    const std::uint64_t id =
        nextRequestId_.fetch_add(1, std::memory_order_relaxed);

    // The deadline clock starts at frame receipt on the server; it is
    // carried into the scheduler so queue time counts against it.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (frame.deadlineMs > 0)
        deadline = received + std::chrono::milliseconds(frame.deadlineMs);

    if (auto hit = cache_.lookup(key); hit.has_value()) {
        (void)writeFrame(*conn, MessageType::Accepted, id,
                         encodeAccepted(AcceptedPayload{true, 0}));
        (void)writeFrame(*conn, MessageType::ResultReport, id,
                         encodeResult(ResultPayload{*hit}));
        recordLatency(lane, received);
        return;
    }

    // Write-ahead: the admission is durable before the client can learn
    // about it, so a kill -9 between here and the RESULT frame replays
    // the run on restart.
    if (journal_) {
        if (auto logged = journal_->recordAdmit(id, request); !logged) {
            journalAppendFailures_.fetch_add(1,
                                             std::memory_order_relaxed);
            replyError(*conn, id, RpcErrorCode::Internal,
                       "request journal append failed: " +
                           logged.error().message);
            return;
        }
    }

    // The job must not stream before this handler has written ACCEPTED
    // (two threads interleaving frames on one socket would corrupt the
    // stream), so it waits on a gate the handler opens after replying.
    auto gate = std::make_shared<std::promise<void>>();
    std::shared_future<void> accepted_sent = gate->get_future().share();
    Scheduler::SubmitResult submitted;
    if (setupCache_) {
        auto run = std::make_shared<PendingRun>();
        run->conn = conn;
        run->id = id;
        run->request = request;
        run->config = prepared.value().config;
        run->config.setupCache = setupCache_;
        run->key = key;
        run->deadline = deadline;
        run->received = received;
        run->acceptedSent = accepted_sent;
        // Key first: std::move(run) below may be evaluated before a
        // sibling argument (order is unspecified).
        const std::uint64_t batch_key = core::laneCompatibilityKey(
            run->config, request.horizonMinutes);
        submitted = scheduler_.submitBatchable(id, lane,
                                               request.clientId,
                                               batch_key,
                                               std::move(run), deadline);
    } else {
        auto job = [this, conn, id, request,
                    config = prepared.value().config, key, deadline,
                    received, accepted_sent](const CancelToken &token) {
            accepted_sent.wait();
            runSimulationJob(conn, id, request, config, key, token,
                             deadline, received);
        };
        submitted = scheduler_.submit(id, lane, request.clientId,
                                      std::move(job), deadline);
    }
    switch (submitted.admission) {
    case Scheduler::Admission::Admitted: {
        const std::uint32_t ahead =
            submitted.queueDepth > 0
                ? static_cast<std::uint32_t>(submitted.queueDepth - 1)
                : 0;
        (void)writeFrame(*conn, MessageType::Accepted, id,
                         encodeAccepted(AcceptedPayload{false, ahead}));
        gate->set_value();
        return;
    }
    case Scheduler::Admission::QueueFull:
        recordJournalOutcome(id, JournalOutcome::Bounced);
        (void)writeFrame(
            *conn, MessageType::RetryAfter, id,
            encodeRetryAfter(RetryAfterPayload{options_.retryAfterMs}));
        return;
    case Scheduler::Admission::Draining:
        recordJournalOutcome(id, JournalOutcome::Bounced);
        replyError(*conn, id, RpcErrorCode::Unavailable,
                   "server is draining; no new work accepted");
        return;
    }
}

void
Server::replayRecovered()
{
    for (const RequestJournal::PendingRequest &pending :
         journal_->recovered()) {
        SubmitPayload request = pending.request;
        auto prepared = prepareRequest(request);
        if (!prepared) {
            // A journaled request that no longer validates (e.g. a
            // schema change across the restart) is closed out, not
            // replayed forever.
            ecolo::warn("serve: journaled request ", pending.id,
                        " no longer valid: ", prepared.error().message);
            recordJournalOutcome(pending.id, JournalOutcome::Error);
            journalReplayed_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (cache_.lookup(prepared.value().key).has_value()) {
            recordJournalOutcome(pending.id, JournalOutcome::Completed);
            journalReplayed_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        const auto received = std::chrono::steady_clock::now();
        Scheduler::SubmitResult submitted;
        if (setupCache_) {
            auto run = std::make_shared<PendingRun>();
            run->id = pending.id;
            run->request = request;
            run->config = prepared.value().config;
            run->config.setupCache = setupCache_;
            run->key = prepared.value().key;
            run->received = received;
            const std::uint64_t batch_key = core::laneCompatibilityKey(
                run->config, request.horizonMinutes);
            submitted = scheduler_.submitBatchable(
                pending.id, prepared.value().lane, request.clientId,
                batch_key, std::move(run));
        } else {
            auto job = [this, id = pending.id, request,
                        config = prepared.value().config,
                        key = prepared.value().key,
                        received](const CancelToken &token) {
                runSimulationJob(nullptr, id, request, config, key,
                                 token, std::nullopt, received);
            };
            submitted =
                scheduler_.submit(pending.id, prepared.value().lane,
                                  request.clientId, std::move(job));
        }
        if (submitted.admission != Scheduler::Admission::Admitted) {
            // Stays pending in the journal; the next restart retries.
            ecolo::warn("serve: journal replay of request ", pending.id,
                        " refused (queue full); deferred to the next "
                        "restart");
        }
    }
    const std::size_t n = journal_->recovered().size();
    if (n > 0)
        ecolo::inform("edgetherm-serve: replaying ", n,
                      " journaled request(s)");
}

void
Server::recordLatency(Lane lane,
                      std::chrono::steady_clock::time_point received)
{
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - received)
            .count();
    latency_[static_cast<int>(lane)].record(us);
    telemetry::registry()
        .histogram(lane == Lane::Batch ? "serve.latency.batch_us"
                                       : "serve.latency.interactive_us")
        .add(us);
}

void
Server::recordJournalOutcome(std::uint64_t request_id,
                             JournalOutcome outcome)
{
    if (!journal_)
        return;
    if (auto logged = journal_->recordOutcome(request_id, outcome);
        !logged) {
        journalAppendFailures_.fetch_add(1, std::memory_order_relaxed);
        ecolo::warn("serve: journal outcome for request ", request_id,
                    " failed: ", logged.error().message);
    }
}

std::unique_ptr<core::Simulation>
Server::startSimulation(
    const std::shared_ptr<util::TcpConnection> &conn,
    std::uint64_t request_id, const SubmitPayload &request,
    const core::SimulationConfig &config, const CancelToken &token,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::chrono::steady_clock::time_point received)
{
    auto policy =
        core::tryMakePolicyByName(config, request.policy, request.param);
    if (!policy) {
        // Unreachable after prepareRequest's validation; fail loudly
        // rather than silently if the name sets ever diverge.
        if (conn)
            replyError(*conn, request_id, RpcErrorCode::Internal,
                       policy.error().message);
        recordJournalOutcome(request_id, JournalOutcome::Error);
        recordLatency(request.priority == Priority::Batch
                          ? Lane::Batch
                          : Lane::Interactive,
                      received);
        if (!conn)
            journalReplayed_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    auto sim = std::make_unique<core::Simulation>(config, policy.take());
    // The engine polls this once per simulated minute: cancellation and
    // the deadline share one cooperative mechanism. The clock check is
    // throttled -- steady_clock::now() per minute would dominate the
    // ~200 ns streaming slot loop.
    sim->setCancelCheck([token, deadline, calls = 0]() mutable {
        if (token.cancelled())
            return true;
        if (deadline && (++calls & 63) == 0 &&
            std::chrono::steady_clock::now() >= *deadline) {
            token.cancel(CancelReason::Deadline);
            return true;
        }
        return false;
    });
    return sim;
}

void
Server::runSimulationJob(
    std::shared_ptr<util::TcpConnection> conn, std::uint64_t request_id,
    const SubmitPayload &request, const core::SimulationConfig &config,
    const CacheKey &key, const CancelToken &token,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::chrono::steady_clock::time_point received)
{
    auto sim = startSimulation(conn, request_id, request, config, token,
                               deadline, received);
    if (!sim)
        return;

    const MinuteIndex horizon = request.horizonMinutes;
    while (sim->now() < horizon && !token.cancelled()) {
        const MinuteIndex chunk = std::min<MinuteIndex>(
            options_.statusEveryMinutes, horizon - sim->now());
        sim->run(chunk);
        // A failed STATUS write means the client went away; keep
        // simulating anyway so the completed run still fills the cache.
        if (conn && sim->now() < horizon && !token.cancelled())
            (void)writeFrame(*conn, MessageType::Status, request_id,
                             encodeStatus(
                                 StatusPayload{sim->now(), horizon}));
    }

    concludeSimulation(conn, request_id, request, config, key, token,
                       *sim, received);
}

void
Server::runSimulationBatch(std::vector<Scheduler::BatchItem> &items)
{
    struct Member
    {
        PendingRun *run = nullptr;
        CancelToken token;
        std::unique_ptr<core::Simulation> sim;
    };
    std::vector<Member> members;
    members.reserve(items.size());
    // The batch cannot touch any member's socket until every member's
    // submit handler has written its ACCEPTED frame (same gate the
    // scalar path waits on, per member).
    for (Scheduler::BatchItem &item : items) {
        auto *run = static_cast<PendingRun *>(item.payload.get());
        if (run->acceptedSent.valid())
            run->acceptedSent.wait();
        members.push_back(Member{run, item.token, nullptr});
    }

    // Lane packing: all members share a compatibility key, so they land
    // in one LaneBatchRunner group and advance through a single SoA
    // bank pass per slot. A member whose policy fails to build has
    // already been answered and simply takes no lane.
    core::LaneBatchRunner runner;
    for (Member &member : members) {
        member.sim = startSimulation(
            member.run->conn, member.run->id, member.run->request,
            member.run->config, member.token, member.run->deadline,
            member.run->received);
        if (member.sim)
            runner.add(*member.sim,
                       member.run->request.horizonMinutes);
    }

    // Same chunking as the scalar loop: STATUS frames land at the same
    // simulated-minute boundaries, and a lane that cancels or finishes
    // mid-chunk is retired by the runner exactly where sim.run would
    // have stopped. Cancellation is masked per-lane divergence: a
    // cancelled lane's batchmates keep advancing undisturbed.
    while (!runner.finished()) {
        runner.run(options_.statusEveryMinutes);
        for (Member &member : members) {
            if (!member.sim)
                continue;
            const MinuteIndex horizon =
                member.run->request.horizonMinutes;
            if (member.run->conn && member.sim->now() < horizon &&
                !member.token.cancelled())
                (void)writeFrame(
                    *member.run->conn, MessageType::Status,
                    member.run->id,
                    encodeStatus(
                        StatusPayload{member.sim->now(), horizon}));
        }
    }

    for (Member &member : members) {
        if (!member.sim)
            continue;
        concludeSimulation(member.run->conn, member.run->id,
                           member.run->request, member.run->config,
                           member.run->key, member.token, *member.sim,
                           member.run->received);
    }
}

void
Server::concludeSimulation(
    const std::shared_ptr<util::TcpConnection> &conn,
    std::uint64_t request_id, const SubmitPayload &request,
    const core::SimulationConfig &config, const CacheKey &key,
    const CancelToken &token, core::Simulation &sim,
    std::chrono::steady_clock::time_point received)
{
    const Lane lane = request.priority == Priority::Batch
                          ? Lane::Batch
                          : Lane::Interactive;
    // Every exit from this job is a terminal outcome: journal it, count
    // it against the lane's latency, and (replay jobs) tick the replay
    // counter -- the "never silence" half of the chaos invariant.
    const auto finish = [&](JournalOutcome outcome) {
        recordJournalOutcome(request_id, outcome);
        recordLatency(lane, received);
        if (!conn)
            journalReplayed_.fetch_add(1, std::memory_order_relaxed);
    };
    const MinuteIndex horizon = request.horizonMinutes;

    if (token.cancelled()) {
        if (token.reason() == CancelReason::Deadline) {
            deadlineExceeded_.fetch_add(1, std::memory_order_relaxed);
            if (conn)
                replyError(*conn, request_id,
                           RpcErrorCode::DeadlineExceeded,
                           "deadline exceeded after " +
                               std::to_string(sim.now()) + " of " +
                               std::to_string(horizon) +
                               " simulated minutes");
            finish(JournalOutcome::DeadlineExceeded);
        } else if (token.reason() == CancelReason::Drain &&
                   !options_.drainCheckpointDir.empty()) {
            const std::string path = options_.drainCheckpointDir +
                                     "/request-" +
                                     std::to_string(request_id) +
                                     ".ckpt";
            if (auto saved = core::saveSimulationCheckpoint(
                    path, sim, request.policy);
                !saved) {
                ecolo::warn("serve: drain checkpoint for request ",
                            request_id,
                            " failed: ", saved.error().message);
                if (conn)
                    replyError(*conn, request_id, RpcErrorCode::Internal,
                               "drain checkpoint failed: " +
                                   saved.error().message);
                finish(JournalOutcome::Error);
                return;
            }
            if (conn)
                (void)writeFrame(
                    *conn, MessageType::Drained, request_id,
                    encodeDrained(DrainedPayload{sim.now(), path}));
            finish(JournalOutcome::Drained);
        } else if (token.reason() == CancelReason::Drain) {
            if (conn)
                (void)writeFrame(
                    *conn, MessageType::Drained, request_id,
                    encodeDrained(DrainedPayload{sim.now(), ""}));
            // No checkpoint was spooled: the run is lost unless it is
            // journaled, in which case leaving it admit-only makes the
            // next start replay it.
            if (journal_)
                return;
            finish(JournalOutcome::Drained);
        } else {
            if (conn)
                (void)writeFrame(
                    *conn, MessageType::Cancelled, request_id,
                    encodeCancelled(CancelledPayload{sim.now()}));
            finish(JournalOutcome::Cancelled);
        }
        return;
    }

    std::ostringstream report_stream;
    core::ReportInputs inputs;
    inputs.policyName = request.policy;
    inputs.policyParameter = request.param;
    inputs.simulatedDays =
        static_cast<double>(horizon) / static_cast<double>(kMinutesPerDay);
    core::writeMarkdownReport(report_stream, config, sim.metrics(),
                              inputs);
    std::string report = report_stream.str();
    cache_.insert(key, report);
    if (conn)
        (void)writeFrame(*conn, MessageType::ResultReport, request_id,
                         encodeResult(ResultPayload{std::move(report)}));
    finish(JournalOutcome::Completed);
}

Server::JournalStats
Server::journalStats() const
{
    JournalStats stats;
    stats.recovered = journalRecovered_.load(std::memory_order_relaxed);
    stats.replayed = journalReplayed_.load(std::memory_order_relaxed);
    stats.pending = stats.recovered > stats.replayed
                        ? stats.recovered - stats.replayed
                        : 0;
    stats.appendFailures =
        journalAppendFailures_.load(std::memory_order_relaxed);
    return stats;
}

std::string
Server::metricsJson() const
{
    // Serving counters are authoritative in their own structs (alive
    // even with telemetry compiled out); the registry is only the dump
    // format, refreshed here.
    auto &reg = telemetry::registry();
    const ResultCache::Stats cache = cache_.stats();
    const Scheduler::Stats sched = scheduler_.stats();
    const auto set = [&reg](const char *name, double value) {
        reg.scalar(name).set(value);
    };
    set("serve.cache.hits", static_cast<double>(cache.hits));
    set("serve.cache.misses", static_cast<double>(cache.misses));
    set("serve.cache.evictions", static_cast<double>(cache.evictions));
    set("serve.cache.insertions", static_cast<double>(cache.insertions));
    set("serve.cache.oversize_rejected",
        static_cast<double>(cache.oversizeRejected));
    set("serve.cache.entries", static_cast<double>(cache.entries));
    set("serve.cache.bytes", static_cast<double>(cache.bytes));
    set("serve.requests.submitted",
        static_cast<double>(sched.submitted));
    set("serve.requests.admitted", static_cast<double>(sched.admitted));
    set("serve.requests.rejected_queue_full",
        static_cast<double>(sched.rejectedQueueFull));
    set("serve.requests.rejected_draining",
        static_cast<double>(sched.rejectedDraining));
    set("serve.requests.completed",
        static_cast<double>(sched.completed));
    set("serve.requests.cancelled",
        static_cast<double>(sched.cancelled));
    set("serve.dispatch.interactive",
        static_cast<double>(sched.dispatchedInteractive));
    set("serve.dispatch.batch", static_cast<double>(sched.dispatchedBatch));
    set("serve.batch.batches",
        static_cast<double>(sched.batchesDispatched));
    set("serve.batch.batched_requests",
        static_cast<double>(sched.batchedJobs));
    set("serve.batch.scalar_fallbacks",
        static_cast<double>(sched.batchScalarFallbacks));
    set("serve.batch.window_waits",
        static_cast<double>(sched.batchWindowWaits));
    set("serve.batch.max_occupancy",
        static_cast<double>(sched.batchMaxOccupancy));
    const telemetry::TailLatency::Snapshot occupancy =
        scheduler_.batchOccupancySnapshot();
    set("serve.batch.occupancy.count",
        static_cast<double>(occupancy.count));
    set("serve.batch.occupancy.mean", occupancy.mean);
    set("serve.batch.occupancy.p50", occupancy.p50);
    set("serve.batch.occupancy.p99", occupancy.p99);
    set("serve.batch.occupancy.max", occupancy.max);
    const telemetry::TailLatency::Snapshot window =
        scheduler_.batchWindowDelaySnapshot();
    set("serve.batch.window_delay.count",
        static_cast<double>(window.count));
    set("serve.batch.window_delay.mean_us", window.mean);
    set("serve.batch.window_delay.p99_us", window.p99);
    set("serve.batch.window_delay.max_us", window.max);
    const core::SetupCache::Counters setup = setupCacheCounters();
    set("serve.setup_cache.hits",
        static_cast<double>(setup.traceHits + setup.scaleHits +
                            setup.matrixHits +
                            setup.factorizationHits));
    set("serve.setup_cache.misses",
        static_cast<double>(setup.traceMisses + setup.scaleMisses +
                            setup.matrixMisses +
                            setup.factorizationMisses));
    set("serve.setup_cache.trace_hits",
        static_cast<double>(setup.traceHits));
    set("serve.setup_cache.factorization_hits",
        static_cast<double>(setup.factorizationHits));
    set("serve.queue.depth", static_cast<double>(sched.queuedNow));
    set("serve.queue.running", static_cast<double>(sched.runningNow));
    set("serve.connections.accepted",
        static_cast<double>(
            connectionsAccepted_.load(std::memory_order_relaxed)));
    set("serve.protocol.errors",
        static_cast<double>(
            protocolErrors_.load(std::memory_order_relaxed)));
    set("serve.requests.deadline_exceeded",
        static_cast<double>(
            deadlineExceeded_.load(std::memory_order_relaxed)));
    set("serve.requests.deadline_expired_queued",
        static_cast<double>(sched.deadlineExpiredQueued));
    const JournalStats journal = journalStats();
    set("serve.journal.recovered",
        static_cast<double>(journal.recovered));
    set("serve.journal.replayed", static_cast<double>(journal.replayed));
    set("serve.journal.pending", static_cast<double>(journal.pending));
    set("serve.journal.append_failures",
        static_cast<double>(journal.appendFailures));
    const auto set_lane = [&set](const char *prefix,
                                 const telemetry::TailLatency::Snapshot
                                     &snap) {
        const auto gauge = [&](const char *suffix, double value) {
            telemetry::registry()
                .scalar(std::string("serve.latency.") + prefix + "." +
                        suffix)
                .set(value);
        };
        gauge("count", static_cast<double>(snap.count));
        gauge("mean_us", snap.mean);
        gauge("jitter_us", snap.jitter);
        gauge("min_us", snap.min);
        gauge("max_us", snap.max);
        gauge("p50_us", snap.p50);
        gauge("p95_us", snap.p95);
        gauge("p99_us", snap.p99);
    };
    set_lane("interactive", latencySnapshot(Lane::Interactive));
    set_lane("batch", latencySnapshot(Lane::Batch));
    set_lane("interactive.queue_wait",
             scheduler_.queueWaitSnapshot(Lane::Interactive));
    set_lane("batch.queue_wait",
             scheduler_.queueWaitSnapshot(Lane::Batch));

    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

} // namespace ecolo::serve
