/**
 * @file
 * Client library for edgetherm-serve (used by edgetherm_client, the
 * e2e tests, and the serving bench).
 *
 * One protocol conversation per call: each method opens its own
 * loopback connection, sends one request frame, and consumes the
 * response stream. submit() blocks until the run resolves (result,
 * cancelled, drained, backpressured, or error); the callbacks let the
 * caller observe the assigned request id the moment ACCEPTED arrives --
 * which is what a canceller needs, since CANCEL travels on a second
 * connection while submit() is still streaming.
 */

#ifndef ECOLO_SERVE_CLIENT_HH
#define ECOLO_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hh"
#include "util/result.hh"

namespace ecolo::serve {

/** What to run; mirrors SubmitPayload with client-side defaults. */
struct RequestSpec
{
    std::string clientId = "anon";
    Priority priority = Priority::Interactive;
    std::string policy = "standby";
    double param = 0.0;
    bool paramSet = false; //!< false: server applies the policy default
    std::int64_t horizonMinutes = 0;
    std::string scenarioText;
};

/** How a submitted run resolved. */
enum class OutcomeStatus
{
    Completed,  //!< report in hand (fresh or cached)
    Cancelled,  //!< stopped by a CANCEL request
    Drained,    //!< server shut down; maybe checkpointed
    RetryLater, //!< backpressured; retry after retryAfterMs
    Error,      //!< server rejected the request
};

const char *toString(OutcomeStatus status);

struct SubmitOutcome
{
    OutcomeStatus status = OutcomeStatus::Error;
    std::uint64_t requestId = 0;
    bool cacheHit = false;
    std::string report;          //!< Completed only
    std::uint32_t retryAfterMs = 0; //!< RetryLater only
    std::int64_t minutesDone = 0;   //!< Cancelled/Drained
    std::string checkpointPath;     //!< Drained with a spool dir
    RpcErrorCode errorCode = RpcErrorCode::Internal; //!< Error only
    std::string errorMessage;                        //!< Error only
};

class ServeClient
{
  public:
    using AcceptedCallback =
        std::function<void(std::uint64_t request_id,
                           const AcceptedPayload &)>;
    using StatusCallback = std::function<void(const StatusPayload &)>;

    explicit ServeClient(std::uint16_t port) : port_(port) {}

    /**
     * Submit one run and block until it resolves. The Result is an
     * error only for transport/protocol failures; server-side
     * rejections come back as OutcomeStatus::Error / RetryLater.
     */
    util::Result<SubmitOutcome>
    submit(const RequestSpec &spec,
           const AcceptedCallback &on_accepted = nullptr,
           const StatusCallback &on_status = nullptr);

    /** Flag a queued/running request; false when the id is unknown. */
    util::Result<bool> cancel(std::uint64_t request_id);

    /** Fetch the server's edgetherm-metrics-v1 JSON document. */
    util::Result<std::string> stats();

    /** Ask the server to drain and exit; returns once acknowledged. */
    util::Result<void> shutdown();

  private:
    std::uint16_t port_;
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_CLIENT_HH
