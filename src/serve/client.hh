/**
 * @file
 * Client library for edgetherm-serve (used by edgetherm_client, the
 * e2e tests, and the serving bench).
 *
 * One protocol conversation per call: each method opens its own
 * loopback connection, sends one request frame, and consumes the
 * response stream. submit() blocks until the run resolves (result,
 * cancelled, drained, backpressured, or error); the callbacks let the
 * caller observe the assigned request id the moment ACCEPTED arrives --
 * which is what a canceller needs, since CANCEL travels on a second
 * connection while submit() is still streaming.
 *
 * submitWithRetry() layers a deterministic retry loop on top: transport
 * failures (the connection died mid-conversation -- exactly what the
 * chaos layer injects) and RETRY_AFTER backpressure are retried with
 * capped exponential backoff plus seeded jitter; server-side
 * rejections (ERROR frames, including DEADLINE_EXCEEDED) are not,
 * because the server answered definitively. Retrying a submit is safe
 * even when the first attempt's run is still in flight server-side:
 * requests are content-addressed, so the retry either hits the result
 * cache or re-runs the same deterministic simulation to byte-identical
 * bytes.
 *
 * The jitter stream is salted per call: the policy's seed is mixed with
 * a content hash of the request and a per-client submission counter
 * (see retryJitterSeed), so concurrent retries from one process -- N
 * gateway forwarders all backing off from the same overloaded worker --
 * never synchronize into a retry stampede. The salt is derived only
 * from the request and the client's own submission order, so a given
 * single-threaded run remains reproducible.
 */

#ifndef ECOLO_SERVE_CLIENT_HH
#define ECOLO_SERVE_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hh"
#include "util/result.hh"

namespace ecolo::serve {

/** What to run; mirrors SubmitPayload with client-side defaults. */
struct RequestSpec
{
    std::string clientId = "anon";
    Priority priority = Priority::Interactive;
    std::string policy = "standby";
    double param = 0.0;
    bool paramSet = false; //!< false: server applies the policy default
    std::int64_t horizonMinutes = 0;
    std::string scenarioText;
    /**
     * Request budget in wall milliseconds, carried in the frame header;
     * 0 = none. The server starts the clock at frame receipt and
     * answers ERROR{DeadlineExceeded} when it expires, queued or
     * mid-simulation.
     */
    std::uint32_t deadlineMs = 0;
};

/** Capped exponential backoff with deterministic jitter. */
struct RetryPolicy
{
    std::size_t maxAttempts = 3; //!< total tries, including the first
    std::uint32_t baseBackoffMs = 50;
    std::uint32_t maxBackoffMs = 2000;
    /** Seeds the jitter stream; same seed + same outcomes = same waits. */
    std::uint64_t jitterSeed = 1;
};

/**
 * The wait before attempt `attempt` (1-based: the delay taken after
 * attempt N failed, before attempt N+1 runs, is backoffDelayMs(policy,
 * N, ...)). Exponential in the attempt number, capped at maxBackoffMs,
 * with +-50% deterministic jitter from `jitter` in [0, 1).
 */
std::uint32_t backoffDelayMs(const RetryPolicy &policy,
                             std::size_t attempt, double jitter);

/**
 * The effective jitter-stream seed for one submitWithRetry call:
 * policy.jitterSeed mixed with a content hash of the request and the
 * client's `sequence`-th submission. Exposed so tests can pin that two
 * different requests (or two submissions of the same request) never
 * share a backoff schedule.
 */
std::uint64_t retryJitterSeed(const RetryPolicy &policy,
                              const RequestSpec &spec,
                              std::uint64_t sequence);

/** How a submitted run resolved. */
enum class OutcomeStatus
{
    Completed,  //!< report in hand (fresh or cached)
    Cancelled,  //!< stopped by a CANCEL request
    Drained,    //!< server shut down; maybe checkpointed
    RetryLater, //!< backpressured; retry after retryAfterMs
    Error,      //!< server rejected the request
};

const char *toString(OutcomeStatus status);

struct SubmitOutcome
{
    OutcomeStatus status = OutcomeStatus::Error;
    std::uint64_t requestId = 0;
    bool cacheHit = false;
    std::string report;          //!< Completed only
    std::uint32_t retryAfterMs = 0; //!< RetryLater only
    std::int64_t minutesDone = 0;   //!< Cancelled/Drained
    std::string checkpointPath;     //!< Drained with a spool dir
    RpcErrorCode errorCode = RpcErrorCode::Internal; //!< Error only
    std::string errorMessage;                        //!< Error only
};

class ServeClient
{
  public:
    using AcceptedCallback =
        std::function<void(std::uint64_t request_id,
                           const AcceptedPayload &)>;
    using StatusCallback = std::function<void(const StatusPayload &)>;

    /** Loopback client (the single-box deployment). */
    explicit ServeClient(std::uint16_t port)
        : host_("127.0.0.1"), port_(port)
    {}

    /**
     * Remote client: `host` is a name, IPv4, or IPv6 literal, resolved
     * per connection by util::connectTo. A resolution failure surfaces
     * as the typed IoError every caller already handles as a transport
     * error.
     */
    ServeClient(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port)
    {}

    const std::string &host() const { return host_; }
    std::uint16_t port() const { return port_; }

    /**
     * Submit one run and block until it resolves. The Result is an
     * error only for transport/protocol failures; server-side
     * rejections come back as OutcomeStatus::Error / RetryLater.
     */
    util::Result<SubmitOutcome>
    submit(const RequestSpec &spec,
           const AcceptedCallback &on_accepted = nullptr,
           const StatusCallback &on_status = nullptr);

    /**
     * submit(), retried per `policy` on transport errors and
     * RETRY_AFTER (waiting the larger of the server's hint and the
     * backoff). Returns the last attempt's result when retries are
     * exhausted. `attempts_out`, when non-null, receives the number of
     * attempts made.
     */
    util::Result<SubmitOutcome>
    submitWithRetry(const RequestSpec &spec, const RetryPolicy &policy,
                    std::size_t *attempts_out = nullptr,
                    const AcceptedCallback &on_accepted = nullptr,
                    const StatusCallback &on_status = nullptr);

    /**
     * Per-connection receive timeout for subsequent calls; <= 0 leaves
     * the OS default (block forever). A slow-loris server (or a chaos
     * delay rule) then surfaces as a transport error, which
     * submitWithRetry treats as retryable.
     */
    void setReceiveTimeoutMs(int timeout_ms)
    { receiveTimeoutMs_ = timeout_ms; }

    /** Flag a queued/running request; false when the id is unknown. */
    util::Result<bool> cancel(std::uint64_t request_id);

    /** Fetch the server's edgetherm-metrics-v1 JSON document. */
    util::Result<std::string> stats();

    /** Ask the server to drain and exit; returns once acknowledged. */
    util::Result<void> shutdown();

  private:
    std::string host_;
    std::uint16_t port_;
    int receiveTimeoutMs_ = 0;
    /** Submissions made by this client; salts the retry jitter. */
    std::atomic<std::uint64_t> submitSequence_{0};
};

} // namespace ecolo::serve

#endif // ECOLO_SERVE_CLIENT_HH
