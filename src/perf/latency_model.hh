/**
 * @file
 * Tenant application-performance model: 95th-percentile response time as a
 * function of offered load and the power the (possibly capped) servers may
 * draw.
 *
 * The paper measures this relationship on a real cluster running CloudSuite
 * Web Service / Web Search (Fig. 15): at a fixed workload, lowering server
 * power (CPU throttling for emergency capping) raises tail latency, steeply
 * so at the 60%-of-peak cap used during thermal emergencies (~4x at the
 * workloads shown, Fig. 14(b)). We have no hardware, so we provide a
 * calibrated empirical surface with the same shape:
 *
 *   p95_norm(u, f) = 1 + A(u) * (1 - f)^B,   A(u) = a0 + a1 * u
 *
 * where u is offered utilization, f is the power fraction (actual/demanded
 * dynamic power) and p95_norm is relative to the uncapped latency at the
 * same workload. Defaults reproduce the ~4x jump at f = 0.6 and the
 * steeper degradation at higher workloads seen in Fig. 15.
 */

#ifndef ECOLO_PERF_LATENCY_MODEL_HH
#define ECOLO_PERF_LATENCY_MODEL_HH

namespace ecolo::perf {

/** Calibration of the latency surface. */
struct LatencyModelParams
{
    double sensitivityBase = 8.5;   //!< a0
    double sensitivityUtil = 5.5;   //!< a1 (workload steepening)
    double powerExponent = 1.5;     //!< B
    double slaLatencyMs = 100.0;    //!< SLA target (paper's Web Search SLA)
    /** Uncapped p95 at zero load, ms (queueing baseline). */
    double baseLatencyMs = 60.0;
    /** Mild uncapped growth with load: base / (1 - k*u). */
    double baselineLoadFactor = 0.45;
};

/** The latency surface. */
class LatencyModel
{
  public:
    LatencyModel() = default;
    explicit LatencyModel(LatencyModelParams params) : params_(params) {}

    /**
     * 95th-percentile response time normalized to the uncapped latency at
     * the same offered utilization.
     * @param utilization offered load in [0, 1]
     * @param power_fraction delivered/demanded power in (0, 1]
     */
    double normalizedP95(double utilization, double power_fraction) const;

    /** Absolute uncapped p95 in milliseconds at the given utilization. */
    double uncappedP95Ms(double utilization) const;

    /** Absolute p95 in milliseconds including capping effects. */
    double p95Ms(double utilization, double power_fraction) const;

    /** p95 normalized to the SLA target (Fig. 15's y-axis). */
    double p95OverSla(double utilization, double power_fraction) const;

    const LatencyModelParams &params() const { return params_; }

  private:
    LatencyModelParams params_;
};

} // namespace ecolo::perf

#endif // ECOLO_PERF_LATENCY_MODEL_HH
