#include "perf/queue_sim.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/logging.hh"

namespace ecolo::perf {

QueueSimResult
simulateQueue(const QueueSimParams &params, Rng rng)
{
    ECOLO_ASSERT(params.numServers > 0, "queue needs at least one server");
    ECOLO_ASSERT(params.baseServiceRatePerServer > 0.0,
                 "service rate must be positive");
    ECOLO_ASSERT(params.powerFraction > 0.0 && params.powerFraction <= 1.0,
                 "power fraction out of (0,1]");
    ECOLO_ASSERT(params.offeredUtilization >= 0.0 &&
                 params.offeredUtilization <= 1.0,
                 "offered utilization out of [0,1]");
    ECOLO_ASSERT(params.simulatedSeconds > params.warmupSeconds,
                 "simulation shorter than its warm-up");

    const double per_server_rate =
        params.baseServiceRatePerServer * params.powerFraction;
    const double arrival_rate = params.offeredUtilization *
                                params.baseServiceRatePerServer *
                                static_cast<double>(params.numServers);

    QueueSimResult result;
    if (arrival_rate <= 0.0)
        return result;

    // Event-driven simulation: next arrival time plus one completion time
    // per busy server (min-heap over server completion times).
    std::priority_queue<double, std::vector<double>, std::greater<>>
        completions;
    std::queue<double> waiting; // arrival timestamps of queued requests
    PercentileEstimator sojourns;
    OnlineStats mean_sojourn;

    double now = 0.0;
    double next_arrival = rng.exponential(arrival_rate);
    while (now < params.simulatedSeconds) {
        const bool completion_next =
            !completions.empty() && completions.top() < next_arrival;
        if (completion_next) {
            now = completions.top();
            completions.pop();
            // A server freed up: pull the next queued request, if any.
            if (!waiting.empty()) {
                const double arrived = waiting.front();
                waiting.pop();
                const double service = rng.exponential(per_server_rate);
                const double done = now + service;
                completions.push(done);
                if (done > params.warmupSeconds) {
                    const double sojourn_ms = (done - arrived) * 1000.0;
                    sojourns.add(sojourn_ms);
                    mean_sojourn.add(sojourn_ms);
                    ++result.completedRequests;
                }
            }
        } else {
            now = next_arrival;
            next_arrival = now + rng.exponential(arrival_rate);
            if (completions.size() < params.numServers) {
                // Idle server available: serve immediately.
                const double service = rng.exponential(per_server_rate);
                const double done = now + service;
                completions.push(done);
                if (done > params.warmupSeconds) {
                    const double sojourn_ms = service * 1000.0;
                    sojourns.add(sojourn_ms);
                    mean_sojourn.add(sojourn_ms);
                    ++result.completedRequests;
                }
            } else {
                waiting.push(now);
            }
        }
    }

    result.backlog = waiting.size();
    if (sojourns.count() > 0) {
        result.p50Ms = sojourns.percentile(50.0);
        result.p95Ms = sojourns.percentile(95.0);
        result.p99Ms = sojourns.percentile(99.0);
        result.meanMs = mean_sojourn.mean();
    }
    return result;
}

} // namespace ecolo::perf
