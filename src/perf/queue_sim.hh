/**
 * @file
 * Discrete-event M/M/k queue simulation of one tenant's serving cluster.
 *
 * The paper *measures* 95th-percentile response times on a real CloudSuite
 * cluster under power capping; the calibrated LatencyModel surface stands
 * in for those measurements in year-long runs. This simulator grounds that
 * surface in first principles: Poisson arrivals into k servers whose
 * service rate scales with the delivered (possibly capped) power, FCFS
 * queueing, exact event-driven sojourn times. The perf unit tests check
 * that the closed-form surface and the simulated queue agree on every
 * qualitative property the paper relies on (monotonicity in load and in
 * the power cap, super-linear tail growth).
 */

#ifndef ECOLO_PERF_QUEUE_SIM_HH
#define ECOLO_PERF_QUEUE_SIM_HH

#include <cstddef>

#include "util/rng.hh"
#include "util/stats.hh"

namespace ecolo::perf {

/** Cluster and workload parameters for one simulation. */
struct QueueSimParams
{
    std::size_t numServers = 12;      //!< k
    double baseServiceRatePerServer = 50.0; //!< req/s at full power
    /**
     * Compute scales with dynamic power: a power fraction f in (0, 1]
     * yields service rate base * servedFraction(f), matching the server
     * power model's DVFS assumption.
     */
    double powerFraction = 1.0;
    /** Offered load as a fraction of full-power cluster capacity. */
    double offeredUtilization = 0.6;
    double simulatedSeconds = 600.0;
    /** Warm-up discarded before measuring, seconds. */
    double warmupSeconds = 60.0;
};

/** Result of one queue simulation. */
struct QueueSimResult
{
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    std::size_t completedRequests = 0;
    /** Requests still queued at the end (overload indicator). */
    std::size_t backlog = 0;
};

/**
 * Run one M/M/k simulation. Deterministic for a given (params, seed).
 * When the capped service capacity is below the offered load the queue
 * grows without bound; the result then reports the (finite-window) tail
 * of an overloaded system, which is exactly what a capped 5-minute
 * thermal emergency looks like.
 */
QueueSimResult simulateQueue(const QueueSimParams &params, Rng rng);

} // namespace ecolo::perf

#endif // ECOLO_PERF_QUEUE_SIM_HH
