#include "perf/latency_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ecolo::perf {

double
LatencyModel::normalizedP95(double utilization, double power_fraction) const
{
    ECOLO_ASSERT(utilization >= 0.0 && utilization <= 1.0 + 1e-9,
                 "utilization out of [0,1]: ", utilization);
    ECOLO_ASSERT(power_fraction > 0.0 && power_fraction <= 1.0 + 1e-9,
                 "power fraction out of (0,1]: ", power_fraction);
    const double u = std::clamp(utilization, 0.0, 1.0);
    const double f = std::clamp(power_fraction, 1e-6, 1.0);
    const double sensitivity =
        params_.sensitivityBase + params_.sensitivityUtil * u;
    return 1.0 + sensitivity * std::pow(1.0 - f, params_.powerExponent);
}

double
LatencyModel::uncappedP95Ms(double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    const double denom =
        std::max(0.05, 1.0 - params_.baselineLoadFactor * u);
    return params_.baseLatencyMs / denom;
}

double
LatencyModel::p95Ms(double utilization, double power_fraction) const
{
    return uncappedP95Ms(utilization) *
           normalizedP95(utilization, power_fraction);
}

double
LatencyModel::p95OverSla(double utilization, double power_fraction) const
{
    ECOLO_ASSERT(params_.slaLatencyMs > 0.0, "SLA latency must be positive");
    return p95Ms(utilization, power_fraction) / params_.slaLatencyMs;
}

} // namespace ecolo::perf
