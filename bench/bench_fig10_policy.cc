/**
 * @file
 * Fig. 10 reproduction: the structural property of the policy learnt by
 * Foresighted -- attack iff both the estimated load and the remaining
 * battery energy are high, with the thresholds shifting with the reward
 * weight w (w = 9: attack above ~7.5 kW with >= 60% battery; w = 14:
 * attacks extend down to ~40% battery at high load and to ~7 kW at high
 * battery).
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

void
dumpPolicy(double weight, double train_days)
{
    auto config = SimulationConfig::paperDefault();
    auto policy = makeForesightedPolicy(config, weight);
    ForesightedPolicy *learner = policy.get();

    Simulation sim(config, std::move(policy));
    sim.runDays(train_days);

    printBanner(std::cout,
                "Fig. 10: greedy action map learnt by Foresighted, w = " +
                    fixed(weight, 0) + " (A = attack, c = charge, "
                                       "s = standby)");

    const auto &space = learner->stateSpace();
    std::vector<std::string> headers{"battery \\ load (kW)"};
    for (std::size_t lb = 0; lb < space.loadBins(); lb += 2)
        headers.push_back(fixed(space.loadBinCenter(lb).value(), 1));
    TextTable table(headers);

    for (std::size_t bb = space.batteryBins(); bb-- > 0;) {
        std::vector<std::string> row;
        const double soc = space.batteryBinCenter(bb);
        row.push_back(fixed(100.0 * soc, 0) + "%");
        for (std::size_t lb = 0; lb < space.loadBins(); lb += 2) {
            const AttackAction action = learner->greedyActionFor(
                soc, space.loadBinCenter(lb));
            const char *cell = action == AttackAction::Attack   ? "A"
                               : action == AttackAction::Charge ? "c"
                                                                : "s";
            row.emplace_back(cell);
        }
        table.addRowStrings(std::move(row));
    }
    table.print(std::cout);

    // The headline structure: the load threshold at a full battery, and
    // the battery threshold at the highest load (rarely-visited corner
    // states keep stale initialization noise; the frequently-visited
    // frontier is what the attacker actually executes).
    // Scan the *contiguous* attack frontier from the top so isolated
    // noise cells do not masquerade as the threshold.
    const double full_soc = space.batteryBinCenter(space.batteryBins() - 1);
    double load_threshold = -1.0;
    for (std::size_t lb = space.loadBins(); lb-- > 0;) {
        const Kilowatts load = space.loadBinCenter(lb);
        if (learner->greedyActionFor(full_soc, load) !=
            AttackAction::Attack) {
            break;
        }
        load_threshold = load.value();
    }
    const Kilowatts top_load =
        space.loadBinCenter(space.loadBins() - 1);
    double soc_threshold = -1.0;
    for (std::size_t bb = space.batteryBins(); bb-- > 0;) {
        const double soc = space.batteryBinCenter(bb);
        if (learner->greedyActionFor(soc, top_load) !=
            AttackAction::Attack) {
            break;
        }
        soc_threshold = soc;
    }
    std::cout << "at full battery: attack when estimated load >= "
              << (load_threshold > 0 ? fixed(load_threshold, 1) + " kW"
                                     : std::string("never"))
              << "; at peak load: attack when battery >= "
              << (soc_threshold > 0
                      ? fixed(100.0 * soc_threshold, 0) + "%"
                      : std::string("never"))
              << "\n";
}

} // namespace

int
main()
{
    const double train_days = 60.0;
    dumpPolicy(9.0, train_days);
    dumpPolicy(14.0, train_days);
    std::cout << "\npaper: attacks only when both the load and the battery "
                 "level are high; the larger weight extends the attack "
                 "region to lower battery levels and slightly lower "
                 "loads -- structure reproduced\n";
    return 0;
}
