/**
 * @file
 * Fig. 9 reproduction: a 4-hour snapshot of repeated attacks under the
 * three policies (Random attacking 8% of the time, Myopic with a 7.4 kW
 * threshold, Foresighted with w = 14), during a high-load stretch.
 *
 * The paper's observations to reproduce: Random's attacks are spread out
 * and never cause an emergency; Myopic and Foresighted concentrate their
 * attacks in the high-load period and trigger emergencies (metered power
 * is capped below 5 kW for 5 minutes); the metered and actual powers
 * diverge by the battery injection during attacks ("behind the meter").
 */

#include <iostream>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using namespace ecolo::benchutil;

struct Snapshot
{
    std::string name;
    std::vector<MinuteRecord> records;
};

void
printWindow(const Snapshot &snap, MinuteIndex start, MinuteIndex minutes)
{
    printBanner(std::cout, "Fig. 9 [" + snap.name +
                               "]: 4-hour high-load snapshot "
                               "(10-min resolution)");
    TextTable table({"min", "metered (kW)", "actual (kW)",
                     "attack load (kW)", "soc", "inlet (C)", "state"});
    for (MinuteIndex m = start; m < start + minutes; m += 10) {
        const auto &r = snap.records[m];
        const char *state = r.outage          ? "OUTAGE"
                            : r.cappingActive ? "capped"
                            : r.action == AttackAction::Attack
                                ? "ATTACK"
                            : r.action == AttackAction::Charge ? "charge"
                                                               : "-";
        table.addRow(m - start, fixed(r.meteredTotal.value(), 2),
                     fixed(r.actualHeat.value(), 2),
                     fixed(r.attackBatteryPower.value(), 2),
                     fixed(r.batterySoc, 2), fixed(r.maxInlet.value(), 1),
                     state);
    }
    table.print(std::cout);

    MinuteIndex attack_minutes = 0, capped_minutes = 0;
    int emergencies = 0;
    bool prev_capped = false;
    for (MinuteIndex m = start; m < start + minutes; ++m) {
        const auto &r = snap.records[m];
        attack_minutes += r.action == AttackAction::Attack &&
                          r.attackBatteryPower.value() > 0.1;
        capped_minutes += r.cappingActive;
        if (r.cappingActive && !prev_capped)
            ++emergencies;
        prev_capped = r.cappingActive;
    }
    std::cout << "window summary: " << attack_minutes
              << " attack minutes, " << emergencies << " emergencies, "
              << capped_minutes << " capped minutes\n";
}

} // namespace

int
main()
{
    const auto config = SimulationConfig::paperDefault();
    const double days = 35.0; // Foresighted converges within weeks

    std::vector<Snapshot> snaps;
    snaps.push_back({"Random 8%",
                     recordRun(config, makeRandomPolicy(config, 0.08),
                               days)});
    snaps.push_back({"Myopic 7.4 kW",
                     recordRun(config,
                               makeMyopicPolicy(config, Kilowatts(7.4)),
                               days)});
    snaps.push_back({"Foresighted w=14",
                     recordRun(config, makeForesightedPolicy(config, 14.0),
                               days)});

    // Pick the same high-load 4-hour window for every policy (the benign
    // trace is identical across runs with the same seed); search in the
    // last week so Foresighted has converged.
    const MinuteIndex start = findHighLoadWindow(
        snaps[0].records, 28 * kMinutesPerDay, 35 * kMinutesPerDay, 240);

    for (const auto &snap : snaps)
        printWindow(snap, start, 240);

    std::cout << "\npaper: Random never triggers an emergency; Myopic and "
                 "Foresighted attack in the high-load period and cap the "
                 "metered power below 5 kW; actual power exceeds metered "
                 "power by the battery load during attacks\n";
    return 0;
}
