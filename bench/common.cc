#include "common.hh"

#include <cstdlib>
#include <memory>
#include <string>

#include "core/lane_batch.hh"
#include "core/setup_cache.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace ecolo::benchutil {

namespace {

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return (value != nullptr && value[0] != '\0') ? value : nullptr;
}

/** Arms telemetry from the environment on startup, flushes on exit. */
struct TelemetryEnvLifecycle
{
    TelemetryEnvLifecycle() { initTelemetryFromEnv(); }
    ~TelemetryEnvLifecycle() { flushTelemetry(); }
};
TelemetryEnvLifecycle g_telemetry_lifecycle;

} // namespace

bool
initTelemetryFromEnv()
{
    if (const char *level_name = envOrNull("EDGETHERM_LOG_LEVEL")) {
        LogLevel level;
        if (parseLogLevel(level_name, level))
            setLogLevel(level);
        else
            warn("unknown EDGETHERM_LOG_LEVEL: ", level_name);
    }

    const bool want = envOrNull("EDGETHERM_METRICS_OUT") != nullptr ||
                      envOrNull("EDGETHERM_EVENTS_OUT") != nullptr ||
                      envOrNull("EDGETHERM_PROFILE_OUT") != nullptr;
    if (!want)
        return false;
    telemetry::setEnabled(true);
    if (envOrNull("EDGETHERM_PROFILE_OUT") != nullptr)
        telemetry::trace().begin();
    return telemetry::enabled();
}

void
flushTelemetry()
{
    if (!telemetry::enabled())
        return;
    if (const char *path = envOrNull("EDGETHERM_METRICS_OUT")) {
        if (auto r = telemetry::registry().writeJsonFile(path); !r)
            warn("metrics sink failed: ", r.error().message);
    }
    if (const char *path = envOrNull("EDGETHERM_EVENTS_OUT")) {
        if (auto r = telemetry::events().writeJsonlFile(path); !r)
            warn("events sink failed: ", r.error().message);
    }
    if (const char *path = envOrNull("EDGETHERM_PROFILE_OUT")) {
        telemetry::trace().end();
        if (auto r = telemetry::trace().writeChromeJsonFile(path); !r)
            warn("profile sink failed: ", r.error().message);
    }
}

namespace {

CampaignResult
summarizeCampaign(const core::Simulation &sim, const std::string &label,
                  double parameter)
{
    const auto &m = sim.metrics();
    CampaignResult result;
    result.policy = label;
    result.parameter = parameter;
    result.attackHoursPerDay = m.attackHoursPerDay();
    result.meanInletRise = m.inletRise().mean();
    result.emergencyPercent = 100.0 * m.emergencyFraction();
    result.emergencyHoursPerYear = m.emergencyHoursPerYear();
    result.normalizedPerf =
        m.emergencyPerf().count() ? m.emergencyPerf().mean() : 1.0;
    result.emergencies = m.emergencies();
    result.outages = m.outages();
    return result;
}

} // namespace

CampaignResult
runCampaign(const core::SimulationConfig &config,
            std::unique_ptr<core::AttackPolicy> policy, double days,
            const std::string &label, double parameter)
{
    telemetry::TraceSpan span(telemetry::enabled()
                                  ? "bench.campaign:" + label
                                  : std::string());
    core::Simulation sim(config, std::move(policy));
    sim.runDays(days);
    return summarizeCampaign(sim, label, parameter);
}

std::vector<CampaignResult>
runCampaigns(const std::vector<CampaignSpec> &specs)
{
    // Setup (trace synthesis, Prony fits, factorization) dominates short
    // campaigns, and sweep members mostly share it: one cache serves the
    // whole batch. Construction still fans out across the pool -- the
    // cache computes outside its lock and keeps the first-inserted
    // artifact, so the shared values are deterministic either way.
    auto cache = std::make_shared<core::SetupCache>();
    std::vector<std::unique_ptr<core::Simulation>> sims(specs.size());
    util::parallelFor(0, specs.size(), [&](std::size_t k) {
        const CampaignSpec &spec = specs[k];
        ECOLO_ASSERT(spec.makePolicy != nullptr,
                     "campaign spec without a policy factory");
        telemetry::TraceSpan span(telemetry::enabled()
                                      ? "bench.campaign:" + spec.label
                                      : std::string());
        core::SimulationConfig config = spec.config;
        if (!config.setupCache)
            config.setupCache = cache;
        sims[k] = std::make_unique<core::Simulation>(
            config, spec.makePolicy(config));
    });

    core::LaneBatchRunner runner;
    for (std::size_t k = 0; k < specs.size(); ++k) {
        runner.add(*sims[k],
                   static_cast<MinuteIndex>(
                       specs[k].days *
                       static_cast<double>(kMinutesPerDay)));
    }
    runner.runAll();

    std::vector<CampaignResult> results(specs.size());
    for (std::size_t k = 0; k < specs.size(); ++k) {
        results[k] = summarizeCampaign(*sims[k], specs[k].label,
                                       specs[k].parameter);
    }
    return results;
}

std::vector<CampaignResult>
runCampaignsPerThread(const std::vector<CampaignSpec> &specs)
{
    std::vector<CampaignResult> results(specs.size());
    util::parallelFor(0, specs.size(), [&](std::size_t k) {
        const CampaignSpec &spec = specs[k];
        ECOLO_ASSERT(spec.makePolicy != nullptr,
                     "campaign spec without a policy factory");
        results[k] = runCampaign(spec.config, spec.makePolicy(spec.config),
                                 spec.days, spec.label, spec.parameter);
    });
    return results;
}

std::vector<core::MinuteRecord>
recordRun(const core::SimulationConfig &config,
          std::unique_ptr<core::AttackPolicy> policy, double days)
{
    core::Simulation sim(config, std::move(policy));
    std::vector<core::MinuteRecord> records;
    records.reserve(static_cast<std::size_t>(days * kMinutesPerDay) + 1);
    sim.setMinuteCallback([&](const core::MinuteRecord &r) {
        records.push_back(r);
    });
    sim.runDays(days);
    return records;
}

MinuteIndex
findHighLoadWindow(const std::vector<core::MinuteRecord> &records,
                   MinuteIndex from, MinuteIndex to,
                   MinuteIndex window_minutes)
{
    ECOLO_ASSERT(!records.empty(), "no records to scan");
    const auto n = static_cast<MinuteIndex>(records.size());
    from = std::max<MinuteIndex>(0, from);
    to = std::min(to, n - window_minutes);
    ECOLO_ASSERT(from < to, "empty window-search range");

    // Sliding-window sum of benign power.
    double sum = 0.0;
    for (MinuteIndex m = from; m < from + window_minutes; ++m)
        sum += records[m].benignPower.value();
    double best_sum = sum;
    MinuteIndex best_start = from;
    for (MinuteIndex start = from + 1; start < to; ++start) {
        sum += records[start + window_minutes - 1].benignPower.value() -
               records[start - 1].benignPower.value();
        if (sum > best_sum) {
            best_sum = sum;
            best_start = start;
        }
    }
    return best_start;
}

} // namespace ecolo::benchutil
