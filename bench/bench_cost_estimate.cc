/**
 * @file
 * Section VI-C reproduction: cost estimates for both sides of a year-long
 * Foresighted campaign in the default 8 kW edge colocation.
 *
 * Paper anchors: attacker pays $150/kW/month subscription + $0.1/kWh +
 * $4,500/server; benign tenants lose roughly $60+K/year from the
 * increased 95th-percentile latency during emergencies.
 */

#include <iostream>

#include "common.hh"
#include "core/cost.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    const auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeForesightedPolicy(config, 14.0));
    sim.runDays(365.0);
    const auto &metrics = sim.metrics();

    const CostModel model;
    const AttackerCost attacker = model.attackerAnnualCost(config, metrics);
    const BenignCost benign = model.benignAnnualCost(config, metrics);

    printBanner(std::cout, "Section VI-C: cost estimate "
                           "(year-long Foresighted, w = 14)");
    TextTable table({"item", "value"});
    table.addRow("emergency time (% of year)",
                 fixed(100.0 * metrics.emergencyFraction(), 2));
    table.addRow("emergency hours / year",
                 fixed(metrics.emergencyHoursPerYear(), 0));
    table.addRow("norm. 95p latency during emergencies",
                 fixed(metrics.emergencyPerf().mean(), 2));
    table.addRow("attacker: subscription ($/yr)",
                 fixed(attacker.subscriptionUsd, 0));
    table.addRow("attacker: energy ($/yr)", fixed(attacker.energyUsd, 0));
    table.addRow("attacker: servers amortized ($/yr)",
                 fixed(attacker.serversUsd, 0));
    table.addRow("attacker: total ($/yr)", fixed(attacker.total(), 0));
    table.addRow("benign tenants: latency damage ($/yr)",
                 fixed(benign.degradationUsd, 0));
    table.addRow("benign tenants: outage damage ($/yr)",
                 fixed(benign.outageUsd, 0));
    table.addRow("benign tenants: total ($/yr)", fixed(benign.total(), 0));
    table.print(std::cout);

    std::cout << "\npaper: attacker cost on the order of a few $K/year "
                 "(0.8 kW x $150/kW/month = $1,440 subscription + energy "
                 "+ 4 x $4,500 servers amortized); benign tenants lose "
                 "roughly $60+K/year -- the asymmetry (damage >> cost) is "
                 "the headline to reproduce\n";
    return 0;
}
