/**
 * @file
 * Model ablations (DESIGN.md items 1 and 3, plus the paper's modeling
 * claims):
 *
 *  1. Linear vs. temperature-aware battery: the paper argues detailed
 *     battery models (ambient-temperature effects) "do not offer much
 *     additional insight" -- quantified here by re-running the default
 *     campaign with capacity derating up to 1%/K of inlet temperature.
 *  2. Fixed vs. adaptive (runtime-coordinated) emergency capping: the
 *     paper mentions both SLA-predetermined and dynamically coordinated
 *     capping; adaptive capping caps gently for marginal overshoots,
 *     trading a little thermal margin for tenant performance.
 *  3. Cooling-capacity derating on/off: the knob that separates "capping
 *     always recovers" from the paper's Fig. 8 runaway.
 */

#include <iostream>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using namespace ecolo::benchutil;

constexpr double kDays = 150.0;

void
batteryModelAblation()
{
    printBanner(std::cout,
                "Ablation: linear vs. temperature-aware battery "
                "(Foresighted w=14, 150 days)");
    TextTable table({"battery model", "emergency h/yr",
                     "attack h/day"});
    for (double loss : {0.0, 0.005, 0.01}) {
        auto config = SimulationConfig::paperDefault();
        config.batterySpec.capacityLossPerKelvin = loss;
        const auto r = runCampaign(
            config, makeForesightedPolicy(config, 14.0), kDays, "F", loss);
        table.addRow(loss == 0.0 ? "linear (paper/default)"
                                 : fixed(100.0 * loss, 1) + "%/K derating",
                     fixed(r.emergencyHoursPerYear, 0),
                     fixed(r.attackHoursPerDay, 2));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "paper claim: the detailed battery model does not change "
                 "the conclusions -- expect similar emergency hours across "
                 "rows\n";
}

void
cappingStrategyAblation()
{
    printBanner(std::cout,
                "Ablation: fixed (SLA-predetermined) vs. adaptive "
                "(runtime-coordinated) emergency capping");
    TextTable table({"capping", "emergency h/yr", "outages",
                     "norm. 95p latency during emergencies"});
    for (bool adaptive : {false, true}) {
        auto config = SimulationConfig::paperDefault();
        config.adaptiveCapping = adaptive;
        const auto r = runCampaign(
            config, makeMyopicPolicy(config, Kilowatts(7.4)), kDays, "M",
            adaptive ? 1.0 : 0.0);
        table.addRow(adaptive ? "adaptive (overshoot-scaled)"
                              : "fixed 120 W (default)",
                     fixed(r.emergencyHoursPerYear, 0), r.outages,
                     fixed(r.normalizedPerf, 2));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "expected: adaptive capping keeps outages at zero while "
                 "capping gently on marginal emergencies (lower latency "
                 "impact per emergency minute)\n";
}

void
coolingDeratingAblation()
{
    printBanner(std::cout,
                "Ablation: cooling-capacity derating (one-shot outage "
                "feasibility)");
    TextTable table({"derating per K", "one-shot outages (7 days)",
                     "hottest inlet (C)"});
    for (double derate : {0.0, 0.005, 0.01}) {
        auto config = SimulationConfig::paperDefault();
        config.attackLoad = Kilowatts(3.0);
        config.batterySpec.maxDischargeRate = Kilowatts(3.0);
        config.batterySpec.capacity = KilowattHours(0.5);
        config.cooling.capacityDeratingPerKelvin = derate;
        Simulation sim(config,
                       makeOneShotPolicy(config, Kilowatts(7.0), 0));
        sim.runDays(7.0);
        table.addRow(fixed(100.0 * derate, 1) + "%",
                     sim.metrics().outages(),
                     fixed(sim.metrics().maxInlet().max(), 1));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "with zero derating, capping arrests the strike below "
                 "45 C and the paper's Fig. 8 outage cannot occur; the "
                 "calibrated 1%/K reproduces it\n";
}

} // namespace

int
main()
{
    batteryModelAblation();
    cappingStrategyAblation();
    coolingDeratingAblation();
    return 0;
}
