/**
 * @file
 * Fig. 11 reproduction: the impact of thermal attacks.
 *
 * (a) Time for the inlet temperature to exceed 32 C as a function of the
 *     injected cooling overload, for several starting supply temperatures
 *     (< 4 minutes at 1 kW from 27 C).
 * (b) Average inlet temperature increase vs. average daily attack time,
 *     sweeping Random's probability, Myopic's threshold and Foresighted's
 *     weight (year-long runs).
 * (c) Attack-induced thermal emergency time (% of the year) vs. daily
 *     attack time (Random excluded: it causes none).
 * (d) Benign tenants' 95th-percentile response time during emergencies,
 *     normalized to no-emergency operation.
 */

#include <iostream>
#include <vector>

#include "common.hh"
#include "util/plot.hh"
#include "thermal/cooling.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using namespace ecolo::benchutil;

void
figure11a()
{
    const auto config = SimulationConfig::paperDefault();
    thermal::CoolingSystem cooling(config.cooling);

    printBanner(std::cout,
                "Fig. 11(a): minutes of overload needed to exceed 32 C");
    TextTable table({"overload (kW)", "from Ts=27 C", "from Ts=28 C",
                     "from Ts=29 C"});
    for (double overload = 0.5; overload <= 3.01; overload += 0.5) {
        std::vector<std::string> row{fixed(overload, 1)};
        for (double ts = 27.0; ts <= 29.01; ts += 1.0) {
            const Seconds t = cooling.timeToReach(
                Celsius(32.0), Kilowatts(overload), Celsius(ts));
            row.push_back(fixed(toMinutes(t), 1));
        }
        table.addRowStrings(std::move(row));
    }
    table.print(std::cout);
    std::cout << "paper: < 4 minutes at 1 kW overload from 27 C; faster "
                 "with more overload or a hotter start -- reproduced\n";
}

void
figure11bcd()
{
    const auto config = SimulationConfig::paperDefault();
    const double days = 365.0;
    std::vector<CampaignResult> results;

    // Random: attack probability 2% .. 15%.
    for (double p : {0.02, 0.05, 0.08, 0.12, 0.15}) {
        results.push_back(runCampaign(config, makeRandomPolicy(config, p),
                                      days, "Random", p));
        std::cout << "." << std::flush;
    }
    // Myopic: threshold 8.0 .. 6.5 kW (lower threshold = more attacks).
    for (double th : {8.0, 7.8, 7.6, 7.4, 7.2, 7.0, 6.8, 6.5}) {
        results.push_back(runCampaign(
            config, makeMyopicPolicy(config, Kilowatts(th)), days,
            "Myopic", th));
        std::cout << "." << std::flush;
    }
    // Foresighted: weight 2 .. 30 (larger weight = more attacks).
    for (double w : {2.0, 5.0, 9.0, 14.0, 20.0, 30.0}) {
        results.push_back(runCampaign(
            config, makeForesightedPolicy(config, w), days, "Foresighted",
            w));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";

    printBanner(std::cout,
                "Fig. 11(b,c,d): temperature increase, attack-induced "
                "emergencies, and performance vs. daily attack time "
                "(year-long runs)");
    if (const auto dir = plotDirFromEnv()) {
        // One figure per policy (each has its own measured attack-time x
        // axis, so they cannot share a data table).
        for (const char *policy : {"Random", "Myopic", "Foresighted"}) {
            GnuplotFigure per_policy(
                std::string("fig11_") + policy,
                std::string("Fig. 11(b,c): ") + policy,
                "attack time (h/day)", "value");
            per_policy.addSeries("avg dT (C)");
            per_policy.addSeries("emergency (%)");
            for (const auto &r : results) {
                if (r.policy == policy) {
                    per_policy.addRow(r.attackHoursPerDay,
                                      {r.meanInletRise,
                                       r.emergencyPercent});
                }
            }
            per_policy.writeTo(*dir);
        }
        std::cout << "plots written to " << *dir << "/fig11_*.gp\n";
    }
    TextTable table({"policy", "param", "attack (h/day)",
                     "avg dT (C)", "emergency (%)", "emergency (h/yr)",
                     "norm. 95p latency", "outages"});
    for (const auto &r : results) {
        table.addRow(r.policy, fixed(r.parameter, 2),
                     fixed(r.attackHoursPerDay, 2),
                     fixed(r.meanInletRise, 3),
                     fixed(r.emergencyPercent, 2),
                     fixed(r.emergencyHoursPerYear, 0),
                     fixed(r.normalizedPerf, 2), r.outages);
    }
    table.print(std::cout);

    std::cout
        << "\npaper shape checks:\n"
        << "  - Random: temperature rises slightly with attack time but "
           "NO emergencies.\n"
        << "  - Myopic: impact peaks then declines as premature attacks "
           "deplete the battery.\n"
        << "  - Foresighted: dominates Myopic at every attack time; "
           "saturates beyond ~1.5 h/day.\n"
        << "  - Normalized 95p latency during emergencies in the 2-4x "
           "range; Myopic slightly above Foresighted.\n";
}

} // namespace

int
main()
{
    figure11a();
    figure11bcd();
    return 0;
}
