/**
 * @file
 * Fig. 6(b) reproduction: a 24-hour snapshot of the default power trace.
 *
 * The paper synthesizes a year-long power trace from Facebook/Baidu
 * request logs, scaled to 75% average utilization of the 8 kW capacity,
 * and shows one day of it. We print the same series (total metered power
 * at 15-minute resolution) from our diurnal generator driven through the
 * actual simulation engine, plus the scaling sanity numbers.
 */

#include <iostream>

#include "common.hh"
#include "util/plot.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;
    using namespace ecolo::benchutil;

    const auto config = SimulationConfig::paperDefault();

    // A standby attacker leaves the trace undisturbed; capture 8 days and
    // show the second day (the first day warms the thermal state).
    const auto records =
        recordRun(config, std::make_unique<StandbyPolicy>(), 8.0);

    printBanner(std::cout,
                "Fig. 6(b): 24-hour snapshot of the default power trace "
                "(8 kW capacity, 75% average utilization)");
    TextTable table({"hour", "total power (kW)"});
    GnuplotFigure figure("fig6_trace", "Fig. 6(b): default power trace",
                         "hour of day", "total power (kW)");
    figure.addSeries("metered kW");
    const MinuteIndex day_start = kMinutesPerDay;
    for (MinuteIndex m = 0; m < kMinutesPerDay; m += 15) {
        const auto &r = records[day_start + m];
        table.addRow(fixed(static_cast<double>(m) / 60.0, 2),
                     fixed(r.meteredTotal.value(), 2));
        figure.addRow(static_cast<double>(m) / 60.0,
                      {r.meteredTotal.value()});
    }
    table.print(std::cout);
    if (const auto dir = plotDirFromEnv()) {
        figure.writeTo(*dir);
        std::cout << "plot written to " << *dir << "/fig6_trace.gp\n";
    }

    OnlineStats week;
    for (const auto &r : records)
        week.add(r.meteredTotal.value());
    std::cout << "\n8-day mean total power: " << fixed(week.mean(), 2)
              << " kW (target 6.00 kW = 75% of 8 kW); min "
              << fixed(week.min(), 2) << " kW, max " << fixed(week.max(), 2)
              << " kW\n"
              << "paper: diurnal swing between roughly 4.5 and 7.5 kW with "
                 "an afternoon peak -- shape reproduced\n";
    return 0;
}
