/**
 * @file
 * Fig. 12 reproduction: sensitivity of the repeated attacks (Myopic vs.
 * Foresighted; Random is excluded because it never causes an emergency).
 *
 * (a) Battery capacity 0.1 - 0.4 kWh: more battery, more emergencies; the
 *     Myopic/Foresighted gap narrows with a big battery.
 * (b) Side-channel estimation noise: more noise, fewer emergencies, but
 *     Foresighted stays effective.
 * (c) Attack load 0.25 - 2 kW: rising from the no-overload floor, then
 *     saturating at the charge-rate energy budget.
 * (d) Average capacity utilization 65 - 85%: higher utilization, more
 *     attack opportunities.
 * (e) Extra cooling capacity vs. the battery the attacker needs to keep
 *     causing the same ~2.3%-of-year emergency impact.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using namespace ecolo::benchutil;

constexpr double kDays = 240.0;       // long enough for stable rates
constexpr double kMyopicThreshold = 7.3;
constexpr double kWeight = 14.0;

struct Pair
{
    double myopic = 0.0;
    double foresighted = 0.0;
};

/**
 * Every (config, policy) campaign of a sweep panel is independent, so
 * the whole panel runs as one parallel batch (bit-identical to running
 * each campaign serially).
 */
std::vector<Pair>
emergencyHoursSweep(const std::vector<SimulationConfig> &configs)
{
    std::vector<CampaignSpec> specs;
    specs.reserve(2 * configs.size());
    for (const SimulationConfig &config : configs) {
        specs.push_back(
            {config,
             [](const SimulationConfig &c) {
                 return makeMyopicPolicy(c, Kilowatts(kMyopicThreshold));
             },
             kDays, "M", 0.0});
        specs.push_back(
            {config,
             [](const SimulationConfig &c) {
                 return makeForesightedPolicy(c, kWeight);
             },
             kDays, "F", 0.0});
    }
    const std::vector<CampaignResult> results = runCampaigns(specs);
    std::vector<Pair> out(configs.size());
    for (std::size_t k = 0; k < configs.size(); ++k) {
        out[k].myopic = results[2 * k].emergencyHoursPerYear;
        out[k].foresighted = results[2 * k + 1].emergencyHoursPerYear;
    }
    return out;
}

void
batteryCapacity()
{
    printBanner(std::cout, "Fig. 12(a): annual emergency hours vs. "
                           "battery capacity");
    TextTable table({"battery (kWh)", "Myopic (h/yr)",
                     "Foresighted (h/yr)"});
    const std::vector<double> capacities{0.1, 0.2, 0.3, 0.4};
    std::vector<SimulationConfig> configs;
    for (double kwh : capacities) {
        auto config = SimulationConfig::paperDefault();
        config.batterySpec.capacity = KilowattHours(kwh);
        configs.push_back(config);
    }
    const std::vector<Pair> hours = emergencyHoursSweep(configs);
    for (std::size_t k = 0; k < capacities.size(); ++k) {
        table.addRow(fixed(capacities[k], 1), fixed(hours[k].myopic, 0),
                     fixed(hours[k].foresighted, 0));
    }
    table.print(std::cout);
    std::cout << "paper: both grow with battery capacity; the gap narrows "
                 "for large batteries\n";
}

void
sideChannelNoise()
{
    printBanner(std::cout, "Fig. 12(b): annual emergency hours vs. "
                           "side-channel estimation noise");
    TextTable table({"extra noise (rel. std)", "Myopic (h/yr)",
                     "Foresighted (h/yr)"});
    const std::vector<double> noises{0.0, 0.03, 0.06, 0.10, 0.15};
    std::vector<SimulationConfig> configs;
    for (double noise : noises) {
        auto config = SimulationConfig::paperDefault();
        config.sideChannel.extraRelativeNoise = noise;
        configs.push_back(config);
    }
    const std::vector<Pair> hours = emergencyHoursSweep(configs);
    for (std::size_t k = 0; k < noises.size(); ++k) {
        table.addRow(fixed(noises[k], 2), fixed(hours[k].myopic, 0),
                     fixed(hours[k].foresighted, 0));
    }
    table.print(std::cout);
    std::cout << "paper: impact decreases with noise; Foresighted remains "
                 "effective even with a noisy channel\n";
}

void
attackLoad()
{
    printBanner(std::cout,
                "Fig. 12(c): annual emergency hours vs. attack load");
    TextTable table({"attack load (kW)", "Myopic (h/yr)",
                     "Foresighted (h/yr)"});
    const std::vector<double> loads{0.25, 0.5, 1.0, 1.5, 2.0};
    std::vector<SimulationConfig> configs;
    for (double kw : loads) {
        auto config = SimulationConfig::paperDefault();
        config.attackLoad = Kilowatts(kw);
        config.batterySpec.maxDischargeRate = Kilowatts(kw);
        configs.push_back(config);
    }
    const std::vector<Pair> hours = emergencyHoursSweep(configs);
    for (std::size_t k = 0; k < loads.size(); ++k) {
        table.addRow(fixed(loads[k], 1), fixed(hours[k].myopic, 0),
                     fixed(hours[k].foresighted, 0));
    }
    table.print(std::cout);
    std::cout << "paper: emergency time grows strongly with attack load; "
                 "Foresighted consistently ahead\n";
}

void
utilization()
{
    printBanner(std::cout, "Fig. 12(d): annual emergency hours vs. "
                           "average capacity utilization");
    TextTable table({"avg utilization", "Myopic (h/yr)",
                     "Foresighted (h/yr)"});
    const std::vector<double> utilizations{0.65, 0.70, 0.75, 0.80, 0.85};
    std::vector<SimulationConfig> configs;
    for (double u : utilizations) {
        auto config = SimulationConfig::paperDefault();
        config.averageUtilization = u;
        configs.push_back(config);
    }
    const std::vector<Pair> hours = emergencyHoursSweep(configs);
    for (std::size_t k = 0; k < utilizations.size(); ++k) {
        table.addRow(fixed(utilizations[k], 2), fixed(hours[k].myopic, 0),
                     fixed(hours[k].foresighted, 0));
    }
    table.print(std::cout);
    std::cout << "paper: higher utilization -> more attack opportunities "
                 "-> more emergencies\n";
}

void
extraCoolingCapacity()
{
    printBanner(std::cout,
                "Fig. 12(e): battery capacity Foresighted needs to keep "
                "~2.3% of the year in emergencies vs. extra cooling "
                "capacity");
    // Target impact in hours/year (2.3% of 8760). A bigger battery bank
    // also delivers more power (Table I's 0.2 kWh unit discharges at
    // 1 kW, a 5C rate), so the attack load scales with capacity -- the
    // reason extra battery can buy back what extra cooling takes away.
    const double target_hours = 0.023 * 8760.0;
    const double c_rate = 5.0; // kW per kWh
    TextTable table({"extra cooling", "required battery (kWh)",
                     "attack load (kW)", "achieved (h/yr)"});
    for (double extra : {0.0, 0.05, 0.10}) {
        auto config = SimulationConfig::paperDefault();
        config.cooling.capacity = Kilowatts(8.0 * (1.0 + extra));
        double found = -1.0, achieved = 0.0;
        for (double kwh = 0.1; kwh <= 0.9001; kwh += 0.1) {
            config.batterySpec.capacity = KilowattHours(kwh);
            // The repeated attacker throttles its load to avoid tripping
            // the 45 C shutdown (outages would expose it immediately), so
            // the C-rate scaling is capped at 2 kW.
            const double attack_kw = std::min(c_rate * kwh, 2.0);
            config.batterySpec.maxDischargeRate = Kilowatts(attack_kw);
            config.attackLoad = Kilowatts(attack_kw);
            // Keep the recharge time proportional too (bigger banks
            // charge at the same C/25 rate as Table I's 0.2 kW).
            config.batterySpec.maxChargeRate = Kilowatts(kwh);
            const double hours =
                runCampaign(config, makeForesightedPolicy(config, kWeight),
                            120.0, "F", 0)
                    .emergencyHoursPerYear;
            std::cout << "." << std::flush;
            if (hours >= target_hours) {
                found = kwh;
                achieved = hours;
                break;
            }
            achieved = hours;
        }
        table.addRow(fixed(100.0 * extra, 0) + "%",
                     found > 0 ? fixed(found, 1) : std::string("> 0.9"),
                     found > 0
                         ? fixed(std::min(c_rate * found, 2.0), 1)
                         : std::string("-"),
                     fixed(achieved, 0));
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "paper: ~0.3 kWh more battery compensates for 10% extra "
                 "cooling capacity -- same increasing trend\n";
}

} // namespace

int
main()
{
    batteryCapacity();
    sideChannelNoise();
    attackLoad();
    utilization();
    extraCoolingCapacity();
    return 0;
}
