/**
 * @file
 * Fig. 5(b) reproduction: the probability distribution of the voltage
 * side channel's load-estimation error over a 24-hour workload trace.
 *
 * The paper runs a 24-hour real-world trace on its prototype and samples
 * the PDU voltage with an NI DAQ; we drive the synthesized signal chain
 * with a 24-hour synthetic trace at one-minute resolution and histogram
 * the relative estimation errors. The paper's distribution is centered at
 * zero with nearly all mass within a few percent.
 */

#include <iostream>

#include "common.hh"
#include "trace/generators.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;

    const auto config = SimulationConfig::paperDefault();

    // Drive the channel with the benign tenants' 24-hour load pattern.
    Rng rng(config.seed);
    const auto util_trace =
        trace::DiurnalTraceGenerator().generate(kMinutesPerDay, rng);
    sidechannel::VoltageSideChannel channel(config.sideChannel,
                                            Rng(config.seed ^ 0x51dec4));

    Histogram error_pdf(-6.0, 6.0, 24); // percent error bins
    OnlineStats errors;
    for (MinuteIndex m = 0; m < kMinutesPerDay; ++m) {
        // Map utilization to an aggregate benign power level (36 servers).
        const Kilowatts true_load =
            config.serverSpec.powerAt(util_trace.at(m)) * 36.0;
        channel.estimateTotalLoad(true_load);
        const double pct = 100.0 * channel.lastRelativeError();
        error_pdf.add(pct);
        errors.add(pct);
    }

    printBanner(std::cout,
                "Fig. 5(b): voltage side channel load-estimation error "
                "distribution (24 h trace)");
    TextTable table({"error bin (%)", "probability"});
    for (std::size_t b = 0; b < error_pdf.bins(); ++b) {
        table.addRow(fixed(error_pdf.binCenter(b), 2),
                     fixed(error_pdf.binFraction(b), 4));
    }
    table.print(std::cout);

    std::cout << "\nsummary: mean error " << fixed(errors.mean(), 3)
              << "%, std " << fixed(errors.stddev(), 3)
              << "%, |error| < 2% for "
              << fixed(100.0 * [&] {
                     double within = 0.0;
                     for (std::size_t b = 0; b < error_pdf.bins(); ++b)
                         if (std::abs(error_pdf.binCenter(b)) < 2.0)
                             within += error_pdf.binFraction(b);
                     return within;
                 }(), 1)
              << "% of samples\n"
              << "paper: error distribution centered at zero, nearly all "
                 "mass within a few percent -- shape reproduced\n";
    return 0;
}
