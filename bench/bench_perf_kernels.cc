/**
 * @file
 * Microbenchmarks for the performance-critical kernels: the dense vs.
 * factorized thermal convolution (the per-minute hot path of every
 * campaign), serial vs. thread-pool fleet simulation, and serial vs.
 * parallel CFD matrix extraction. Run with --benchmark_format=json (or
 * --benchmark_out=...) to emit the machine-readable perf trajectory.
 *
 * Independently of google-benchmark's own (version-dependent) JSON, the
 * binary always writes a *stable*-schema summary -- see
 * docs/observability.md#bench-perf-json -- to BENCH_perf.json (or
 * $EDGETHERM_BENCH_JSON when set), which CI archives so perf trajectories
 * can be compared across commits without parsing the console output.
 */

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/fleet.hh"
#include "power/layout.hh"
#include "telemetry/events.hh" // jsonEscape
#include "thermal/heat_matrix.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace {

using namespace ecolo;
using namespace ecolo::thermal;

power::DataCenterLayout
layoutWithServers(std::size_t num_servers)
{
    power::DataCenterLayout::Params params;
    params.numRacks = num_servers / 20;
    params.serversPerRack = 20;
    return power::DataCenterLayout(params);
}

/** A deterministic, mildly varying power history to convolve. */
void
fillHistory(MatrixThermalModel &model, std::size_t num_servers,
            std::size_t horizon)
{
    std::vector<Kilowatts> powers(num_servers);
    for (std::size_t m = 0; m < horizon; ++m) {
        for (std::size_t j = 0; j < num_servers; ++j) {
            powers[j] = Kilowatts(
                0.10 + 0.01 * static_cast<double>((j + m) % 7));
        }
        model.pushPowers(powers);
    }
}

/** A rank-3 synthetic "CFD-like" tensor (three separable components). */
HeatDistributionMatrix
rankThreeMatrix(const power::DataCenterLayout &layout, std::size_t horizon)
{
    const std::size_t n = layout.numServers();
    auto base = HeatDistributionMatrix::analyticDefault(
        layout, HeatDistributionMatrix::AnalyticParams(), horizon);
    HeatDistributionMatrix matrix(n, horizon);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double g = base.steadyGain(i, j);
            for (std::size_t tau = 0; tau < horizon; ++tau) {
                const double t = static_cast<double>(tau + 1);
                // Three distinct temporal shapes weighted by position.
                matrix.coeff(i, j, tau) =
                    g * (0.6 / t + 0.3 * (1.0 / (t * t)) *
                                       (1.0 + 0.5 * ((i + j) % 3)) +
                         0.1 * (tau == 0 ? 1.0 : 0.0) * ((j % 2) + 1));
            }
        }
    }
    return matrix;
}

// ---- Dense vs. factorized convolution (paper default N=40, H=10). ----

void
BM_ThermalRisesDense(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t horizon = 10;
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(
            layoutWithServers(n), HeatDistributionMatrix::AnalyticParams(),
            horizon),
        ThermalComputeMode::Dense);
    fillHistory(model, n, horizon);
    std::vector<double> rises;
    for (auto _ : state) {
        model.computeAllRises(rises);
        benchmark::DoNotOptimize(rises.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalRisesDense)->Arg(40)->Arg(80)->Arg(160);

void
BM_ThermalRisesFactorized(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t horizon = 10;
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(
            layoutWithServers(n), HeatDistributionMatrix::AnalyticParams(),
            horizon),
        ThermalComputeMode::Auto);
    fillHistory(model, n, horizon);
    std::vector<double> rises;
    for (auto _ : state) {
        model.computeAllRises(rises);
        benchmark::DoNotOptimize(rises.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("rank=" +
                   std::to_string(model.factorizationRank()));
}
BENCHMARK(BM_ThermalRisesFactorized)->Arg(40)->Arg(80)->Arg(160);

void
BM_ThermalRisesLowRank(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t horizon = 10;
    MatrixThermalModel model(rankThreeMatrix(layoutWithServers(n), horizon),
                             ThermalComputeMode::Auto);
    fillHistory(model, n, horizon);
    std::vector<double> rises;
    for (auto _ : state) {
        model.computeAllRises(rises);
        benchmark::DoNotOptimize(rises.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("rank=" +
                   std::to_string(model.factorizationRank()));
}
BENCHMARK(BM_ThermalRisesLowRank)->Arg(40)->Arg(80);

// ---- Year-long slot loop: the acceptance metric of the streaming ----
// ---- kernel (push + computeAllRises per slot, N=40, H=10).        ----

/**
 * The engine's per-slot usage pattern over a deterministic "year": each
 * benchmark iteration replays one day (1440 slots) of a pseudo-random
 * schedule, so a normal run covers hundreds of simulated days and the
 * counters yield a stable ns/slot. The `slots_per_iter` counter is what
 * writePerfJson divides real_time_ns by to derive the `ns_per_slot`
 * metric that tools/bench_compare.py gates regressions on.
 */
void
benchYearSlotLoop(benchmark::State &state, KernelMode mode)
{
    constexpr std::size_t kSlotsPerDay = 1440;
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t horizon = 10;
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(
            layoutWithServers(n), HeatDistributionMatrix::AnalyticParams(),
            horizon),
        mode);

    // One precomputed day of mostly-idle-with-bursts power vectors.
    std::vector<std::vector<Kilowatts>> day(
        kSlotsPerDay, std::vector<Kilowatts>(n));
    std::uint64_t lcg = 0x853c49e6748fea9bULL;
    for (auto &powers : day) {
        for (auto &p : powers) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            const double u = static_cast<double>(lcg >> 11) * 0x1.0p-53;
            p = Kilowatts(u > 0.9 ? 0.45 + 0.3 * u : 0.05 + 0.25 * u);
        }
    }

    std::vector<double> rises;
    for (auto _ : state) {
        for (const auto &powers : day) {
            model.pushPowers(powers);
            model.computeAllRises(rises);
            benchmark::DoNotOptimize(rises.data());
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSlotsPerDay));
    state.counters["slots_per_iter"] =
        static_cast<double>(kSlotsPerDay);
    // Single-lane loop: aggregate == plain, reported so this benchmark
    // can anchor --normalize-by for the ns_per_slot_aggregate gate too.
    state.counters["aggregate_slots_per_iter"] =
        static_cast<double>(kSlotsPerDay);
    state.SetLabel(std::string("kernel=") +
                   kernelModeName(model.activeKernel()) +
                   " rank=" + std::to_string(model.factorizationRank()));
}

void
BM_YearSlotLoopDense(benchmark::State &state)
{
    benchYearSlotLoop(state, KernelMode::Dense);
}
BENCHMARK(BM_YearSlotLoopDense)->Arg(40)->Unit(benchmark::kMillisecond);

void
BM_YearSlotLoopFactorized(benchmark::State &state)
{
    benchYearSlotLoop(state, KernelMode::Factorized);
}
BENCHMARK(BM_YearSlotLoopFactorized)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void
BM_YearSlotLoopStreaming(benchmark::State &state)
{
    benchYearSlotLoop(state, KernelMode::Streaming);
}
BENCHMARK(BM_YearSlotLoopStreaming)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

// ---- End-to-end campaign: dense vs. factorized engine hot path. ----

void
benchCampaign(benchmark::State &state, ThermalComputeMode mode)
{
    auto config = core::SimulationConfig::paperDefault();
    config.thermalMode = mode;
    const double days = 2.0;
    // Setup (trace synthesis, scale bisection, matrix + factorization)
    // vs. slot loop, reported separately: the split is what the
    // SetupCache sharing in runCampaigns attacks, and watching both
    // counters keeps a setup regression from hiding inside an overall
    // time dominated by the loop (or vice versa).
    std::chrono::steady_clock::duration setup_time{};
    std::chrono::steady_clock::duration loop_time{};
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        core::Simulation sim(
            config, core::makeForesightedPolicy(config, 14.0));
        const auto t1 = std::chrono::steady_clock::now();
        sim.runDays(days);
        const auto t2 = std::chrono::steady_clock::now();
        setup_time += t1 - t0;
        loop_time += t2 - t1;
        benchmark::DoNotOptimize(sim.metrics().emergencies());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(days * 24 * 60));
    state.counters["slots_per_iter"] = days * 24 * 60;
    const auto iters = static_cast<double>(
        state.iterations() > 0 ? state.iterations() : 1);
    state.counters["setup_ns_per_iter"] =
        std::chrono::duration<double, std::nano>(setup_time).count() /
        iters;
    state.counters["loop_ns_per_slot"] =
        std::chrono::duration<double, std::nano>(loop_time).count() /
        (iters * days * 24 * 60);
}

void
BM_CampaignDense(benchmark::State &state)
{
    benchCampaign(state, ThermalComputeMode::Dense);
}
BENCHMARK(BM_CampaignDense)->Unit(benchmark::kMillisecond);

void
BM_CampaignFactorized(benchmark::State &state)
{
    benchCampaign(state, ThermalComputeMode::Factorized);
}
BENCHMARK(BM_CampaignFactorized)->Unit(benchmark::kMillisecond);

void
BM_CampaignStreaming(benchmark::State &state)
{
    benchCampaign(state, ThermalComputeMode::Streaming);
}
BENCHMARK(BM_CampaignStreaming)->Unit(benchmark::kMillisecond);

// ---- Lane-batched sweep vs. one-campaign-per-thread (the ----
// ---- acceptance metric of the lane-batch engine).         ----

/**
 * A sensitivity-sweep shaped batch: one seed (so members share a
 * workload fingerprint), myopic thresholds x battery capacities. Both
 * execution models run the same specs pinned to two pool threads --
 * enough to exercise group parallelism while keeping the aggregate
 * throughput ratio a property of the execution model rather than of
 * however many cores the measuring machine has.
 */
std::vector<benchutil::CampaignSpec>
sweepSpecs(std::size_t members, double days)
{
    const auto base = core::SimulationConfig::paperDefault();
    std::vector<benchutil::CampaignSpec> specs;
    specs.reserve(members);
    for (std::size_t k = 0; k < members; ++k) {
        benchutil::CampaignSpec spec;
        spec.config = base;
        spec.config.batterySpec.capacity =
            KilowattHours(0.2 + 0.05 * static_cast<double>(k / 8));
        const double threshold =
            6.8 + 0.1 * static_cast<double>(k % 8);
        spec.makePolicy =
            [threshold](const core::SimulationConfig &config) {
                return core::makeMyopicPolicy(config,
                                              Kilowatts(threshold));
            };
        spec.days = days;
        spec.label = "sweep";
        spec.parameter = threshold;
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
benchSweep(benchmark::State &state, bool lane_batched)
{
    util::ThreadPool::setGlobalThreads(2);
    constexpr std::size_t kMembers = 16;
    constexpr double kDays = 2.0;
    const auto specs = sweepSpecs(kMembers, kDays);
    for (auto _ : state) {
        auto results = lane_batched
                           ? benchutil::runCampaigns(specs)
                           : benchutil::runCampaignsPerThread(specs);
        benchmark::DoNotOptimize(results.data());
    }
    const double aggregate_slots =
        kDays * 24 * 60 * static_cast<double>(kMembers);
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(aggregate_slots));
    // Both counters carry the same value: slots_per_iter feeds the
    // existing ns_per_slot gate, aggregate_slots_per_iter the
    // ns_per_slot_aggregate one (sweep cost is inherently aggregate).
    state.counters["slots_per_iter"] = aggregate_slots;
    state.counters["aggregate_slots_per_iter"] = aggregate_slots;
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());
}

void
BM_LaneBatchSweepPerThread(benchmark::State &state)
{
    benchSweep(state, /*lane_batched=*/false);
}
BENCHMARK(BM_LaneBatchSweepPerThread)->Unit(benchmark::kMillisecond);

void
BM_LaneBatchSweep(benchmark::State &state)
{
    benchSweep(state, /*lane_batched=*/true);
}
BENCHMARK(BM_LaneBatchSweep)->Unit(benchmark::kMillisecond);

void
BM_LaneBatchFleet(benchmark::State &state)
{
    util::ThreadPool::setGlobalThreads(2);
    constexpr std::size_t kSites = 16;
    constexpr MinuteIndex kChunk = 30;
    auto config = core::SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    core::FleetSimulation fleet(config, kSites, 14 * 60,
                                Kilowatts(6.5));
    for (auto _ : state) {
        fleet.run(kChunk);
        benchmark::DoNotOptimize(fleet.result().numSites);
    }
    const double aggregate_slots =
        static_cast<double>(kChunk) * static_cast<double>(kSites);
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(aggregate_slots));
    state.counters["slots_per_iter"] = aggregate_slots;
    state.counters["aggregate_slots_per_iter"] = aggregate_slots;
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());
}
BENCHMARK(BM_LaneBatchFleet)->Unit(benchmark::kMillisecond);

// ---- Serial vs. parallel fleet simulation. ----

void
benchFleet(benchmark::State &state, std::size_t threads)
{
    util::ThreadPool::setGlobalThreads(threads);
    auto config = core::SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    core::FleetSimulation fleet(config, 4, 14 * 60, Kilowatts(6.5));
    for (auto _ : state) {
        fleet.run(30);
        benchmark::DoNotOptimize(fleet.result().numSites);
    }
    state.SetItemsProcessed(state.iterations() * 30 * 4);
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());
}

void
BM_FleetSerial(benchmark::State &state)
{
    benchFleet(state, 1);
}
BENCHMARK(BM_FleetSerial)->Unit(benchmark::kMillisecond);

void
BM_FleetParallel(benchmark::State &state)
{
    benchFleet(state, util::ThreadPool::defaultThreads());
}
BENCHMARK(BM_FleetParallel)->Unit(benchmark::kMillisecond);

// ---- Serial vs. parallel CFD matrix extraction. ----

void
benchExtraction(benchmark::State &state, std::size_t threads)
{
    util::ThreadPool::setGlobalThreads(threads);
    const power::DataCenterLayout layout;
    CfdParams params;
    params.cellSize = 0.3; // coarse grid to keep one extraction short
    params.dt = 0.12;
    const std::vector<Kilowatts> baseline(layout.numServers(),
                                          Kilowatts(0.15));
    for (auto _ : state) {
        auto matrix = HeatDistributionMatrix::extractFromCfd(
            layout, params, baseline, Kilowatts(1.0), /*horizon=*/3,
            /*settle=*/minutes(2));
        benchmark::DoNotOptimize(matrix.coeff(0, 0, 0));
    }
    state.SetItemsProcessed(state.iterations() * layout.numServers());
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());
}

void
BM_CfdExtractionSerial(benchmark::State &state)
{
    benchExtraction(state, 1);
}
BENCHMARK(BM_CfdExtractionSerial)->Unit(benchmark::kMillisecond);

void
BM_CfdExtractionParallel(benchmark::State &state)
{
    benchExtraction(state, util::ThreadPool::defaultThreads());
}
BENCHMARK(BM_CfdExtractionParallel)->Unit(benchmark::kMillisecond);

/**
 * Console output as usual, plus an in-memory copy of every finished run
 * for the stable-schema JSON summary.
 */
class PerfJsonReporter : public benchmark::ConsoleReporter
{
  public:
    struct CollectedRun
    {
        std::string name;
        std::string label;
        std::int64_t iterations = 0;
        double realTimeNs = 0.0;
        double cpuTimeNs = 0.0;
        std::vector<std::pair<std::string, double>> counters;
    };

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        benchmark::ConsoleReporter::ReportRuns(report);
        for (const Run &run : report) {
            if (run.error_occurred)
                continue;
            CollectedRun collected;
            collected.name = run.benchmark_name();
            collected.label = run.report_label;
            collected.iterations = run.iterations;
            const double iters =
                run.iterations > 0 ? static_cast<double>(run.iterations)
                                   : 1.0;
            collected.realTimeNs =
                run.real_accumulated_time * 1e9 / iters;
            collected.cpuTimeNs = run.cpu_accumulated_time * 1e9 / iters;
            for (const auto &[counter_name, counter] : run.counters) {
                collected.counters.emplace_back(
                    counter_name, static_cast<double>(counter));
            }
            // Hardware-comparable per-slot costs for slot-loop benches:
            // tools/bench_compare.py gates regressions on these derived
            // counters (ns_per_slot_aggregate spreads the wall time over
            // every lane-batched campaign's slots).
            const std::size_t present = collected.counters.size();
            for (std::size_t c = 0; c < present; ++c) {
                const auto &[counter_name, value] = collected.counters[c];
                if (value <= 0.0)
                    continue;
                if (counter_name == "slots_per_iter") {
                    collected.counters.emplace_back(
                        "ns_per_slot", collected.realTimeNs / value);
                } else if (counter_name == "aggregate_slots_per_iter") {
                    collected.counters.emplace_back(
                        "ns_per_slot_aggregate",
                        collected.realTimeNs / value);
                }
            }
            runs_.push_back(std::move(collected));
        }
    }

    const std::vector<CollectedRun> &runs() const { return runs_; }

  private:
    std::vector<CollectedRun> runs_;
};

bool
writePerfJson(const std::string &path,
              const std::vector<PerfJsonReporter::CollectedRun> &runs)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    using ecolo::telemetry::jsonEscape;
    os << "{\"schema\":\"edgetherm-bench-perf-v1\",\"benchmarks\":[";
    os.precision(17);
    for (std::size_t k = 0; k < runs.size(); ++k) {
        const auto &run = runs[k];
        if (k > 0)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(run.name)
           << "\",\"iterations\":" << run.iterations
           << ",\"real_time_ns\":" << run.realTimeNs
           << ",\"cpu_time_ns\":" << run.cpuTimeNs << ",\"label\":\""
           << jsonEscape(run.label) << "\",\"counters\":{";
        for (std::size_t c = 0; c < run.counters.size(); ++c) {
            if (c > 0)
                os << ",";
            os << "\"" << jsonEscape(run.counters[c].first)
               << "\":" << run.counters[c].second;
        }
        os << "}}";
    }
    os << "]}\n";
    os.flush();
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    PerfJsonReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const char *env_path = std::getenv("EDGETHERM_BENCH_JSON");
    const std::string path = (env_path != nullptr && env_path[0] != '\0')
                                 ? env_path
                                 : "BENCH_perf.json";
    if (!writePerfJson(path, reporter.runs())) {
        ecolo::warn("could not write perf summary: ", path);
        return 1;
    }
    ecolo::inform("wrote perf summary: ", path, " (", reporter.runs().size(),
                  " benchmarks)");
    return 0;
}
