/**
 * @file
 * Table I reproduction: print every default parameter the simulator uses,
 * side by side with the paper's published value, and benchmark the core
 * simulation kernel's throughput.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/engine.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

void
printTable1()
{
    const auto config = SimulationConfig::paperDefault();
    printBanner(std::cout, "Table I: default parameters (paper vs. this "
                           "implementation)");
    TextTable table({"parameter", "paper", "ours"});
    table.addRow("Data Center Capacity", "8 kW",
                 fixed(config.capacity.value(), 1) + " kW");
    table.addRow("Number of Tenants", "4", config.numBenignTenants + 1);
    table.addRow("Number of Servers", "40", config.numServers());
    table.addRow("Number of Server Racks", "2", config.layout.numRacks);
    table.addRow("Attacker's Capacity (c_a)", "0.8 kW",
                 fixed(config.attackerSubscription.value(), 1) + " kW");
    table.addRow("Attacker's Total Battery Capacity", "0.2 kWh",
                 fixed(config.batterySpec.capacity.value(), 1) + " kWh");
    table.addRow("Attack Thermal Load from Battery", "1 kW",
                 fixed(config.attackLoad.value(), 1) + " kW");
    table.addRow("Charging Rate of the Battery", "0.2 kW",
                 fixed(config.batterySpec.maxChargeRate.value(), 1) +
                     " kW");
    table.addRow("Temperature Threshold for Emergency", "32 C",
                 fixed(config.emergencyThreshold.value(), 0) + " C");
    table.addRow("Q-learning Discount Factor", "0.99", "0.99");
    table.addRow("Q-learning Learning Rate", "1/t^0.85", "1/t^0.85");
    table.print(std::cout);
    std::cout << std::flush;
}

/** Throughput of the full engine: simulated minutes per second. */
void
BM_SimulationMinute(benchmark::State &state)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    for (auto _ : state)
        sim.run(1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulationMinute);

/** A whole simulated day per iteration. */
void
BM_SimulationDay(benchmark::State &state)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    for (auto _ : state)
        sim.run(1440);
    state.SetItemsProcessed(state.iterations() * 1440);
}
BENCHMARK(BM_SimulationDay);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
