/**
 * @file
 * Fig. 13 reproduction: robustness to a different load pattern.
 *
 * (a) A 24-hour snapshot of the alternate (Google-cluster-style) power
 *     trace, scaled to the same 75% average utilization.
 * (b) Benign tenants' normalized 95th-percentile response time during
 *     emergencies under Myopic and Foresighted -- the paper finds the
 *     same qualitative damage as with the default trace.
 */

#include <iostream>

#include "common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;
    using namespace ecolo::benchutil;

    auto config = SimulationConfig::paperDefault();
    config.traceKind = TraceKind::GoogleStyle;

    // (a) 24-hour snapshot.
    const auto records =
        recordRun(config, std::make_unique<StandbyPolicy>(), 8.0);
    printBanner(std::cout, "Fig. 13(a): 24-hour snapshot of the alternate "
                           "(Google-style) power trace");
    TextTable snapshot({"hour", "total power (kW)"});
    for (MinuteIndex m = 0; m < kMinutesPerDay; m += 15) {
        const auto &r = records[kMinutesPerDay + m];
        snapshot.addRow(fixed(static_cast<double>(m) / 60.0, 2),
                        fixed(r.meteredTotal.value(), 2));
    }
    snapshot.print(std::cout);
    OnlineStats week;
    for (const auto &r : records)
        week.add(r.meteredTotal.value());
    std::cout << "8-day mean: " << fixed(week.mean(), 2)
              << " kW (target 6.00); plateau/burst structure instead of "
                 "the default trace's smooth diurnal swing\n";

    // (b) Year-long attack campaigns on the alternate trace.
    const double days = 365.0;
    const auto myopic = runCampaign(
        config, makeMyopicPolicy(config, Kilowatts(7.4)), days, "Myopic",
        7.4);
    const auto foresighted = runCampaign(
        config, makeForesightedPolicy(config, 14.0), days, "Foresighted",
        14.0);

    printBanner(std::cout, "Fig. 13(b): attack impact on the alternate "
                           "trace (year-long)");
    TextTable table({"policy", "attack (h/day)", "emergency (%)",
                     "emergency (h/yr)", "norm. 95p latency"});
    for (const auto &r : {myopic, foresighted}) {
        table.addRow(r.policy, fixed(r.attackHoursPerDay, 2),
                     fixed(r.emergencyPercent, 2),
                     fixed(r.emergencyHoursPerYear, 0),
                     fixed(r.normalizedPerf, 2));
    }
    table.print(std::cout);
    std::cout << "paper: benign tenants suffer similar performance "
                 "degradation as with the default trace; findings "
                 "consistent -- reproduced if both policies still create "
                 "substantial emergencies with 2-4x latency\n";
    return 0;
}
