/**
 * @file
 * Serving-stack throughput benchmarks: wire-protocol codec rates, cache
 * fingerprint/lookup rates, raw scheduler dispatch, and end-to-end
 * request latency over loopback for both the cold (simulate) and warm
 * (cache hit) paths.
 *
 * Like bench_perf_kernels, the binary always writes a *stable*-schema
 * summary -- independent of google-benchmark's own JSON -- to
 * BENCH_serve.json (or $EDGETHERM_BENCH_SERVE_JSON when set) so CI can
 * archive serving-throughput trajectories across commits.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "gateway/gateway.hh"
#include "gateway/http.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"
#include "telemetry/events.hh" // jsonEscape
#include "telemetry/latency.hh"
#include "util/keyvalue.hh"
#include "util/logging.hh"

namespace {

using namespace ecolo;
using namespace ecolo::serve;

SubmitPayload
sampleSubmit()
{
    SubmitPayload p;
    p.priority = Priority::Interactive;
    p.clientId = "bench-client";
    p.policy = "myopic";
    p.param = 7.4;
    p.paramSet = true;
    p.horizonMinutes = 1440;
    p.scenarioText = "seed = 42\nbattery.capacityKwh = 0.4\n";
    return p;
}

KeyValueConfig
sampleScenario()
{
    std::istringstream is("seed = 42\nbattery.capacityKwh = 0.4\n");
    return KeyValueConfig::tryParse(is, "<bench>").take();
}

// ---- Wire protocol: frame encode + decode round trip. ----

void
BM_ProtocolSubmitRoundTrip(benchmark::State &state)
{
    const SubmitPayload payload = sampleSubmit();
    for (auto _ : state) {
        const std::string frame =
            encodeFrame(MessageType::Submit, 1, encodeSubmit(payload));
        auto decoded = decodeSubmit(
            frame.substr(kHeaderBytes));
        benchmark::DoNotOptimize(decoded.ok());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolSubmitRoundTrip);

void
BM_ProtocolResultEncode(benchmark::State &state)
{
    const std::string report(static_cast<std::size_t>(state.range(0)),
                             'r');
    for (auto _ : state) {
        const std::string frame =
            encodeFrame(MessageType::ResultReport, 1,
                        encodeResult({report}));
        benchmark::DoNotOptimize(frame.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProtocolResultEncode)->Arg(1 << 10)->Arg(64 << 10);

// ---- Result cache: fingerprint derivation and hit lookup. ----

void
BM_CacheKeyFingerprint(benchmark::State &state)
{
    const KeyValueConfig scenario = sampleScenario();
    for (auto _ : state) {
        const CacheKey key = makeCacheKey(scenario, "myopic", 7.4, 1440,
                                          thermal::KernelMode::Auto);
        benchmark::DoNotOptimize(key.hash);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheKeyFingerprint);

void
BM_CacheHitLookup(benchmark::State &state)
{
    ResultCache cache(32u << 20, 1024);
    const std::string report(16 << 10, 'r');
    const CacheKey key{0x1234};
    cache.insert(key, report);
    for (auto _ : state) {
        auto hit = cache.lookup(key);
        benchmark::DoNotOptimize(hit.has_value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitLookup);

// ---- Scheduler: no-op job dispatch rate through the full
// admission -> lane queue -> worker -> completion path. ----

void
BM_SchedulerDispatch(benchmark::State &state)
{
    const auto jobs_per_batch =
        static_cast<std::uint64_t>(state.range(0));
    std::uint64_t next_id = 1;
    for (auto _ : state) {
        Scheduler::Options options;
        options.numWorkers = 2;
        options.maxQueued = jobs_per_batch;
        Scheduler scheduler(options);
        std::thread runner([&] { scheduler.run(); });
        std::atomic<std::uint64_t> done{0};
        for (std::uint64_t j = 0; j < jobs_per_batch; ++j) {
            scheduler.submit(next_id++,
                             j % 4 == 0 ? Lane::Batch : Lane::Interactive,
                             "client-" + std::to_string(j % 8),
                             [&done](const CancelToken &) {
                                 done.fetch_add(1);
                             });
        }
        scheduler.drain(false);
        runner.join();
        benchmark::DoNotOptimize(done.load());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(jobs_per_batch));
}
BENCHMARK(BM_SchedulerDispatch)->Arg(256)->Unit(benchmark::kMillisecond);

// ---- End to end over loopback: cold simulate vs. warm cache hit. ----

RequestSpec
benchRequest(double days)
{
    RequestSpec spec;
    spec.clientId = "bench";
    spec.policy = "myopic";
    spec.horizonMinutes = static_cast<std::int64_t>(days * 24 * 60);
    spec.scenarioText = "seed = 42\n";
    return spec;
}

void
BM_EndToEndColdRequest(benchmark::State &state)
{
    ServerOptions options;
    options.numWorkers = 2;
    Server server(std::move(options));
    if (!server.start().ok()) {
        state.SkipWithError("server failed to start");
        return;
    }
    ServeClient client(server.port());
    // A distinct seed per iteration defeats the cache: every request
    // pays connection + parse + simulate (0.05 days) + render.
    std::uint64_t seed = 1;
    for (auto _ : state) {
        RequestSpec spec = benchRequest(0.05);
        spec.scenarioText = "seed = " + std::to_string(seed++) + "\n";
        const auto outcome = client.submit(spec);
        if (!outcome.ok() ||
            outcome.value().status != OutcomeStatus::Completed) {
            state.SkipWithError("cold request failed");
            break;
        }
        benchmark::DoNotOptimize(outcome.value().report.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndColdRequest)->Unit(benchmark::kMillisecond);

void
BM_EndToEndWarmCacheHit(benchmark::State &state)
{
    ServerOptions options;
    options.numWorkers = 2;
    Server server(std::move(options));
    if (!server.start().ok()) {
        state.SkipWithError("server failed to start");
        return;
    }
    ServeClient client(server.port());
    const RequestSpec spec = benchRequest(0.05);
    {
        const auto warm = client.submit(spec); // fill the cache
        if (!warm.ok() ||
            warm.value().status != OutcomeStatus::Completed) {
            state.SkipWithError("warm-up request failed");
            return;
        }
    }
    for (auto _ : state) {
        const auto outcome = client.submit(spec);
        if (!outcome.ok() || !outcome.value().cacheHit) {
            state.SkipWithError("expected a cache hit");
            break;
        }
        benchmark::DoNotOptimize(outcome.value().report.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndWarmCacheHit)->Unit(benchmark::kMillisecond);

// ---- Gateway leg: the same warm cache hit, but through the full
// HTTP/JSON front end (parse -> shard -> forward -> render JSON) on a
// single keep-alive connection. The gateway_requests_per_sec counter
// lands in BENCH_serve.json so CI can track front-end overhead against
// the raw wire-protocol numbers above. ----

/** Read one HTTP response off a blocking loopback connection. */
bool
readHttpResponse(util::TcpConnection &conn, std::string &buffer,
                 gateway::HttpResponse &out)
{
    gateway::HttpResponseParser parser;
    for (;;) {
        if (!buffer.empty()) {
            const std::size_t used =
                parser.feed(buffer.data(), buffer.size());
            buffer.erase(0, used);
        }
        if (parser.failed())
            return false;
        if (parser.complete()) {
            out = parser.response();
            return true;
        }
        char buf[4096];
        auto chunk = conn.tryRead(buf, sizeof buf);
        if (!chunk.ok() || chunk.value().eof)
            return false;
        buffer.append(buf, chunk.value().bytes);
    }
}

void
BM_GatewayWarmRequest(benchmark::State &state)
{
    ServerOptions serverOptions;
    serverOptions.numWorkers = 2;
    Server server(std::move(serverOptions));
    if (!server.start().ok()) {
        state.SkipWithError("worker failed to start");
        return;
    }
    gateway::GatewayOptions gwOptions;
    gwOptions.workers = {{"127.0.0.1", server.port()}};
    gwOptions.pool.probeIntervalMs = 0;
    gateway::Gateway gw(std::move(gwOptions));
    if (!gw.start().ok()) {
        state.SkipWithError("gateway failed to start");
        return;
    }

    const std::string body =
        "{\"policy\":\"myopic\",\"horizon_minutes\":72,"
        "\"scenario\":\"seed = 42\\n\",\"client_id\":\"bench\"}";
    const std::string wire =
        "POST /v1/runs HTTP/1.1\r\nHost: bench\r\n"
        "Content-Type: application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    auto connected = util::connectLoopback(gw.port());
    if (!connected.ok()) {
        state.SkipWithError("gateway connect failed");
        return;
    }
    util::TcpConnection conn = connected.take();
    std::string buffer;
    gateway::HttpResponse response;
    // First request fills the worker cache; iterations measure the
    // keep-alive warm path.
    if (!conn.writeAll(wire.data(), wire.size()).ok() ||
        !readHttpResponse(conn, buffer, response) ||
        response.status != 200) {
        state.SkipWithError("gateway warm-up request failed");
        return;
    }
    for (auto _ : state) {
        if (!conn.writeAll(wire.data(), wire.size()).ok() ||
            !readHttpResponse(conn, buffer, response) ||
            response.status != 200) {
            state.SkipWithError("gateway request failed");
            break;
        }
        benchmark::DoNotOptimize(response.body.size());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["gateway_requests_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GatewayWarmRequest)->Unit(benchmark::kMillisecond);

// ---- Cross-request batching: the 64-request homogeneous campaign.
// Same seed (equal workload fingerprints: shared benign traces and a
// shared setup cache), swept policy parameter (64 distinct cache keys:
// the result cache never short-circuits a member). Arg(1) runs the
// micro-batching scheduler, Arg(0) the pre-batching scalar dispatch;
// the serve_{batched,scalar}_requests_per_sec counters land in
// BENCH_serve.json and their ratio is the CI-gated speedup. ----

constexpr int kCampaignRequests = 64;
constexpr int kCampaignClients = 8;

void
BM_ServeCampaign64(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;
    ServerOptions options;
    options.numWorkers = 2;
    options.maxQueued = 2 * kCampaignRequests;
    options.cacheMaxEntries = 4096;
    options.batching = batched;
    options.batchWindowMs = 5;
    Server server(std::move(options));
    if (!server.start().ok()) {
        state.SkipWithError("server failed to start");
        return;
    }
    std::uint64_t campaign = 0;
    double wallSeconds = 0.0;
    for (auto _ : state) {
        const auto started = std::chrono::steady_clock::now();
        ++campaign; // fresh param range: no result-cache carryover
        std::atomic<int> failures{0};
        std::vector<std::thread> clients;
        clients.reserve(kCampaignClients);
        for (int c = 0; c < kCampaignClients; ++c) {
            clients.emplace_back([&, c, campaign] {
                ServeClient client(server.port());
                const int per_client =
                    kCampaignRequests / kCampaignClients;
                for (int r = 0; r < per_client; ++r) {
                    const int i = c * per_client + r;
                    RequestSpec spec;
                    spec.clientId = "bench-" + std::to_string(c);
                    spec.priority = Priority::Batch;
                    spec.policy = "myopic";
                    spec.param =
                        5.0 + 0.01 * static_cast<double>(
                                         campaign * kCampaignRequests +
                                         i);
                    spec.paramSet = true;
                    spec.horizonMinutes = 1440;
                    spec.scenarioText = "seed = 42\n";
                    const auto outcome =
                        client.submitWithRetry(spec, RetryPolicy{});
                    if (!outcome.ok() ||
                        outcome.value().status !=
                            OutcomeStatus::Completed)
                        failures.fetch_add(1);
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
        wallSeconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count();
        if (failures.load() != 0) {
            state.SkipWithError("campaign request failed");
            break;
        }
    }
    if (batched && server.schedulerStats().batchesDispatched == 0) {
        state.SkipWithError("batched leg formed no batches");
        return;
    }
    // Rate over *wall* time: the requests run on server threads, so the
    // benchmark thread's CPU clock (kIsRate's denominator) is ~zero.
    // The shared campaign_requests_per_sec name lets bench_compare
    // normalize the batched leg by the scalar leg (their ratio is the
    // machine-independent speedup CI gates on); the per-leg aliases
    // keep the trajectory readable in BENCH_serve.json.
    if (wallSeconds > 0.0) {
        const double rate = static_cast<double>(state.iterations()) *
                            kCampaignRequests / wallSeconds;
        state.counters["campaign_requests_per_sec"] = rate;
        state.counters[batched ? "serve_batched_requests_per_sec"
                               : "serve_scalar_requests_per_sec"] = rate;
    }
    const auto occupancy = server.schedulerStats();
    state.counters["batch_max_occupancy"] =
        static_cast<double>(occupancy.batchMaxOccupancy);
}
BENCHMARK(BM_ServeCampaign64)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

// ---- Open-loop Poisson arrivals (first step toward the ROADMAP's
// edgetherm_loadgen): requests fire on a seeded exponential arrival
// clock regardless of completions -- queueing shows up in the measured
// tail instead of throttling the offered load, unlike the closed-loop
// legs above. Mixed lanes: every 4th arrival is interactive. ----

void
BM_ServeOpenLoopPoisson(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;
    constexpr int kArrivals = 96;
    constexpr double kMeanInterArrivalMs = 20.0;
    ServerOptions options;
    options.numWorkers = 2;
    options.maxQueued = 2 * kArrivals;
    options.cacheMaxEntries = 4096;
    options.batching = batched;
    options.batchWindowMs = 5;
    Server server(std::move(options));
    if (!server.start().ok()) {
        state.SkipWithError("server failed to start");
        return;
    }

    telemetry::TailLatency all;
    telemetry::TailLatency interactive;
    telemetry::TailLatency batchLane;
    std::atomic<int> failures{0};
    double wallSeconds = 0.0;
    for (auto _ : state) {
        // Deterministic arrival schedule: same offered load each run.
        std::mt19937_64 rng(4242);
        std::exponential_distribution<double> gap(
            1.0 / kMeanInterArrivalMs);
        std::vector<double> arrivalMs(kArrivals);
        double t = 0.0;
        for (int i = 0; i < kArrivals; ++i) {
            t += gap(rng);
            arrivalMs[i] = t;
        }
        std::vector<std::thread> inflight;
        inflight.reserve(kArrivals);
        const auto epoch = std::chrono::steady_clock::now();
        for (int i = 0; i < kArrivals; ++i) {
            std::this_thread::sleep_until(
                epoch + std::chrono::duration<double, std::milli>(
                            arrivalMs[i]));
            inflight.emplace_back([&, i] {
                const bool isInteractive = i % 4 == 0;
                RequestSpec spec;
                spec.clientId = "load-" + std::to_string(i % 6);
                spec.priority = isInteractive ? Priority::Interactive
                                              : Priority::Batch;
                spec.policy = "myopic";
                // 12 distinct keys: cold constructions early, result
                // cache hits on repeats -- a mixed realistic blend.
                spec.param = 5.0 + 0.1 * static_cast<double>(i % 12);
                spec.paramSet = true;
                spec.horizonMinutes = 720;
                spec.scenarioText = "seed = 42\n";
                const auto sent = std::chrono::steady_clock::now();
                ServeClient client(server.port());
                const auto outcome =
                    client.submitWithRetry(spec, RetryPolicy{});
                const double us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - sent)
                        .count();
                if (!outcome.ok() ||
                    outcome.value().status !=
                        OutcomeStatus::Completed) {
                    failures.fetch_add(1);
                    return;
                }
                all.record(us);
                (isInteractive ? interactive : batchLane).record(us);
            });
        }
        for (std::thread &t2 : inflight)
            t2.join();
        wallSeconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - epoch)
                           .count();
        if (failures.load() != 0) {
            state.SkipWithError("open-loop request failed");
            break;
        }
    }
    const auto overall = all.snapshot();
    const auto inter = interactive.snapshot();
    const auto batchSnap = batchLane.snapshot();
    if (wallSeconds > 0.0)
        state.counters["openloop_requests_per_sec"] =
            static_cast<double>(overall.count) / wallSeconds;
    state.counters["openloop_p99_ms"] = overall.p99 / 1000.0;
    state.counters["openloop_interactive_p99_ms"] = inter.p99 / 1000.0;
    state.counters["openloop_batch_p99_ms"] = batchSnap.p99 / 1000.0;
}
BENCHMARK(BM_ServeOpenLoopPoisson)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/** Collects finished runs for the stable-schema JSON summary. */
class ServeJsonReporter : public benchmark::ConsoleReporter
{
  public:
    struct CollectedRun
    {
        std::string name;
        std::string label;
        std::int64_t iterations = 0;
        double realTimeNs = 0.0;
        double cpuTimeNs = 0.0;
        std::vector<std::pair<std::string, double>> counters;
    };

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        benchmark::ConsoleReporter::ReportRuns(report);
        for (const Run &run : report) {
            if (run.error_occurred)
                continue;
            CollectedRun collected;
            collected.name = run.benchmark_name();
            collected.label = run.report_label;
            collected.iterations = run.iterations;
            const double iters =
                run.iterations > 0 ? static_cast<double>(run.iterations)
                                   : 1.0;
            collected.realTimeNs =
                run.real_accumulated_time * 1e9 / iters;
            collected.cpuTimeNs = run.cpu_accumulated_time * 1e9 / iters;
            for (const auto &[counter_name, counter] : run.counters) {
                collected.counters.emplace_back(
                    counter_name, static_cast<double>(counter));
            }
            runs_.push_back(std::move(collected));
        }
    }

    const std::vector<CollectedRun> &runs() const { return runs_; }

  private:
    std::vector<CollectedRun> runs_;
};

bool
writeServeJson(const std::string &path,
               const std::vector<ServeJsonReporter::CollectedRun> &runs)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    using ecolo::telemetry::jsonEscape;
    os << "{\"schema\":\"edgetherm-bench-serve-v1\",\"benchmarks\":[";
    os.precision(17);
    for (std::size_t k = 0; k < runs.size(); ++k) {
        const auto &run = runs[k];
        if (k > 0)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(run.name)
           << "\",\"iterations\":" << run.iterations
           << ",\"real_time_ns\":" << run.realTimeNs
           << ",\"cpu_time_ns\":" << run.cpuTimeNs << ",\"label\":\""
           << jsonEscape(run.label) << "\",\"counters\":{";
        for (std::size_t c = 0; c < run.counters.size(); ++c) {
            if (c > 0)
                os << ",";
            os << "\"" << jsonEscape(run.counters[c].first)
               << "\":" << run.counters[c].second;
        }
        os << "}}";
    }
    os << "]}\n";
    os.flush();
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    ServeJsonReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const char *env_path = std::getenv("EDGETHERM_BENCH_SERVE_JSON");
    const std::string path = (env_path != nullptr && env_path[0] != '\0')
                                 ? env_path
                                 : "BENCH_serve.json";
    if (!writeServeJson(path, reporter.runs())) {
        ecolo::warn("could not write serve summary: ", path);
        return 1;
    }
    ecolo::inform("wrote serve summary: ", path, " (",
                  reporter.runs().size(), " benchmarks)");
    return 0;
}
