/**
 * @file
 * Fig. 7 reproduction: validation of the simulation model.
 *
 * (a) Temperature dynamics: the paper overloads its 14-server prototype's
 *     cooling by 1.5 kW and shows that the heat-distribution model tracks
 *     the measured inlet temperature. We have no hardware, so the CFD-lite
 *     solver plays the prototype's role ("measured") and is compared with
 *     the fast model the year-long simulations use (heat-distribution
 *     matrix + lumped room overload integrator).
 *
 * (b) Battery energy dynamics: the paper discharges a 600 VA UPS feeding
 *     ~175 W of desktops for 10 minutes and then recharges it, showing a
 *     linear energy model with charging slower than discharging. We run
 *     the same schedule through the Battery model.
 *
 * Additionally, the heat-distribution matrix is extracted from the CFD
 * solver per the paper's procedure (per-server heat spikes, 10-minute
 * responses) and compared against the closed-form default matrix.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "battery/battery.hh"
#include "common.hh"
#include "thermal/cfd/solver.hh"
#include "thermal/environment.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

void
temperatureDynamics()
{
    const auto config = SimulationConfig::prototypeScale();
    power::DataCenterLayout layout(config.layout);
    const std::size_t n = layout.numServers();

    // The prototype's cooling handles 3 kW; run a 2.2 kW baseline, then
    // inject 1.5 kW more (total 4.5 kW -> 1.5 kW overload), as in the
    // paper's appendix experiment.
    const std::vector<Kilowatts> baseline(
        n, Kilowatts(2.2 / static_cast<double>(n)));
    const std::vector<Kilowatts> overloaded(
        n, Kilowatts(4.5 / static_cast<double>(n)));

    // "Measured": CFD-lite at fine time resolution, settled first.
    thermal::CfdParams cfd;
    cfd.coolingCapacity = config.cooling.capacity;
    thermal::CfdSolver solver(layout, cfd);
    solver.setAllServerPowers(baseline);
    solver.run(minutes(15));
    const double cfd_start = solver.maxInletTemperature().value();

    // "Model": heat-distribution matrix + lumped room integrator. The
    // lumped model has no derating here so that both models share the
    // same nameplate energy balance.
    auto cooling = config.cooling;
    cooling.capacityDeratingPerKelvin = 0.0;
    thermal::ThermalEnvironment model(
        thermal::HeatDistributionMatrix::analyticDefault(layout),
        cooling);
    for (int m = 0; m < 15; ++m)
        model.stepMinute(baseline);
    const double model_start = model.maxInletTemperature().value();

    printBanner(std::cout,
                "Fig. 7(a): inlet temperature rise under a 1.5 kW cooling "
                "overload -- CFD-lite ('measured') vs. fast model");
    TextTable table({"minute", "CFD rise (C)", "model rise (C)"});
    OnlineStats abs_err;
    for (int m = 1; m <= 12; ++m) {
        solver.setAllServerPowers(overloaded);
        solver.run(minutes(1));
        model.stepMinute(overloaded);
        const double cfd_rise =
            solver.maxInletTemperature().value() - cfd_start;
        const double model_rise =
            model.maxInletTemperature().value() - model_start;
        abs_err.add(std::abs(cfd_rise - model_rise));
        table.addRow(m, fixed(cfd_rise, 2), fixed(model_rise, 2));
    }
    table.print(std::cout);
    std::cout << "mean |CFD - model| = " << fixed(abs_err.mean(), 2)
              << " C\npaper: both curves climb several degrees within "
                 "minutes and track each other -- shape reproduced\n";
}

void
batteryDynamics()
{
    // A small UPS-class battery: losses make effective charging slower
    // than discharging, the asymmetry visible in the paper's Fig. 7(b).
    battery::BatterySpec spec;
    spec.capacity = KilowattHours(0.08);
    spec.maxChargeRate = Kilowatts(0.15);
    spec.maxDischargeRate = Kilowatts(0.3);
    spec.chargeEfficiency = 0.85;
    spec.dischargeEfficiency = 0.95;
    battery::Battery ups(spec, 1.0);

    printBanner(std::cout,
                "Fig. 7(b): UPS battery energy, 10-minute discharge at "
                "175 W then recharge");
    TextTable table({"minute", "stored energy (Wh)", "phase"});
    table.addRow(0, fixed(1000.0 * ups.energy().value(), 1), "full");
    for (int m = 1; m <= 10; ++m) {
        ups.discharge(Kilowatts(0.175), minutes(1));
        if (m % 2 == 0)
            table.addRow(m, fixed(1000.0 * ups.energy().value(), 1),
                         "discharging");
    }
    const double discharged_wh = 1000.0 * (0.08 - ups.energy().value());
    int minute = 10;
    while (!ups.full() && minute < 120) {
        ups.charge(Kilowatts(0.175), minutes(1));
        ++minute;
        if (minute % 4 == 0)
            table.addRow(minute, fixed(1000.0 * ups.energy().value(), 1),
                         "charging");
    }
    table.addRow(minute, fixed(1000.0 * ups.energy().value(), 1), "full");
    table.print(std::cout);
    std::cout << "discharged " << fixed(discharged_wh, 1) << " Wh in 10 "
              << "min; recharge took " << (minute - 10)
              << " min -- charging slower than discharging, matching the "
                 "paper's linear-model observation\n";
}

void
matrixExtraction()
{
    // The paper's extraction procedure on the prototype geometry: spike
    // each server by 0.4 kW over a warm baseline and record 10-minute
    // responses against a no-spike reference.
    const auto config = SimulationConfig::prototypeScale();
    power::DataCenterLayout layout(config.layout);
    const std::size_t n = layout.numServers();

    thermal::CfdParams cfd;
    cfd.cellSize = 0.25;
    cfd.coolingCapacity = config.cooling.capacity;
    const std::vector<Kilowatts> baseline(
        n, Kilowatts(2.0 / static_cast<double>(n)));
    const auto extracted = thermal::HeatDistributionMatrix::extractFromCfd(
        layout, cfd, baseline, Kilowatts(0.4));
    const auto analytic =
        thermal::HeatDistributionMatrix::analyticDefault(layout);

    printBanner(std::cout,
                "Heat-distribution matrix extraction (paper Sec. V-A "
                "procedure) vs. closed-form default");
    TextTable table({"server", "CFD self-gain (K/kW)",
                     "CFD total gain (K/kW)", "analytic total (K/kW)"});
    OnlineStats cfd_total, analytic_total;
    for (std::size_t i = 0; i < n; i += 3) {
        const double self = extracted.steadyGain(i, i);
        const double total = extracted.totalSteadyGain(i);
        table.addRow(i, fixed(self, 3), fixed(total, 3),
                     fixed(analytic.totalSteadyGain(i), 3));
    }
    for (std::size_t i = 0; i < n; ++i) {
        cfd_total.add(extracted.totalSteadyGain(i));
        analytic_total.add(analytic.totalSteadyGain(i));
    }
    table.print(std::cout);
    // Structural check: extracted self-coupling should dominate the
    // coupling to a far server, as in the closed-form matrix.
    int structure_ok = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t far = (i + n / 2) % n;
        structure_ok += extracted.steadyGain(i, i) >
                        extracted.steadyGain(i, far);
    }
    std::cout << "mean total gain: CFD-lite " << fixed(cfd_total.mean(), 3)
              << " K/kW vs analytic " << fixed(analytic_total.mean(), 3)
              << " K/kW; self-gain dominates far-coupling for "
              << structure_ok << "/" << n << " servers\n"
              << "note: the coarse open-airflow CFD-lite overestimates "
                 "absolute local coupling relative to a contained aisle; "
                 "the analytic matrix encodes containment-level gains "
                 "from the literature. The year-long simulations use the "
                 "analytic matrix; the extraction path demonstrates the "
                 "paper's procedure and preserves the spatial structure "
                 "(self > neighbor > far).\n";
}

} // namespace

int
main()
{
    temperatureDynamics();
    batteryDynamics();
    matrixExtraction();
    return 0;
}
