/**
 * @file
 * Section VII reproduction: efficacy of the operator-side defenses.
 *
 * The paper argues battery-assisted thermal attacks are "fairly easily
 * detected and nullified using a reasonable amount of efforts"; this
 * harness quantifies that for each proposed mechanism:
 *  - thermal-residual anomaly detection (power meters vs. thermal sensors)
 *  - per-server airflow audit (pinpointing the attacker)
 *  - long-term temperature-SLA statistics
 *  - side-channel jamming (prevention)
 *  - move-in inspection (prevention)
 */

#include <iostream>

#include "common.hh"
#include "defense/detectors.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using namespace ecolo::benchutil;

struct DetectionOutcome
{
    long residualLatency = -1; //!< minutes to residual-detector alarm
    long slaLatency = -1;      //!< minutes to SLA-monitor alarm
    bool attackerPinpointed = false;  //!< airflow audit
    bool cameraPinpointed = false;    //!< thermal-camera audit
    bool falseFlag = false;
    double emergencyHoursPerYear = 0.0;
};

DetectionOutcome
runWithDetectors(const SimulationConfig &config,
                 std::unique_ptr<AttackPolicy> policy, double days)
{
    Simulation sim(config, std::move(policy));

    defense::ThermalResidualDetector residual({}, config.cooling);
    defense::SlaMonitor::Params sla_params;
    sla_params.slaTemperature = Celsius(27.5);
    sla_params.slaBudget = 0.005;
    defense::SlaMonitor sla(sla_params);
    defense::AirflowAudit audit({}, config.numServers());
    defense::ThermalCameraAudit camera({}, config.numServers());
    Rng rng(4242);

    DetectionOutcome outcome;
    std::vector<Celsius> outlets(config.numServers(), Celsius(27.0));
    std::vector<Celsius> inlets(config.numServers(), Celsius(27.0));
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        residual.observeMinute(r.meteredTotal, r.supply, rng);
        sla.observeMinute(r.maxInlet);
        audit.observeMinute(sim.lastServerHeat(), sim.lastServerMetered(),
                            rng);
        const auto &env = sim.thermalEnvironment();
        for (std::size_t s = 0; s < config.numServers(); ++s) {
            outlets[s] = env.outletTemperature(s);
            inlets[s] = env.inletTemperature(s);
        }
        camera.observeMinute(outlets, inlets, sim.lastServerMetered(),
                             rng);
        for (std::size_t s : audit.flaggedServers()) {
            if (s < config.attackerNumServers)
                outcome.attackerPinpointed = true;
            else
                outcome.falseFlag = true;
        }
        for (std::size_t s : camera.flaggedServers()) {
            if (s < config.attackerNumServers)
                outcome.cameraPinpointed = true;
            else
                outcome.falseFlag = true;
        }
    });
    sim.runDays(days);
    outcome.residualLatency = residual.alarmLatencyMinutes();
    outcome.slaLatency = sla.alarmLatencyMinutes();
    outcome.emergencyHoursPerYear = sim.metrics().emergencyHoursPerYear();
    return outcome;
}

std::string
latencyToString(long minutes_to_alarm)
{
    if (minutes_to_alarm < 0)
        return "never";
    return fixed(static_cast<double>(minutes_to_alarm) / 60.0, 1) + " h";
}

} // namespace

int
main()
{
    const auto config = SimulationConfig::paperDefault();
    const double days = 30.0;

    printBanner(std::cout, "Section VII: detection of thermal attacks "
                           "(30-day runs)");
    TextTable table({"attacker", "residual alarm", "SLA alarm",
                     "airflow pinpoint", "camera pinpoint",
                     "false flags"});
    struct Case
    {
        const char *name;
        std::unique_ptr<AttackPolicy> policy;
    };
    std::vector<Case> cases;
    cases.push_back({"none (baseline)", std::make_unique<StandbyPolicy>()});
    cases.push_back({"Random 8%", makeRandomPolicy(config, 0.08)});
    cases.push_back({"Myopic 7.3 kW",
                     makeMyopicPolicy(config, Kilowatts(7.3))});
    cases.push_back({"Foresighted w=14",
                     makeForesightedPolicy(config, 14.0)});
    for (auto &c : cases) {
        const auto outcome =
            runWithDetectors(config, std::move(c.policy), days);
        table.addRow(c.name, latencyToString(outcome.residualLatency),
                     latencyToString(outcome.slaLatency),
                     outcome.attackerPinpointed ? "yes" : "no",
                     outcome.cameraPinpointed ? "yes" : "no",
                     outcome.falseFlag ? "YES (bad)" : "none");
    }
    table.print(std::cout);
    std::cout << "expected: no alarms without an attack; every attacking "
                 "policy raises the residual alarm within hours and the "
                 "airflow audit pinpoints only attacker-owned servers\n";

    // Prevention: side-channel jamming degrades the attacker's timing.
    printBanner(std::cout, "Section VII (prevention): side-channel "
                           "jamming vs. attack effectiveness");
    TextTable jam({"extra channel noise", "Foresighted emergencies "
                                          "(h/yr)"});
    for (double noise : {0.0, 0.05, 0.10, 0.20}) {
        auto jammed = config;
        jammed.sideChannel.extraRelativeNoise = noise;
        const auto r = runCampaign(jammed,
                                   makeForesightedPolicy(jammed, 14.0),
                                   120.0, "F", noise);
        jam.addRow(fixed(noise, 2), fixed(r.emergencyHoursPerYear, 0));
    }
    jam.print(std::cout);

    // Prevention: move-in inspection effort vs. detection probability.
    printBanner(std::cout, "Section VII (prevention): move-in inspection");
    TextTable inspect({"inspection effort", "P(catch built-in battery)"});
    for (double effort : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        defense::MoveInInspection inspection{effort};
        inspect.addRow(fixed(effort, 2),
                       fixed(inspection.detectionProbability(), 3));
    }
    inspect.print(std::cout);
    std::cout << "paper: rigorous move-in inspection to disallow built-in "
                 "batteries removes the attack vector entirely\n";
    return 0;
}
