/**
 * @file
 * Ablation benchmarks for the design choices behind the Foresighted
 * attacker (DESIGN.md items 2 and the warm-start substitution):
 *
 *  1. Batch (post-state) Q-learning vs. textbook one-table Q-learning:
 *     the paper's batch learner shares experience across load transitions
 *     through the post-state value, converging "within 1-4 weeks".
 *  2. Warm start vs. cold start for the batch learner.
 *  3. Learning-rate schedule: the paper's 1/t^0.85 vs. a fast-decaying
 *     1/t schedule.
 *
 * The metric is weekly attack-induced emergency minutes over an 8-week
 * online-learning run (higher earlier = faster convergence), plus the
 * steady-state level in weeks 7-8.
 */

#include <iostream>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

std::vector<long>
weeklyEmergencyMinutes(const SimulationConfig &config,
                       std::unique_ptr<AttackPolicy> policy, int weeks)
{
    Simulation sim(config, std::move(policy));
    std::vector<long> weekly(weeks, 0);
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.cappingActive) {
            const auto week = static_cast<std::size_t>(
                r.time / (7 * kMinutesPerDay));
            if (week < weekly.size())
                ++weekly[week];
        }
    });
    sim.runDays(weeks * 7.0);
    return weekly;
}

ForesightedPolicy::Params
baseParams(const SimulationConfig &config, double weight)
{
    ForesightedPolicy::Params params;
    params.weight = weight;
    params.baselineInlet =
        config.cooling.supplySetPoint + CelsiusDelta(0.5);
    params.capacity = config.capacity;
    params.attackLoad = config.attackLoad;
    params.battery = config.batterySpec;
    params.stateSpace.loadMin = config.capacity * 0.5;
    params.stateSpace.loadMax = config.capacity * 1.08;
    return params;
}

} // namespace

int
main()
{
    const auto config = SimulationConfig::paperDefault();
    const double weight = 14.0;
    const int weeks = 8;

    struct Variant
    {
        std::string name;
        std::vector<long> weekly;
    };
    std::vector<Variant> variants;

    // 1. The paper's learner (batch + warm start).
    variants.push_back(
        {"batch + warm start",
         weeklyEmergencyMinutes(
             config, makeForesightedPolicy(config, weight, true), weeks)});

    // 2. Batch learner, cold start.
    variants.push_back(
        {"batch, cold start",
         weeklyEmergencyMinutes(
             config, makeForesightedPolicy(config, weight, false),
             weeks)});

    // 3. Vanilla one-table Q-learning (cold start; no post-state).
    variants.push_back(
        {"vanilla Q-learning",
         weeklyEmergencyMinutes(
             config,
             std::make_unique<VanillaRlPolicy>(
                 baseParams(config, weight), Rng(config.seed ^ 0xab1e)),
             weeks)});

    // 4. Batch learner with a 1/t learning-rate schedule.
    {
        auto params = baseParams(config, weight);
        params.learner.learningRateExponent = 1.0;
        auto policy = std::make_unique<ForesightedPolicy>(
            params, Rng(config.seed ^ 0xf0e51337ULL));
        policy->warmStart();
        variants.push_back(
            {"batch, 1/t schedule",
             weeklyEmergencyMinutes(config, std::move(policy), weeks)});
    }

    printBanner(std::cout, "RL ablation: weekly attack-induced emergency "
                           "minutes over 8 weeks of online learning");
    std::vector<std::string> headers{"variant"};
    for (int w = 1; w <= weeks; ++w)
        headers.push_back("wk" + std::to_string(w));
    headers.emplace_back("wk7+8 total");
    TextTable table(headers);
    for (const auto &v : variants) {
        std::vector<std::string> row{v.name};
        for (long minutes_in_week : v.weekly)
            row.push_back(std::to_string(minutes_in_week));
        row.push_back(std::to_string(v.weekly[6] + v.weekly[7]));
        table.addRowStrings(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nexpected: the paper's batch learner reaches its "
                 "steady emergency rate within 1-4 weeks; removing the "
                 "warm start slows the first weeks; vanilla Q-learning "
                 "converges more slowly than the post-state learner\n";
    return 0;
}
