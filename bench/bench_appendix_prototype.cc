/**
 * @file
 * Appendix A reproduction: the prototype demonstrations.
 *
 * Fig. 14(a): a 1.5 kW cooling overload on the 14-server rack drives the
 * inlet temperature toward 40 C within minutes.
 * Fig. 14(b): capping server power to 60% of peak under load takes the
 * 95th-percentile response time from ~100 ms to ~400 ms.
 * Fig. 15: p95 response time (normalized to the 100 ms SLA) vs. server
 * power for two workload intensities of two applications (Web Service /
 * Web Search). We reproduce the measured curves with the calibrated
 * latency model; Web Search is configured slightly more power-sensitive.
 */

#include <iostream>

#include "common.hh"
#include "perf/latency_model.hh"
#include "perf/queue_sim.hh"
#include "thermal/environment.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

void
figure14a()
{
    const auto config = SimulationConfig::prototypeScale();
    power::DataCenterLayout layout(config.layout);
    thermal::ThermalEnvironment env(
        thermal::HeatDistributionMatrix::analyticDefault(layout),
        config.cooling);

    const std::size_t n = layout.numServers();
    const std::vector<Kilowatts> baseline(
        n, Kilowatts(2.2 / static_cast<double>(n)));
    const std::vector<Kilowatts> overloaded(
        n, Kilowatts(4.5 / static_cast<double>(n))); // +1.5 kW overload
    for (int m = 0; m < 15; ++m)
        env.stepMinute(baseline);

    printBanner(std::cout, "Fig. 14(a): inlet temperature under a 1.5 kW "
                           "cooling-capacity overload (prototype scale)");
    TextTable table({"minute", "max inlet (C)"});
    table.addRow(0, fixed(env.maxInletTemperature().value(), 1));
    int crossed_40 = -1;
    for (int m = 1; m <= 10; ++m) {
        env.stepMinute(overloaded);
        table.addRow(m, fixed(env.maxInletTemperature().value(), 1));
        if (crossed_40 < 0 && env.maxInletTemperature() >= Celsius(40.0))
            crossed_40 = m;
    }
    table.print(std::cout);
    std::cout << "inlet reaches 40 C at minute " << crossed_40
              << "; paper: \"rises to nearly 40 C within minutes\" -- "
                 "reproduced\n";
}

void
figure14b15()
{
    // Web Service (the paper's Fig. 14(b)/15(a)) and Web Search
    // (Fig. 15(b)); Web Search tails are more power-sensitive.
    perf::LatencyModelParams web_service;
    perf::LatencyModelParams web_search = web_service;
    web_search.sensitivityBase *= 1.2;
    web_search.powerExponent = 1.4;

    const perf::LatencyModel service(web_service);
    const perf::LatencyModel search(web_search);

    printBanner(std::cout,
                "Fig. 14(b): 95p response time before/during/after "
                "emergency power capping (Web Service, busy)");
    TextTable cap_table({"phase", "power (frac of peak)", "p95 (ms)"});
    const double busy = 0.65;
    cap_table.addRow("normal", "1.00",
                     fixed(service.p95Ms(busy, 1.0), 0));
    cap_table.addRow("capped (emergency)", "0.60",
                     fixed(service.p95Ms(busy, 0.6), 0));
    cap_table.addRow("restored", "1.00",
                     fixed(service.p95Ms(busy, 1.0), 0));
    cap_table.print(std::cout);
    std::cout << "paper: ~100 ms jumping to ~400 ms under the cap -- "
              << fixed(service.normalizedP95(busy, 0.6), 1)
              << "x degradation reproduced\n";

    printBanner(std::cout,
                "Fig. 15: p95 / SLA vs. server power (SLA = 100 ms)");
    TextTable table({"power (frac of peak)", "WebService low",
                     "WebService high", "WebSearch low", "WebSearch high"});
    for (double f = 1.0; f >= 0.599; f -= 0.05) {
        table.addRow(fixed(f, 2),
                     fixed(service.p95OverSla(0.45, f), 2),
                     fixed(service.p95OverSla(0.70, f), 2),
                     fixed(search.p95OverSla(0.45, f), 2),
                     fixed(search.p95OverSla(0.70, f), 2));
    }
    table.print(std::cout);
    std::cout << "paper: response time grows as power drops, steeper for "
                 "the heavier workload -- both properties hold\n";
}

void
queueCrossCheck()
{
    // First-principles cross-check of the calibrated latency surface: an
    // M/M/k discrete-event queue whose service rate scales with the
    // power cap must rank the same configurations the same way.
    printBanner(std::cout,
                "Cross-check: calibrated latency surface vs. M/M/12 "
                "discrete-event queue");
    const perf::LatencyModel surface;
    TextTable table({"util", "power frac", "surface norm. p95",
                     "queue p95 (ms)", "queue backlog"});
    for (const auto &[util, fraction] :
         std::initializer_list<std::pair<double, double>>{
             {0.40, 1.00}, {0.40, 0.70}, {0.60, 1.00}, {0.60, 0.60},
             {0.80, 0.60}}) {
        perf::QueueSimParams params;
        params.offeredUtilization = util;
        params.powerFraction = fraction;
        const auto r = perf::simulateQueue(params, Rng(99));
        table.addRow(fixed(util, 2), fixed(fraction, 2),
                     fixed(surface.normalizedP95(util, fraction), 2),
                     fixed(r.p95Ms, 0), r.backlog);
    }
    table.print(std::cout);
    std::cout << "both models agree on the orderings the simulation "
                 "depends on: heavier load and deeper caps inflate the "
                 "tail; capped capacity below offered load diverges\n";
}

} // namespace

int
main()
{
    figure14a();
    figure14b15();
    queueCrossCheck();
    return 0;
}
