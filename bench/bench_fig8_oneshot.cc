/**
 * @file
 * Fig. 8 reproduction: a 30-minute one-shot attack timeline.
 *
 * The attacker waits for a high benign load, then injects 3 kW of
 * battery-backed heat. The paper's sequence: attack at ~minute 18,
 * thermal emergency declared ~minute 21 (capping limits the metered load
 * below 5 kW), yet the battery keeps injecting heat, the derated cooling
 * cannot recover, and the inlet passes the 45 C shutdown threshold --
 * a system outage.
 */

#include <iostream>

#include "common.hh"
#include "util/plot.hh"
#include "util/table.hh"

int
main()
{
    using namespace ecolo;
    using namespace ecolo::core;
    using namespace ecolo::benchutil;

    // One-shot configuration: each of the 4 attacker servers peaks at
    // 950 W (multi-GPU), so the battery must deliver 3 kW on top of the
    // 0.8 kW subscription.
    auto config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);

    // Scout the benign trace for a high-load stretch, then arm the strike
    // 18 minutes before it so the figure matches the paper's timeline.
    const auto scout =
        recordRun(config, std::make_unique<StandbyPolicy>(), 3.0);
    const MinuteIndex window =
        findHighLoadWindow(scout, kMinutesPerDay, 3 * kMinutesPerDay, 40);
    const MinuteIndex t0 = window - 18;

    core::Simulation sim(config,
                         makeOneShotPolicy(config, Kilowatts(7.0), window));
    std::vector<MinuteRecord> records;
    sim.setMinuteCallback(
        [&](const MinuteRecord &r) { records.push_back(r); });
    sim.run(t0 + 45);

    printBanner(std::cout, "Fig. 8: one-shot attack demonstration "
                           "(30-minute window)");
    GnuplotFigure figure("fig8_oneshot", "Fig. 8: one-shot attack",
                         "minute", "kW / deg C");
    figure.addSeries("metered kW");
    figure.addSeries("actual heat kW");
    figure.addSeries("max inlet C");
    TextTable table({"minute", "metered (kW)", "actual heat (kW)",
                     "attack load (kW)", "max inlet (C)", "state"});
    MinuteIndex first_attack = -1, first_emergency = -1, first_outage = -1;
    for (MinuteIndex m = t0; m < t0 + 35 &&
                             m < static_cast<MinuteIndex>(records.size());
         ++m) {
        const auto &r = records[m];
        const char *state = r.outage          ? "OUTAGE"
                            : r.cappingActive ? "capped"
                            : r.action == AttackAction::Attack ? "ATTACK"
                                                               : "-";
        table.addRow(m - t0, fixed(r.meteredTotal.value(), 2),
                     fixed(r.actualHeat.value(), 2),
                     fixed(r.attackBatteryPower.value(), 2),
                     fixed(r.maxInlet.value(), 1), state);
        figure.addRow(static_cast<double>(m - t0),
                      {r.meteredTotal.value(), r.actualHeat.value(),
                       r.maxInlet.value()});
        if (first_attack < 0 && r.action == AttackAction::Attack &&
            r.attackBatteryPower.value() > 0.5)
            first_attack = m - t0;
        if (first_emergency < 0 && r.cappingActive)
            first_emergency = m - t0;
        if (first_outage < 0 && r.outage)
            first_outage = m - t0;
    }
    table.print(std::cout);

    if (const auto dir = plotDirFromEnv()) {
        figure.writeTo(*dir);
        std::cout << "plot written to " << *dir << "/fig8_oneshot.gp\n";
    }
    std::cout << "\nattack starts at minute " << first_attack
              << "; emergency declared at minute " << first_emergency
              << "; outage at minute " << first_outage << "\n"
              << "paper: attack ~min 18, emergency ~min 21 (metered capped "
                 "below 5 kW), inlet passes 45 C -> outage -- sequence "
                 "reproduced\n";
    return 0;
}
