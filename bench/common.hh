/**
 * @file
 * Shared helpers for the reproduction harnesses: policy construction by
 * name, whole-run drivers, and high-load window selection for the
 * time-series snapshot figures.
 */

#ifndef ECOLO_BENCH_COMMON_HH
#define ECOLO_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"

namespace ecolo::benchutil {

/** Aggregate outcome of one simulated campaign. */
struct CampaignResult
{
    std::string policy;
    double parameter = 0.0;         //!< p / threshold kW / weight w
    double attackHoursPerDay = 0.0;
    double meanInletRise = 0.0;     //!< deg C above set point
    double emergencyPercent = 0.0;  //!< % of simulated time
    double emergencyHoursPerYear = 0.0;
    double normalizedPerf = 0.0;    //!< 95p latency during emergencies
    std::size_t emergencies = 0;
    std::size_t outages = 0;
};

/** Run a policy for the given number of days and summarize. */
CampaignResult
runCampaign(const core::SimulationConfig &config,
            std::unique_ptr<core::AttackPolicy> policy, double days,
            const std::string &label, double parameter);

/**
 * One campaign of a batch: the policy is described by a factory rather
 * than an instance so it can be constructed inside the worker that runs
 * the campaign (policy construction -- e.g. Foresighted's warm start --
 * is deterministic given the config).
 */
struct CampaignSpec
{
    core::SimulationConfig config;
    std::function<std::unique_ptr<core::AttackPolicy>(
        const core::SimulationConfig &)>
        makePolicy;
    double days = 365.0;
    std::string label;
    double parameter = 0.0;
};

/**
 * Run a batch of independent campaigns and return their results in spec
 * order. Campaigns execute through the lane-batched engine
 * (core/lane_batch.hh): setup artifacts (traces, Prony fits,
 * factorizations) are shared through one SetupCache, and compatible
 * campaigns advance together in SIMD lane groups on the global thread
 * pool. Per campaign the result is bit-identical to calling runCampaign
 * serially on each spec (the runner's tested contract).
 */
std::vector<CampaignResult>
runCampaigns(const std::vector<CampaignSpec> &specs);

/**
 * The pre-lane-batching execution model: one simulation per pool
 * worker, no setup sharing. Kept as the measured baseline leg of the
 * BM_LaneBatchSweep* benchmarks; results are bit-identical to
 * runCampaigns on the same specs.
 */
std::vector<CampaignResult>
runCampaignsPerThread(const std::vector<CampaignSpec> &specs);

/**
 * Record every minute of a run into a vector (for snapshot figures).
 * Returns the records; metrics remain available via the returned sim.
 */
std::vector<core::MinuteRecord>
recordRun(const core::SimulationConfig &config,
          std::unique_ptr<core::AttackPolicy> policy, double days);

/**
 * Find the start minute of the `window_minutes`-long window with the
 * highest mean benign power between minute `from` and minute `to`.
 */
MinuteIndex
findHighLoadWindow(const std::vector<core::MinuteRecord> &records,
                   MinuteIndex from, MinuteIndex to,
                   MinuteIndex window_minutes);

/**
 * Enable telemetry when any of EDGETHERM_METRICS_OUT, EDGETHERM_EVENTS_OUT
 * or EDGETHERM_PROFILE_OUT is set in the environment (beginning a trace
 * session for the latter), so any bench binary can be profiled without a
 * rebuild. Honors EDGETHERM_LOG_LEVEL too. Returns true when telemetry was
 * turned on. Called automatically at bench start via a static initializer
 * in common.cc; harmless to call again.
 */
bool initTelemetryFromEnv();

/**
 * Write whichever telemetry sinks initTelemetryFromEnv() armed. Called
 * automatically at normal process exit; safe to call early (e.g. right
 * after the interesting phase) -- later writes just overwrite.
 */
void flushTelemetry();

} // namespace ecolo::benchutil

#endif // ECOLO_BENCH_COMMON_HH
