/**
 * @file
 * Shared helpers for the reproduction harnesses: policy construction by
 * name, whole-run drivers, and high-load window selection for the
 * time-series snapshot figures.
 */

#ifndef ECOLO_BENCH_COMMON_HH
#define ECOLO_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"

namespace ecolo::benchutil {

/** Aggregate outcome of one simulated campaign. */
struct CampaignResult
{
    std::string policy;
    double parameter = 0.0;         //!< p / threshold kW / weight w
    double attackHoursPerDay = 0.0;
    double meanInletRise = 0.0;     //!< deg C above set point
    double emergencyPercent = 0.0;  //!< % of simulated time
    double emergencyHoursPerYear = 0.0;
    double normalizedPerf = 0.0;    //!< 95p latency during emergencies
    std::size_t emergencies = 0;
    std::size_t outages = 0;
};

/** Run a policy for the given number of days and summarize. */
CampaignResult
runCampaign(const core::SimulationConfig &config,
            std::unique_ptr<core::AttackPolicy> policy, double days,
            const std::string &label, double parameter);

/**
 * Record every minute of a run into a vector (for snapshot figures).
 * Returns the records; metrics remain available via the returned sim.
 */
std::vector<core::MinuteRecord>
recordRun(const core::SimulationConfig &config,
          std::unique_ptr<core::AttackPolicy> policy, double days);

/**
 * Find the start minute of the `window_minutes`-long window with the
 * highest mean benign power between minute `from` and minute `to`.
 */
MinuteIndex
findHighLoadWindow(const std::vector<core::MinuteRecord> &records,
                   MinuteIndex from, MinuteIndex to,
                   MinuteIndex window_minutes);

} // namespace ecolo::benchutil

#endif // ECOLO_BENCH_COMMON_HH
