/** @file Unit tests for the operator-side defenses. */

#include <gtest/gtest.h>

#include "defense/detectors.hh"

namespace ecolo::defense {
namespace {

thermal::CoolingParams
roomModel()
{
    thermal::CoolingParams p;
    p.capacity = Kilowatts(8.0);
    p.supplySetPoint = Celsius(27.0);
    return p;
}

TEST(ResidualDetector, QuietWithoutAttack)
{
    ThermalResidualDetector detector({}, roomModel());
    thermal::CoolingSystem room(roomModel());
    Rng rng(1);
    for (int m = 0; m < 24 * 60; ++m) {
        const Kilowatts load(6.0);
        room.step(load, minutes(1));
        detector.observeMinute(load, room.supplyTemperature(), rng);
    }
    EXPECT_FALSE(detector.alarmed());
}

TEST(ResidualDetector, CatchesBehindTheMeterHeat)
{
    ThermalResidualDetector detector({}, roomModel());
    thermal::CoolingSystem room(roomModel());
    Rng rng(2);
    bool alarmed = false;
    int minute = 0;
    // Metered 7.5 kW but true heat 8.5 kW (1 kW hidden): the room heats
    // while the operator's expectation stays at the set point.
    for (; minute < 60 && !alarmed; ++minute) {
        room.step(Kilowatts(8.5), minutes(1));
        alarmed = detector.observeMinute(Kilowatts(7.5),
                                         room.supplyTemperature(), rng);
    }
    EXPECT_TRUE(alarmed);
    EXPECT_LT(detector.alarmLatencyMinutes(), 30);
}

TEST(ResidualDetector, ResetClearsAlarm)
{
    ThermalResidualDetector detector({}, roomModel());
    thermal::CoolingSystem room(roomModel());
    Rng rng(3);
    for (int m = 0; m < 30; ++m) {
        room.step(Kilowatts(9.0), minutes(1));
        detector.observeMinute(Kilowatts(7.0), room.supplyTemperature(),
                               rng);
    }
    ASSERT_TRUE(detector.alarmed());
    detector.reset();
    EXPECT_FALSE(detector.alarmed());
    EXPECT_DOUBLE_EQ(detector.cusum(), 0.0);
}

TEST(AirflowAudit, FlagsOnlyTheHiddenLoadServer)
{
    AirflowAudit audit({}, 40);
    Rng rng(4);
    std::vector<Kilowatts> heat(40, Kilowatts(0.15));
    std::vector<Kilowatts> metered(40, Kilowatts(0.15));
    heat[3] = Kilowatts(0.45);    // attacker server: heat 450 W
    metered[3] = Kilowatts(0.20); // but metered only 200 W
    for (int m = 0; m < 30; ++m)
        audit.observeMinute(heat, metered, rng);
    const auto flagged = audit.flaggedServers();
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], 3u);
}

TEST(AirflowAudit, NoFalsePositivesAtModerateNoise)
{
    AirflowAudit audit({}, 40);
    Rng rng(5);
    const std::vector<Kilowatts> heat(40, Kilowatts(0.18));
    const std::vector<Kilowatts> metered = heat;
    for (int m = 0; m < 24 * 60; ++m)
        audit.observeMinute(heat, metered, rng);
    EXPECT_TRUE(audit.flaggedServers().empty());
}

TEST(AirflowAudit, EwmaDecaysAfterAttackStops)
{
    AirflowAudit audit({}, 4);
    Rng rng(6);
    std::vector<Kilowatts> heat(4, Kilowatts(0.45));
    std::vector<Kilowatts> metered(4, Kilowatts(0.20));
    for (int m = 0; m < 20; ++m)
        audit.observeMinute(heat, metered, rng);
    EXPECT_FALSE(audit.flaggedServers().empty());
    for (int m = 0; m < 60; ++m)
        audit.observeMinute(metered, metered, rng); // heat == metered now
    EXPECT_TRUE(audit.flaggedServers().empty());
}

TEST(SlaMonitor, QuietUnderNormalOperation)
{
    SlaMonitor monitor(SlaMonitor::Params{});
    for (int m = 0; m < 14 * 24 * 60; ++m)
        monitor.observeMinute(Celsius(27.0));
    EXPECT_FALSE(monitor.alarmed());
    EXPECT_DOUBLE_EQ(monitor.windowViolationRate(), 0.0);
}

TEST(SlaMonitor, ToleratesBudgetedViolations)
{
    SlaMonitor::Params params;
    params.slaBudget = 0.01;
    params.alarmFactor = 2.0;
    SlaMonitor monitor(params);
    // 0.5% of minutes hot: inside the 1% budget.
    for (int m = 0; m < 14 * 24 * 60; ++m)
        monitor.observeMinute(m % 200 == 0 ? Celsius(33.0)
                                           : Celsius(27.0));
    EXPECT_FALSE(monitor.alarmed());
}

TEST(SlaMonitor, AlarmsOnExcessViolations)
{
    SlaMonitor::Params params;
    params.slaBudget = 0.01;
    params.alarmFactor = 2.0;
    SlaMonitor monitor(params);
    bool alarmed = false;
    // 5% of minutes hot: 5x the budget.
    for (int m = 0; m < 14 * 24 * 60 && !alarmed; ++m)
        alarmed = monitor.observeMinute(m % 20 == 0 ? Celsius(33.0)
                                                    : Celsius(27.0));
    EXPECT_TRUE(alarmed);
    EXPECT_GE(monitor.alarmLatencyMinutes(), 24 * 60); // cold-start guard
}

TEST(SlaMonitor, WindowSlidesViolationsOut)
{
    SlaMonitor::Params params;
    params.windowMinutes = 100;
    SlaMonitor monitor(params);
    for (int m = 0; m < 50; ++m)
        monitor.observeMinute(Celsius(33.0));
    EXPECT_GT(monitor.windowViolationRate(), 0.9);
    for (int m = 0; m < 200; ++m)
        monitor.observeMinute(Celsius(27.0));
    EXPECT_DOUBLE_EQ(monitor.windowViolationRate(), 0.0);
}

TEST(MoveInInspection, EffortRaisesDetection)
{
    MoveInInspection lax{0.1};
    MoveInInspection thorough{0.9};
    EXPECT_LT(lax.detectionProbability(),
              thorough.detectionProbability());
    EXPECT_GT(thorough.detectionProbability(), 0.9);
}

TEST(MoveInInspection, ZeroEffortNeverCatches)
{
    MoveInInspection none{0.0};
    EXPECT_DOUBLE_EQ(none.detectionProbability(), 0.0);
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(none.catchesBattery(rng));
}

TEST(MoveInInspection, FrequencyMatchesProbability)
{
    MoveInInspection inspection{0.5};
    Rng rng(8);
    int caught = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        caught += inspection.catchesBattery(rng);
    EXPECT_NEAR(static_cast<double>(caught) / n,
                inspection.detectionProbability(), 0.02);
}

} // namespace
} // namespace ecolo::defense

namespace ecolo::defense {
namespace {

std::vector<Celsius>
outletsFor(const std::vector<Kilowatts> &heat, double airflow_w_per_k)
{
    std::vector<Celsius> outlets;
    outlets.reserve(heat.size());
    for (Kilowatts h : heat)
        outlets.emplace_back(27.0 + h.value() * 1000.0 / airflow_w_per_k);
    return outlets;
}

TEST(ThermalCameraAudit, FlagsHiddenLoadServer)
{
    ThermalCameraAudit audit({}, 40);
    Rng rng(21);
    std::vector<Kilowatts> heat(40, Kilowatts(0.15));
    std::vector<Kilowatts> metered(40, Kilowatts(0.15));
    heat[5] = Kilowatts(0.45);    // 30 K outlet rise...
    metered[5] = Kilowatts(0.20); // ...but meters only 200 W (13.3 K)
    const std::vector<Celsius> inlets(40, Celsius(27.0));
    for (int m = 0; m < 40; ++m)
        audit.observeMinute(outletsFor(heat, 15.0), inlets, metered, rng);
    const auto flagged = audit.flaggedServers();
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], 5u);
}

TEST(ThermalCameraAudit, QuietWhenMetersExplainTheHeat)
{
    ThermalCameraAudit audit({}, 40);
    Rng rng(23);
    const std::vector<Kilowatts> heat(40, Kilowatts(0.18));
    const std::vector<Celsius> inlets(40, Celsius(27.0));
    for (int m = 0; m < 24 * 60; ++m)
        audit.observeMinute(outletsFor(heat, 15.0), inlets, heat, rng);
    EXPECT_TRUE(audit.flaggedServers().empty());
}

TEST(ThermalCameraAudit, HasADetectionFloor)
{
    // The camera's suspicion threshold (3 C of unexplained outlet rise)
    // sets a floor: a 40 W hidden load (2.7 K) stays invisible, while a
    // 200 W one (13 K) is flagged -- the paper's point that cameras help
    // localize *running-hot* servers but airflow meters measure the load.
    ThermalCameraAudit audit({}, 4);
    Rng rng(29);
    const std::vector<Celsius> inlets(4, Celsius(27.0));

    std::vector<Kilowatts> heat(4, Kilowatts(0.19));
    std::vector<Kilowatts> metered(4, Kilowatts(0.15)); // 40 W hidden
    for (int m = 0; m < 200; ++m)
        audit.observeMinute(outletsFor(heat, 15.0), inlets, metered, rng);
    EXPECT_TRUE(audit.flaggedServers().empty());

    audit.reset();
    heat.assign(4, Kilowatts(0.35)); // 200 W hidden
    for (int m = 0; m < 60; ++m)
        audit.observeMinute(outletsFor(heat, 15.0), inlets, metered, rng);
    EXPECT_EQ(audit.flaggedServers().size(), 4u);
}

TEST(ThermalCameraAudit, ResetClears)
{
    ThermalCameraAudit audit({}, 2);
    Rng rng(31);
    std::vector<Kilowatts> heat(2, Kilowatts(0.45));
    std::vector<Kilowatts> metered(2, Kilowatts(0.15));
    const std::vector<Celsius> inlets(2, Celsius(27.0));
    for (int m = 0; m < 30; ++m)
        audit.observeMinute(outletsFor(heat, 15.0), inlets, metered, rng);
    ASSERT_FALSE(audit.flaggedServers().empty());
    audit.reset();
    EXPECT_TRUE(audit.flaggedServers().empty());
    EXPECT_DOUBLE_EQ(audit.excessEwma(0), 0.0);
}

} // namespace
} // namespace ecolo::defense
