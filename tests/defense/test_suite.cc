/** @file Integration tests for the bundled DefenseSuite. */

#include <gtest/gtest.h>

#include "defense/suite.hh"

namespace ecolo::defense {
namespace {

using core::SimulationConfig;

TEST(DefenseSuite, QuietWithoutAttack)
{
    const auto config = SimulationConfig::paperDefault();
    core::Simulation sim(config, std::make_unique<core::StandbyPolicy>());
    DefenseSuite suite({}, config);
    suite.attach(sim);
    sim.runDays(14.0);
    const auto report = suite.report();
    EXPECT_FALSE(report.residualAlarmed);
    EXPECT_FALSE(report.slaAlarmed);
    EXPECT_TRUE(report.flaggedServers.empty());
    EXPECT_NE(report.verdict.find("No behind-the-meter"),
              std::string::npos);
}

TEST(DefenseSuite, DetectsAndPinpointsAttack)
{
    const auto config = SimulationConfig::paperDefault();
    core::Simulation sim(config,
                         core::makeMyopicPolicy(config, Kilowatts(7.3)));
    DefenseSuite suite({}, config);
    suite.attach(sim);
    sim.runDays(14.0);
    const auto report = suite.report();
    EXPECT_TRUE(report.residualAlarmed);
    EXPECT_GT(report.residualLatencyMinutes, 0);
    EXPECT_FALSE(report.flaggedServers.empty());
    EXPECT_TRUE(report.pinpointExact);
    EXPECT_NE(report.verdict.find("evict"), std::string::npos);
}

TEST(DefenseSuite, ManualObservationWorks)
{
    const auto config = SimulationConfig::paperDefault();
    core::Simulation sim(config,
                         core::makeMyopicPolicy(config, Kilowatts(7.3)));
    DefenseSuite suite({}, config);
    sim.setMinuteCallback([&](const core::MinuteRecord &r) {
        suite.observeMinute(sim, r);
    });
    sim.runDays(10.0);
    EXPECT_TRUE(suite.report().residualAlarmed);
}

} // namespace
} // namespace ecolo::defense
