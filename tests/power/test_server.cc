/** @file Unit tests for the server power model. */

#include <gtest/gtest.h>

#include "power/server.hh"

namespace ecolo::power {
namespace {

const ServerSpec kSpec{Kilowatts(0.06), Kilowatts(0.20)};

TEST(ServerSpec, LinearPowerModel)
{
    EXPECT_DOUBLE_EQ(kSpec.powerAt(0.0).value(), 0.06);
    EXPECT_DOUBLE_EQ(kSpec.powerAt(1.0).value(), 0.20);
    EXPECT_DOUBLE_EQ(kSpec.powerAt(0.5).value(), 0.13);
}

TEST(ServerSpec, PowerClampsUtilization)
{
    EXPECT_DOUBLE_EQ(kSpec.powerAt(-1.0).value(), 0.06);
    EXPECT_DOUBLE_EQ(kSpec.powerAt(2.0).value(), 0.20);
}

TEST(ServerSpec, InverseModel)
{
    EXPECT_DOUBLE_EQ(kSpec.utilizationFor(Kilowatts(0.13)), 0.5);
    EXPECT_DOUBLE_EQ(kSpec.utilizationFor(Kilowatts(0.06)), 0.0);
    EXPECT_DOUBLE_EQ(kSpec.utilizationFor(Kilowatts(0.20)), 1.0);
    EXPECT_DOUBLE_EQ(kSpec.utilizationFor(Kilowatts(0.50)), 1.0);
}

TEST(Server, UncappedActualEqualsDemand)
{
    Server s(kSpec);
    s.setUtilization(0.75);
    EXPECT_DOUBLE_EQ(s.demandPower().value(), 0.165);
    EXPECT_DOUBLE_EQ(s.actualPower().value(), 0.165);
    EXPECT_DOUBLE_EQ(s.servedFraction(), 1.0);
}

TEST(Server, CapLimitsPower)
{
    Server s(kSpec);
    s.setUtilization(1.0);
    s.setPowerCap(Kilowatts(0.12)); // the 60% emergency cap
    EXPECT_DOUBLE_EQ(s.demandPower().value(), 0.20);
    EXPECT_DOUBLE_EQ(s.actualPower().value(), 0.12);
}

TEST(Server, CapReducesServedFraction)
{
    Server s(kSpec);
    s.setUtilization(1.0);
    s.setPowerCap(Kilowatts(0.12));
    // dynamic: demanded 0.14, allowed 0.06 -> 3/7 served.
    EXPECT_NEAR(s.servedFraction(), 0.06 / 0.14, 1e-12);
}

TEST(Server, CapAboveDemandIsHarmless)
{
    Server s(kSpec);
    s.setUtilization(0.2);
    s.setPowerCap(Kilowatts(0.18));
    EXPECT_DOUBLE_EQ(s.actualPower().value(), s.demandPower().value());
    EXPECT_DOUBLE_EQ(s.servedFraction(), 1.0);
}

TEST(Server, ClearCapRestoresFullPower)
{
    Server s(kSpec);
    s.setUtilization(1.0);
    s.setPowerCap(Kilowatts(0.12));
    s.clearPowerCap();
    EXPECT_DOUBLE_EQ(s.actualPower().value(), 0.20);
}

TEST(Server, PoweredOffDrawsNothing)
{
    Server s(kSpec);
    s.setUtilization(0.9);
    s.setPoweredOn(false);
    EXPECT_DOUBLE_EQ(s.demandPower().value(), 0.0);
    EXPECT_DOUBLE_EQ(s.actualPower().value(), 0.0);
    EXPECT_DOUBLE_EQ(s.servedFraction(), 0.0);
}

TEST(Server, PoweredOffIdleServesTrivially)
{
    Server s(kSpec);
    s.setUtilization(0.0);
    s.setPoweredOn(false);
    EXPECT_DOUBLE_EQ(s.servedFraction(), 1.0); // nothing to serve
}

TEST(ServerDeathTest, RejectsBadUtilization)
{
    Server s(kSpec);
    EXPECT_DEATH(s.setUtilization(1.5), "out of");
    EXPECT_DEATH(s.setUtilization(-0.1), "out of");
}

} // namespace
} // namespace ecolo::power
