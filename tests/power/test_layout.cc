/** @file Unit tests for the data center layout. */

#include <gtest/gtest.h>

#include "power/layout.hh"

namespace ecolo::power {
namespace {

TEST(Layout, DefaultMatchesPaper)
{
    DataCenterLayout layout;
    EXPECT_EQ(layout.numRacks(), 2u);
    EXPECT_EQ(layout.serversPerRack(), 20u);
    EXPECT_EQ(layout.numServers(), 40u);
}

TEST(Layout, RackSlotRoundTrip)
{
    DataCenterLayout layout;
    for (std::size_t s = 0; s < layout.numServers(); ++s) {
        const RackSlot rs = layout.rackSlotOf(s);
        EXPECT_EQ(layout.indexOf(rs), s);
        EXPECT_LT(rs.rack, layout.numRacks());
        EXPECT_LT(rs.slot, layout.serversPerRack());
    }
}

TEST(Layout, RackBoundaries)
{
    DataCenterLayout layout;
    EXPECT_EQ(layout.rackSlotOf(0).rack, 0u);
    EXPECT_EQ(layout.rackSlotOf(19).rack, 0u);
    EXPECT_EQ(layout.rackSlotOf(20).rack, 1u);
    EXPECT_EQ(layout.rackSlotOf(20).slot, 0u);
    EXPECT_EQ(layout.rackSlotOf(39).slot, 19u);
}

TEST(Layout, HigherSlotsAreHigherUp)
{
    DataCenterLayout layout;
    const Position low = layout.inletPositionOf(0);
    const Position high = layout.inletPositionOf(19);
    EXPECT_LT(low.z, high.z);
    EXPECT_DOUBLE_EQ(low.x, high.x); // same rack column
}

TEST(Layout, RacksAtDistinctPositions)
{
    DataCenterLayout layout;
    const Position rack0 = layout.inletPositionOf(0);
    const Position rack1 = layout.inletPositionOf(20);
    EXPECT_GT(rack1.x, rack0.x);
}

TEST(Layout, PositionsInsideContainer)
{
    DataCenterLayout layout;
    const auto &params = layout.params();
    for (std::size_t s = 0; s < layout.numServers(); ++s) {
        const Position pos = layout.inletPositionOf(s);
        EXPECT_GE(pos.x, 0.0);
        EXPECT_LE(pos.x, params.containerLength);
        EXPECT_GE(pos.z, 0.0);
        EXPECT_LE(pos.z, params.containerHeight);
    }
}

TEST(Layout, AirVolumePositiveAndBounded)
{
    DataCenterLayout layout;
    const auto &params = layout.params();
    const double shell = params.containerLength * params.containerWidth *
                         params.containerHeight;
    EXPECT_GT(layout.airVolume(), 0.0);
    EXPECT_LT(layout.airVolume(), shell);
}

TEST(Layout, PrototypeScaleWorks)
{
    DataCenterLayout::Params params;
    params.numRacks = 1;
    params.serversPerRack = 14;
    params.containerLength = 3.0;
    DataCenterLayout layout(params);
    EXPECT_EQ(layout.numServers(), 14u);
    EXPECT_EQ(layout.rackSlotOf(13).slot, 13u);
}

TEST(LayoutDeathTest, OutOfRangeServer)
{
    DataCenterLayout layout;
    EXPECT_DEATH(layout.rackSlotOf(40), "out of range");
}

} // namespace
} // namespace ecolo::power
