/** @file Unit tests for the PDU and metering chain. */

#include <gtest/gtest.h>

#include "power/pdu.hh"

namespace ecolo::power {
namespace {

TEST(PowerMeter, NoiselessIsExact)
{
    PowerMeter meter;
    EXPECT_DOUBLE_EQ(meter.read(Kilowatts(3.3)).value(), 3.3);
}

TEST(PowerMeter, NoisyIsUnbiased)
{
    PowerMeter meter(0.01);
    Rng rng(3);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += meter.read(Kilowatts(5.0), rng).value();
    EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(PowerMeter, NoisyNeverNegative)
{
    PowerMeter meter(2.0); // absurd noise to force the clamp
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(meter.read(Kilowatts(0.1), rng).value(), 0.0);
}

TEST(Pdu, CircuitAccounting)
{
    Pdu pdu(Kilowatts(8.0));
    const auto a = pdu.addCircuit("attacker", Kilowatts(0.8));
    const auto b = pdu.addCircuit("tenant-1", Kilowatts(2.4));
    EXPECT_EQ(pdu.numCircuits(), 2u);
    EXPECT_EQ(pdu.circuitName(a), "attacker");
    EXPECT_DOUBLE_EQ(pdu.circuitSubscription(b).value(), 2.4);

    pdu.setCircuitDraw(a, Kilowatts(0.5));
    pdu.setCircuitDraw(b, Kilowatts(2.0));
    EXPECT_DOUBLE_EQ(pdu.circuitMeteredPower(a).value(), 0.5);
    EXPECT_DOUBLE_EQ(pdu.totalMeteredPower().value(), 2.5);
}

TEST(Pdu, SubscriptionViolationDetected)
{
    Pdu pdu(Kilowatts(8.0));
    const auto a = pdu.addCircuit("attacker", Kilowatts(0.8));
    pdu.setCircuitDraw(a, Kilowatts(0.8));
    EXPECT_FALSE(pdu.circuitOverSubscription(a));
    pdu.setCircuitDraw(a, Kilowatts(0.81));
    EXPECT_TRUE(pdu.circuitOverSubscription(a));
}

TEST(Pdu, CapacityViolationDetected)
{
    Pdu pdu(Kilowatts(3.0));
    const auto a = pdu.addCircuit("x", Kilowatts(2.0));
    const auto b = pdu.addCircuit("y", Kilowatts(2.0));
    pdu.setCircuitDraw(a, Kilowatts(1.5));
    pdu.setCircuitDraw(b, Kilowatts(1.4));
    EXPECT_FALSE(pdu.overCapacity());
    pdu.setCircuitDraw(b, Kilowatts(1.6));
    EXPECT_TRUE(pdu.overCapacity());
}

TEST(Pdu, DeEnergizedZeroesDraws)
{
    Pdu pdu(Kilowatts(8.0));
    const auto a = pdu.addCircuit("x", Kilowatts(2.0));
    pdu.setEnergized(false);
    pdu.setCircuitDraw(a, Kilowatts(1.5));
    EXPECT_DOUBLE_EQ(pdu.totalMeteredPower().value(), 0.0);
    EXPECT_FALSE(pdu.energized());
}

TEST(PduDeathTest, RejectsNegativeDraw)
{
    Pdu pdu(Kilowatts(8.0));
    const auto a = pdu.addCircuit("x", Kilowatts(2.0));
    EXPECT_DEATH(pdu.setCircuitDraw(a, Kilowatts(-0.5)), "negative");
}

} // namespace
} // namespace ecolo::power
