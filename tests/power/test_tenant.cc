/** @file Unit tests for tenants and trace scaling. */

#include <gtest/gtest.h>

#include "power/tenant.hh"
#include "trace/generators.hh"
#include "util/rng.hh"
#include "util/sim_time.hh"

namespace ecolo::power {
namespace {

const ServerSpec kSpec{Kilowatts(0.06), Kilowatts(0.20)};

Tenant
makeTenant(std::size_t servers = 12)
{
    return Tenant("t", Kilowatts(2.4), servers, kSpec);
}

TEST(Tenant, AggregatesPowerAcrossServers)
{
    Tenant t = makeTenant();
    t.setUtilization(1.0);
    EXPECT_DOUBLE_EQ(t.demandPower().value(), 2.4);
    t.setUtilization(0.0);
    EXPECT_DOUBLE_EQ(t.demandPower().value(), 12 * 0.06);
}

TEST(Tenant, TraceDrivesUtilization)
{
    Tenant t = makeTenant();
    t.setTrace(trace::UtilizationTrace({0.0, 1.0}));
    t.applyTraceAt(0);
    EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
    t.applyTraceAt(1);
    EXPECT_DOUBLE_EQ(t.utilization(), 1.0);
    t.applyTraceAt(2); // wraps
    EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
}

TEST(Tenant, CappingAllServers)
{
    Tenant t = makeTenant();
    t.setUtilization(1.0);
    t.setPerServerCap(Kilowatts(0.12));
    EXPECT_DOUBLE_EQ(t.actualPower().value(), 12 * 0.12);
    EXPECT_LT(t.servedFraction(), 1.0);
    t.clearCaps();
    EXPECT_DOUBLE_EQ(t.actualPower().value(), 2.4);
    EXPECT_DOUBLE_EQ(t.servedFraction(), 1.0);
}

TEST(Tenant, PowerOnOff)
{
    Tenant t = makeTenant();
    t.setUtilization(0.5);
    t.setPoweredOn(false);
    EXPECT_DOUBLE_EQ(t.actualPower().value(), 0.0);
    t.setPoweredOn(true);
    EXPECT_GT(t.actualPower().value(), 0.0);
}

TEST(ScaleTenantsToMeanPower, HitsAggregateTarget)
{
    Rng rng(3);
    std::vector<Tenant> tenants;
    for (int k = 0; k < 3; ++k) {
        tenants.push_back(makeTenant());
        trace::DiurnalTraceGenerator gen;
        tenants.back().setTrace(gen.generate(7 * kMinutesPerDay, rng));
    }
    std::vector<Tenant *> ptrs{&tenants[0], &tenants[1], &tenants[2]};
    scaleTenantsToMeanPower(ptrs, Kilowatts(5.5));

    // Measure the achieved mean by replaying the traces.
    double sum_kw = 0.0;
    const MinuteIndex horizon = 7 * kMinutesPerDay;
    for (MinuteIndex m = 0; m < horizon; ++m) {
        for (auto &t : tenants) {
            t.applyTraceAt(m);
            sum_kw += t.actualPower().value();
        }
    }
    EXPECT_NEAR(sum_kw / static_cast<double>(horizon), 5.5, 0.05);
}

TEST(ScaleTenantsToMeanPower, SaturatesGracefully)
{
    Rng rng(5);
    Tenant t = makeTenant();
    t.setTrace(trace::DiurnalTraceGenerator().generate(kMinutesPerDay, rng));
    // Peak power of 12 servers is 2.4 kW; demand 2.4 kW mean means all-on.
    std::vector<Tenant *> ptrs{&t};
    scaleTenantsToMeanPower(ptrs, Kilowatts(2.4));
    EXPECT_GT(t.traceRef().mean(), 0.99);
}

TEST(TenantDeathTest, ApplyTraceWithoutTrace)
{
    Tenant t = makeTenant();
    EXPECT_DEATH(t.applyTraceAt(0), "no trace");
}

TEST(TenantDeathTest, EmptyTraceRejected)
{
    Tenant t = makeTenant();
    EXPECT_DEATH(t.setTrace(trace::UtilizationTrace()), "empty trace");
}

} // namespace
} // namespace ecolo::power
