/** @file Unit tests for the gnuplot exporter. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/plot.hh"

namespace ecolo {
namespace {

TEST(GnuplotFigure, WritesDatAndScript)
{
    GnuplotFigure figure("unit_test_fig", "A title", "x", "y");
    figure.addSeries("alpha");
    figure.addSeries("beta");
    figure.addRow(0.0, {1.0, 2.0});
    figure.addRow(1.0, {3.0, 4.0});
    ASSERT_TRUE(figure.writeTo(::testing::TempDir()));

    std::ifstream dat(::testing::TempDir() + "/unit_test_fig.dat");
    ASSERT_TRUE(dat.good());
    std::stringstream content;
    content << dat.rdbuf();
    EXPECT_NE(content.str().find("alpha\tbeta"), std::string::npos);
    EXPECT_NE(content.str().find("1\t3\t4"), std::string::npos);

    std::ifstream gp(::testing::TempDir() + "/unit_test_fig.gp");
    ASSERT_TRUE(gp.good());
    std::stringstream script;
    script << gp.rdbuf();
    EXPECT_NE(script.str().find("set title 'A title'"),
              std::string::npos);
    EXPECT_NE(script.str().find("using 1:2"), std::string::npos);
    EXPECT_NE(script.str().find("using 1:3"), std::string::npos);
}

TEST(GnuplotFigure, EmptyDirectoryIsNoop)
{
    GnuplotFigure figure("noop_fig", "t", "x", "y");
    figure.addSeries("s");
    figure.addRow(0.0, {1.0});
    EXPECT_FALSE(figure.writeTo(""));
}

TEST(GnuplotFigure, CountsRowsAndSeries)
{
    GnuplotFigure figure("counts", "t", "x", "y");
    figure.addSeries("a");
    EXPECT_EQ(figure.numSeries(), 1u);
    figure.addRow(0.0, {1.0});
    figure.addRow(1.0, {2.0});
    EXPECT_EQ(figure.numRows(), 2u);
}

TEST(GnuplotFigureDeathTest, RowWidthMustMatchSeries)
{
    GnuplotFigure figure("bad", "t", "x", "y");
    figure.addSeries("a");
    EXPECT_DEATH(figure.addRow(0.0, {1.0, 2.0}), "values for");
}

TEST(GnuplotFigureDeathTest, NoSlashInName)
{
    EXPECT_DEATH(GnuplotFigure("a/b", "t", "x", "y"), "bare file stem");
}

TEST(PlotDirFromEnv, ReflectsEnvironment)
{
    unsetenv("EDGETHERM_PLOT_DIR");
    EXPECT_FALSE(plotDirFromEnv().has_value());
    setenv("EDGETHERM_PLOT_DIR", "/tmp/somewhere", 1);
    ASSERT_TRUE(plotDirFromEnv().has_value());
    EXPECT_EQ(*plotDirFromEnv(), "/tmp/somewhere");
    setenv("EDGETHERM_PLOT_DIR", "", 1);
    EXPECT_FALSE(plotDirFromEnv().has_value());
    unsetenv("EDGETHERM_PLOT_DIR");
}

} // namespace
} // namespace ecolo
