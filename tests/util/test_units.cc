/** @file Unit tests for the strong unit types. */

#include <gtest/gtest.h>

#include "util/units.hh"

namespace ecolo {
namespace {

using namespace unit_literals;

TEST(Units, PowerArithmetic)
{
    const Kilowatts a(2.0), b(3.5);
    EXPECT_DOUBLE_EQ((a + b).value(), 5.5);
    EXPECT_DOUBLE_EQ((b - a).value(), 1.5);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 4.0);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 4.0);
    EXPECT_DOUBLE_EQ((b / 2.0).value(), 1.75);
    EXPECT_DOUBLE_EQ(b / a, 1.75);
    EXPECT_DOUBLE_EQ((-a).value(), -2.0);
}

TEST(Units, CompoundAssignment)
{
    Kilowatts p(1.0);
    p += Kilowatts(2.0);
    EXPECT_DOUBLE_EQ(p.value(), 3.0);
    p -= Kilowatts(0.5);
    EXPECT_DOUBLE_EQ(p.value(), 2.5);
    p *= 4.0;
    EXPECT_DOUBLE_EQ(p.value(), 10.0);
    p /= 5.0;
    EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(Kilowatts(1.0), Kilowatts(2.0));
    EXPECT_GE(Kilowatts(2.0), Kilowatts(2.0));
    EXPECT_EQ(Kilowatts(3.0), Kilowatts(3.0));
}

TEST(Units, PowerTimesTimeIsEnergy)
{
    const KilowattHours e = Kilowatts(2.0) * hours(3.0);
    EXPECT_DOUBLE_EQ(e.value(), 6.0);
    const KilowattHours e2 = minutes(30.0) * Kilowatts(4.0);
    EXPECT_DOUBLE_EQ(e2.value(), 2.0);
}

TEST(Units, EnergyOverTimeIsPower)
{
    const Kilowatts p = KilowattHours(6.0) / hours(3.0);
    EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(Units, EnergyOverPowerIsTime)
{
    const Seconds t = KilowattHours(1.0) / Kilowatts(2.0);
    EXPECT_DOUBLE_EQ(toHours(t), 0.5);
    EXPECT_DOUBLE_EQ(toMinutes(t), 30.0);
}

TEST(Units, TemperatureAffineAlgebra)
{
    const Celsius t1(27.0), t2(32.0);
    EXPECT_DOUBLE_EQ((t2 - t1).value(), 5.0);
    EXPECT_DOUBLE_EQ((t1 + CelsiusDelta(5.0)).value(), 32.0);
    EXPECT_DOUBLE_EQ((t2 - CelsiusDelta(2.0)).value(), 30.0);
    Celsius t = t1;
    t += CelsiusDelta(3.0);
    EXPECT_DOUBLE_EQ(t.value(), 30.0);
    t -= CelsiusDelta(1.0);
    EXPECT_DOUBLE_EQ(t.value(), 29.0);
    EXPECT_LT(t1, t2);
}

TEST(Units, Literals)
{
    EXPECT_DOUBLE_EQ((2.5_kW).value(), 2.5);
    EXPECT_DOUBLE_EQ((8_kW).value(), 8.0);
    EXPECT_DOUBLE_EQ((0.2_kWh).value(), 0.2);
    EXPECT_DOUBLE_EQ((27_degC).value(), 27.0);
    EXPECT_DOUBLE_EQ((5_dK).value(), 5.0);
    EXPECT_DOUBLE_EQ(toMinutes(90_s), 1.5);
    EXPECT_DOUBLE_EQ((2_min).value(), 120.0);
    EXPECT_DOUBLE_EQ(toHours(2_h), 2.0);
}

TEST(Units, ClampPower)
{
    EXPECT_EQ(clamp(Kilowatts(5.0), Kilowatts(0.0), Kilowatts(3.0)),
              Kilowatts(3.0));
    EXPECT_EQ(clamp(Kilowatts(-1.0), Kilowatts(0.0), Kilowatts(3.0)),
              Kilowatts(0.0));
    EXPECT_EQ(clamp(Kilowatts(2.0), Kilowatts(0.0), Kilowatts(3.0)),
              Kilowatts(2.0));
}

TEST(Units, ClampEnergy)
{
    EXPECT_EQ(clamp(KilowattHours(0.5), KilowattHours(0.0),
                    KilowattHours(0.2)),
              KilowattHours(0.2));
}

TEST(Units, DefaultConstructedIsZero)
{
    EXPECT_DOUBLE_EQ(Kilowatts().value(), 0.0);
    EXPECT_DOUBLE_EQ(KilowattHours().value(), 0.0);
    EXPECT_DOUBLE_EQ(Celsius().value(), 0.0);
}

} // namespace
} // namespace ecolo
