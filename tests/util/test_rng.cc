/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hh"

namespace ecolo {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(3.0, 5.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(13);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_GT(c, 700); // each bucket near 1000
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalShifted)
{
    Rng rng(19);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(0.5);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(3.0));
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMean)
{
    Rng rng(37);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(100.0));
    EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(41);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependentlyDeterministic)
{
    Rng parent1(55), parent2(55);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child1.next(), child2.next());
    // And the fork differs from the parent stream.
    Rng parent3(55);
    Rng child3 = parent3.fork();
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += child3.next() != parent3.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ULL);
    Rng rng(61);
    EXPECT_NE(rng(), rng());
}

} // namespace
} // namespace ecolo
