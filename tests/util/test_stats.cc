/** @file Unit tests for the streaming statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hh"
#include "util/stats.hh"

namespace ecolo {
namespace {

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownSequence)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream)
{
    Rng rng(3);
    OnlineStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStats, Reset)
{
    OnlineStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileEstimator, ExactSmallSet)
{
    PercentileEstimator p;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        p.add(x);
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(p.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(25.0), 2.0);
    EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentileEstimator, Interpolates)
{
    PercentileEstimator p;
    p.add(0.0);
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(95.0), 9.5);
}

TEST(PercentileEstimator, UniformStream)
{
    Rng rng(5);
    PercentileEstimator p;
    for (int i = 0; i < 100000; ++i)
        p.add(rng.uniform());
    EXPECT_NEAR(p.percentile(95.0), 0.95, 0.01);
    EXPECT_NEAR(p.median(), 0.5, 0.01);
}

TEST(PercentileEstimator, QueryThenAddThenQuery)
{
    PercentileEstimator p;
    p.add(1.0);
    EXPECT_DOUBLE_EQ(p.median(), 1.0);
    p.add(3.0);
    EXPECT_DOUBLE_EQ(p.median(), 2.0); // re-sorts after new samples
}

TEST(Histogram, BinsAndFractions)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_EQ(h.totalCount(), 10u);
    for (std::size_t b = 0; b < 10; ++b) {
        EXPECT_EQ(h.binCount(b), 1u);
        EXPECT_DOUBLE_EQ(h.binFraction(b), 0.1);
        EXPECT_DOUBLE_EQ(h.binCenter(b), static_cast<double>(b) + 0.5);
    }
}

TEST(Histogram, OutliersLandInEdgeBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.0);
}

} // namespace
} // namespace ecolo
