/** @file Unit tests for the table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace ecolo {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow("alpha", 1);
    table.addRow("b", 22.5);
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name   value"), std::string::npos);
    EXPECT_NE(out.find("alpha  1"), std::string::npos);
    EXPECT_NE(out.find("b      22.5"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable table({"a", "b"});
    table.addRow(1, 2);
    table.addRow("x", "y");
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\nx,y\n");
}

TEST(TextTable, RowCount)
{
    TextTable table({"only"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow(42);
    EXPECT_EQ(table.rows(), 1u);
}

TEST(TextTable, MixedCellTypes)
{
    TextTable table({"str", "int", "dbl"});
    table.addRow(std::string("s"), 7, 1.25);
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "str,int,dbl\ns,7,1.25\n");
}

TEST(Fixed, FormatsPrecision)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
    EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream oss;
    printBanner(oss, "Fig. 8");
    EXPECT_NE(oss.str().find("== Fig. 8 =="), std::string::npos);
}

} // namespace
} // namespace ecolo
