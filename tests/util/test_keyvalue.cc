/** @file Unit tests for the key=value configuration parser. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/keyvalue.hh"

namespace ecolo {
namespace {

KeyValueConfig
parse(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(KeyValue, ParsesBasicPairs)
{
    const auto kv = parse("a = 1\nb.c = hello\n");
    EXPECT_EQ(kv.size(), 2u);
    EXPECT_TRUE(kv.has("a"));
    EXPECT_EQ(*kv.getString("b.c"), "hello");
}

TEST(KeyValue, IgnoresCommentsAndBlankLines)
{
    const auto kv = parse("# header\n\n  a = 1  # trailing\n\n");
    EXPECT_EQ(kv.size(), 1u);
    EXPECT_DOUBLE_EQ(*kv.getDouble("a"), 1.0);
}

TEST(KeyValue, TrimsWhitespace)
{
    const auto kv = parse("  key.name   =   0.25  \n");
    EXPECT_DOUBLE_EQ(*kv.getDouble("key.name"), 0.25);
}

TEST(KeyValue, TypedGetters)
{
    const auto kv = parse("d = 3.5\ni = -7\nb1 = true\nb2 = off\ns = x\n");
    EXPECT_DOUBLE_EQ(*kv.getDouble("d"), 3.5);
    EXPECT_EQ(*kv.getInt("i"), -7);
    EXPECT_TRUE(*kv.getBool("b1"));
    EXPECT_FALSE(*kv.getBool("b2"));
    EXPECT_EQ(*kv.getString("s"), "x");
}

TEST(KeyValue, MissingKeysReturnNullopt)
{
    const auto kv = parse("a = 1\n");
    EXPECT_FALSE(kv.getDouble("missing").has_value());
    EXPECT_FALSE(kv.getInt("missing").has_value());
    EXPECT_FALSE(kv.getBool("missing").has_value());
    EXPECT_FALSE(kv.getString("missing").has_value());
}

TEST(KeyValue, UnconsumedKeysTracked)
{
    const auto kv = parse("used = 1\nunused = 2\n");
    kv.getDouble("used");
    const auto unread = kv.unconsumedKeys();
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(*unread.begin(), "unused");
}

TEST(KeyValue, SetOverrides)
{
    KeyValueConfig kv;
    kv.set("x", "42");
    EXPECT_EQ(*kv.getInt("x"), 42);
    kv.set("x", "43");
    EXPECT_EQ(*kv.getInt("x"), 43);
}

TEST(KeyValueDeathTest, MalformedInputs)
{
    EXPECT_DEATH(parse("no equals sign\n"), "no '='");
    EXPECT_DEATH(parse("= value\n"), "empty key");
    EXPECT_DEATH(parse("a = 1\na = 2\n"), "duplicate");
    const auto kv = parse("n = notanumber\n");
    EXPECT_DEATH(kv.getDouble("n"), "not a number");
    const auto kv2 = parse("n = 1.5\n");
    EXPECT_DEATH(kv2.getInt("n"), "not an integer");
    const auto kv3 = parse("b = maybe\n");
    EXPECT_DEATH(kv3.getBool("b"), "not a boolean");
}

TEST(KeyValueDeathTest, MissingFile)
{
    EXPECT_DEATH(KeyValueConfig::parseFile("/nonexistent/path.cfg"),
                 "cannot open");
}

util::Result<KeyValueConfig>
tryParse(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::tryParse(in, "site.cfg");
}

TEST(KeyValueTry, MalformedLineNamesSourceLineAndText)
{
    const auto result = tryParse("a = 1\nthis line is broken\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::ErrorCode::ParseError);
    const std::string &message = result.error().message;
    EXPECT_NE(message.find("site.cfg"), std::string::npos);
    EXPECT_NE(message.find("2"), std::string::npos);
    EXPECT_NE(message.find("this line is broken"), std::string::npos);
}

TEST(KeyValueTry, DuplicateKeyNamesBothLines)
{
    const auto result = tryParse("a = 1\nb = 2\na = 3\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(result.error().message.find("duplicate"),
              std::string::npos);
    EXPECT_NE(result.error().message.find("a"), std::string::npos);
}

TEST(KeyValueTry, UnparseableValueIsStructured)
{
    auto parsed = tryParse("n = notanumber\n");
    ASSERT_TRUE(parsed.ok());
    const auto value = parsed.value().tryGetDouble("n");
    ASSERT_FALSE(value.ok());
    EXPECT_EQ(value.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(value.error().message.find("not a number"),
              std::string::npos);
    // Absent keys are an empty optional, not an error.
    const auto missing = parsed.value().tryGetDouble("missing");
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing.value().has_value());
}

TEST(KeyValueTry, MissingFileIsIoError)
{
    const auto result =
        KeyValueConfig::tryParseFile("/nonexistent/path.cfg");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::ErrorCode::IoError);
}

TEST(KeyValueTry, LocateReportsSourceAndLine)
{
    auto parsed = tryParse("a = 1\n\nb = 2\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().sourceName(), "site.cfg");
    EXPECT_EQ(parsed.value().locate("b"), "site.cfg:3");
}

} // namespace
} // namespace ecolo
