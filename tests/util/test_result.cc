#include "util/result.hh"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace ecolo::util;

Result<int>
parsePositive(int v)
{
    if (v <= 0)
        return ECOLO_ERROR(ErrorCode::ValidationError,
                           "value must be positive, got ", v);
    return v;
}

Result<void>
checkPositive(int v)
{
    ECOLO_TRY_VOID(parsePositive(v));
    return {};
}

TEST(Result, ValueRoundTrip)
{
    const auto ok = parsePositive(7);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.value(), 7);
}

TEST(Result, ErrorCarriesCodeMessageAndOrigin)
{
    const auto bad = parsePositive(-3);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::ValidationError);
    EXPECT_EQ(bad.error().message, "value must be positive, got -3");
    EXPECT_NE(std::string(bad.error().file).find("test_result.cc"),
              std::string::npos);
    EXPECT_GT(bad.error().line, 0);
}

TEST(Result, DescribeNamesFileLineAndCode)
{
    const auto bad = parsePositive(0);
    const std::string text = bad.error().describe();
    EXPECT_NE(text.find("test_result.cc"), std::string::npos);
    EXPECT_NE(text.find("validation"), std::string::npos);
    EXPECT_NE(text.find("must be positive"), std::string::npos);
}

TEST(Result, VoidSuccessByDefault)
{
    const Result<void> ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.error().code, ErrorCode::None);
}

TEST(Result, TryVoidPropagatesAcrossValueTypes)
{
    EXPECT_TRUE(checkPositive(1).ok());
    const auto bad = checkPositive(-1);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::ValidationError);
}

TEST(Result, ErrorCodeNames)
{
    EXPECT_STREQ(toString(ErrorCode::None), "ok");
    EXPECT_NE(std::string(toString(ErrorCode::IoError)).size(), 0u);
    EXPECT_NE(std::string(toString(ErrorCode::ParseError)).size(), 0u);
    EXPECT_NE(std::string(toString(ErrorCode::ValidationError)).size(),
              0u);
    EXPECT_NE(std::string(toString(ErrorCode::StateError)).size(), 0u);
}

} // namespace
