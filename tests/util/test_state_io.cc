#include "util/state_io.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace {

using namespace ecolo::util;

TEST(StateIo, ScalarRoundTrip)
{
    std::stringstream buffer;
    StateWriter writer(buffer);
    writer.header();
    writer.tag("TEST");
    writer.u32(0xdeadbeefu);
    writer.u64(std::numeric_limits<std::uint64_t>::max());
    writer.i64(-123456789012345LL);
    writer.f64(3.141592653589793);
    writer.boolean(true);
    writer.boolean(false);
    writer.str("hello checkpoint");
    ASSERT_TRUE(writer.good());

    StateReader reader(buffer);
    reader.header();
    reader.tag("TEST");
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(reader.i64(), -123456789012345LL);
    EXPECT_EQ(reader.f64(), 3.141592653589793);
    EXPECT_TRUE(reader.boolean());
    EXPECT_FALSE(reader.boolean());
    EXPECT_EQ(reader.str(), "hello checkpoint");
    EXPECT_TRUE(reader.ok());
}

TEST(StateIo, DoublesAreBitExact)
{
    // The whole point of binary serialization: NaN, subnormals, and
    // values that do not survive a text round-trip come back bitwise.
    const double values[] = {
        0.1, -0.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::quiet_NaN(),
        std::nextafter(1.0, 2.0)};
    std::stringstream buffer;
    StateWriter writer(buffer);
    for (double v : values)
        writer.f64(v);

    StateReader reader(buffer);
    for (double v : values) {
        const double back = reader.f64();
        std::uint64_t expect_bits, got_bits;
        std::memcpy(&expect_bits, &v, sizeof v);
        std::memcpy(&got_bits, &back, sizeof back);
        EXPECT_EQ(got_bits, expect_bits);
    }
    EXPECT_TRUE(reader.ok());
}

TEST(StateIo, VectorRoundTrip)
{
    std::stringstream buffer;
    StateWriter writer(buffer);
    const std::vector<double> doubles{1.5, -2.25, 0.0};
    const std::vector<std::int64_t> ints{-1, 0, 42};
    const std::vector<std::size_t> sizes{7, 0, 99};
    writer.f64Vector(doubles);
    writer.i64Vector(ints);
    writer.sizeVector(sizes);

    StateReader reader(buffer);
    EXPECT_EQ(reader.f64Vector(), doubles);
    EXPECT_EQ(reader.i64Vector(), ints);
    EXPECT_EQ(reader.sizeVector(), sizes);
    EXPECT_TRUE(reader.ok());
}

TEST(StateIo, TagMismatchLatchesStructuredError)
{
    std::stringstream buffer;
    StateWriter writer(buffer);
    writer.header();
    writer.tag("AAAA");
    writer.u64(7);

    StateReader reader(buffer);
    reader.header();
    reader.tag("BBBB");
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error().code, ErrorCode::StateError);
    // Latched: subsequent reads return zeros instead of garbage.
    EXPECT_EQ(reader.u64(), 0u);
    EXPECT_FALSE(reader.status().ok());
}

TEST(StateIo, BadMagicRejected)
{
    std::stringstream buffer;
    buffer << "this is not a checkpoint file at all";
    StateReader reader(buffer);
    reader.header();
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error().code, ErrorCode::StateError);
}

TEST(StateIo, TruncatedInputFailsInsteadOfAborting)
{
    std::stringstream buffer;
    StateWriter writer(buffer);
    writer.header();
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);

    StateReader reader(truncated);
    reader.header();
    reader.u64();
    EXPECT_FALSE(reader.ok());
}

TEST(StateIo, ExternalFailMarksReader)
{
    std::stringstream buffer;
    StateWriter writer(buffer);
    writer.u64(40);

    StateReader reader(buffer);
    const auto servers = reader.u64();
    ASSERT_TRUE(reader.ok());
    if (servers != 14) // caller-side consistency check
        reader.fail(ECOLO_ERROR(ErrorCode::StateError,
                                "server count mismatch: ", servers));
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.status().error().message.find("mismatch"),
              std::string::npos);
}

} // namespace
