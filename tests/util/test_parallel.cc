/** @file Unit tests for the thread pool and parallelFor. */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hh"

namespace ecolo::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset)
{
    ThreadPool pool(3);
    std::vector<int> marks(20, 0);
    pool.parallelFor(5, 15, [&](std::size_t i) { marks[i] = 1; });
    for (std::size_t i = 0; i < marks.size(); ++i)
        EXPECT_EQ(marks[i], (i >= 5 && i < 15) ? 1 : 0);
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(3, 3, [&](std::size_t) { ran = true; });
    pool.parallelFor(5, 2, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::vector<int> order;
    pool.parallelFor(0, 5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i)); // safe: inline execution
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsMatchSerialSum)
{
    ThreadPool pool(4);
    std::vector<double> out(512, 0.0);
    pool.parallelFor(0, out.size(), [&](std::size_t i) {
        out[i] = static_cast<double>(i) * 0.5;
    });
    double serial = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
        serial += static_cast<double>(i) * 0.5;
    EXPECT_DOUBLE_EQ(std::accumulate(out.begin(), out.end(), 0.0), serial);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(0, 8, [&](std::size_t outer) {
        pool.parallelFor(0, 8, [&](std::size_t inner) {
            hits[outer * 8 + inner].fetch_add(1);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100,
                         [&](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ParallelFor, ReusableAcrossManyJobs)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(0, 10, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 500);
}

TEST(ParallelFor, GlobalPoolRespectsSetGlobalThreads)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().numThreads(), 3u);
    std::vector<std::atomic<int>> hits(100);
    parallelFor(0, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

TEST(ParallelDeathTest, ZeroThreadsRejected)
{
    EXPECT_DEATH(ThreadPool(0), "at least one thread");
}

} // namespace
} // namespace ecolo::util
