/** @file Unit tests for simulation-time helpers. */

#include <gtest/gtest.h>

#include "util/sim_time.hh"

namespace ecolo {
namespace {

TEST(SimTime, Constants)
{
    EXPECT_EQ(kMinutesPerDay, 1440);
    EXPECT_EQ(kMinutesPerWeek, 10080);
    EXPECT_EQ(kMinutesPerYear, 525600);
}

TEST(SimTime, MinuteOfDayWraps)
{
    EXPECT_EQ(minuteOfDay(0), 0);
    EXPECT_EQ(minuteOfDay(1439), 1439);
    EXPECT_EQ(minuteOfDay(1440), 0);
    EXPECT_EQ(minuteOfDay(1500), 60);
}

TEST(SimTime, HourOfDay)
{
    EXPECT_DOUBLE_EQ(hourOfDay(0), 0.0);
    EXPECT_DOUBLE_EQ(hourOfDay(90), 1.5);
    EXPECT_DOUBLE_EQ(hourOfDay(kMinutesPerDay + 720), 12.0);
}

TEST(SimTime, DayIndex)
{
    EXPECT_EQ(dayIndex(0), 0);
    EXPECT_EQ(dayIndex(1439), 0);
    EXPECT_EQ(dayIndex(1440), 1);
    EXPECT_EQ(dayIndex(10 * kMinutesPerDay + 5), 10);
}

TEST(SimTime, WeekStructure)
{
    // Day 0 is a Monday by convention.
    EXPECT_EQ(dayOfWeek(0), 0);
    EXPECT_EQ(dayOfWeek(4 * kMinutesPerDay), 4); // Friday
    EXPECT_FALSE(isWeekend(0));
    EXPECT_FALSE(isWeekend(4 * kMinutesPerDay));
    EXPECT_TRUE(isWeekend(5 * kMinutesPerDay));  // Saturday
    EXPECT_TRUE(isWeekend(6 * kMinutesPerDay));  // Sunday
    EXPECT_FALSE(isWeekend(7 * kMinutesPerDay)); // next Monday
}

} // namespace
} // namespace ecolo
