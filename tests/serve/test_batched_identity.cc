/**
 * @file
 * Batched-vs-scalar equivalence properties for the serving stack: the
 * micro-batching dispatch path (cross-request SoA lanes) must be
 * byte-identical to the scalar path for every completed request, and
 * per-request semantics -- cancellation, deadlines, chaos-injected
 * transport faults -- must survive batching as masked per-lane
 * divergence. Ground truth is the direct engine render (what the
 * scalar job body produces by construction).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/setup_cache.hh"
#include "faults/chaos.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/keyvalue.hh"
#include "util/sim_time.hh"
#include "util/socket.hh"

namespace ecolo::serve {
namespace {

using namespace std::chrono_literals;

/** Server on an ephemeral port; drained and joined at scope exit. */
class ServerHarness
{
  public:
    explicit ServerHarness(ServerOptions options = {})
        : server_(std::move(options))
    {
        const auto started = server_.start();
        EXPECT_TRUE(started.ok()) << started.error().describe();
    }

    ~ServerHarness()
    {
        server_.requestDrain();
        server_.waitUntilStopped();
    }

    Server &operator*() { return server_; }
    Server *operator->() { return &server_; }
    ServeClient client() { return ServeClient(server_.port()); }

  private:
    Server server_;
};

ServerOptions
batchedOptions(std::uint32_t window_ms = 25)
{
    ServerOptions options;
    options.numWorkers = 2;
    options.maxQueued = 64;
    options.batching = true;
    options.batchWindowMs = window_ms;
    return options;
}

RequestSpec
campaignRequest(double param, double days = 1.0)
{
    RequestSpec spec;
    spec.clientId = "identity";
    spec.priority = Priority::Batch;
    spec.policy = "myopic";
    spec.param = param;
    spec.paramSet = true;
    spec.horizonMinutes = static_cast<std::int64_t>(
        days * static_cast<double>(kMinutesPerDay));
    spec.scenarioText = "seed = 42\n";
    return spec;
}

/**
 * What the engine renders for this request, bypassing the server. The
 * shared setup cache only speeds construction up across calls; cache
 * hits are bit-identical by design (test_lane_batch proves it), so the
 * rendered ground truth is unaffected.
 */
std::string
directReport(const RequestSpec &spec,
             const std::shared_ptr<core::SetupCache> &setup)
{
    core::SimulationConfig config =
        core::SimulationConfig::paperDefault();
    std::istringstream is(spec.scenarioText);
    auto kv = KeyValueConfig::tryParse(is, "<test>");
    EXPECT_TRUE(kv.ok());
    EXPECT_TRUE(core::tryApplyScenario(kv.value(), config).ok());
    config.setupCache = setup;
    const double param = spec.paramSet
                             ? spec.param
                             : core::defaultPolicyParam(spec.policy);
    auto policy = core::tryMakePolicyByName(config, spec.policy, param);
    EXPECT_TRUE(policy.ok());
    core::Simulation sim(config, policy.take());
    sim.run(spec.horizonMinutes);
    core::ReportInputs inputs;
    inputs.policyName = spec.policy;
    inputs.policyParameter = param;
    inputs.simulatedDays =
        static_cast<double>(spec.horizonMinutes) /
        static_cast<double>(kMinutesPerDay);
    std::ostringstream os;
    core::writeMarkdownReport(os, config, sim.metrics(), inputs);
    return os.str();
}

TEST(ServeBatchedIdentity, BatchedCampaignMatchesDirectRenderByteForByte)
{
    ServerHarness harness(batchedOptions());

    // 8 concurrent clients, same scenario seed (one compatibility key),
    // swept policy parameter (8 distinct results: the result cache
    // cannot short-circuit any member).
    constexpr int kRequests = 8;
    std::vector<std::string> reports(kRequests);
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        clients.emplace_back([&, i] {
            auto client = harness.client();
            RequestSpec spec =
                campaignRequest(5.0 + 0.1 * static_cast<double>(i));
            spec.clientId = "identity-" + std::to_string(i % 4);
            const auto outcome =
                client.submitWithRetry(spec, RetryPolicy{});
            if (!outcome.ok() ||
                outcome.value().status != OutcomeStatus::Completed) {
                failures.fetch_add(1);
                return;
            }
            reports[static_cast<std::size_t>(i)] =
                outcome.value().report;
        });
    }
    for (std::thread &t : clients)
        t.join();
    ASSERT_EQ(failures.load(), 0);

    // Batching actually happened, and the shared setup cache was hit.
    const auto stats = harness->schedulerStats();
    EXPECT_GE(stats.batchesDispatched, 1u);
    EXPECT_GE(stats.batchMaxOccupancy, 2u);
    const auto setup = harness->setupCacheCounters();
    EXPECT_GT(setup.traceHits + setup.scaleHits + setup.matrixHits +
                  setup.factorizationHits,
              0u);

    // Every response is byte-identical to the scalar ground truth.
    auto shared = std::make_shared<core::SetupCache>();
    for (int i = 0; i < kRequests; ++i) {
        const RequestSpec spec =
            campaignRequest(5.0 + 0.1 * static_cast<double>(i));
        EXPECT_EQ(reports[static_cast<std::size_t>(i)],
                  directReport(spec, shared))
            << "member " << i << " diverged under batching";
    }

    // The batching counters surface in the metrics document.
    const std::string metrics = harness->metricsJson();
    EXPECT_NE(metrics.find("serve.batch.batches"), std::string::npos);
    EXPECT_NE(metrics.find("serve.batch.occupancy.mean"),
              std::string::npos);
    EXPECT_NE(metrics.find("serve.setup_cache.hits"), std::string::npos);
    EXPECT_NE(metrics.find("serve.latency.batch.queue_wait"),
              std::string::npos);
}

TEST(ServeBatchedIdentity, RandomizedCancelAndDeadlineMixKeepsSemantics)
{
    ServerHarness harness(batchedOptions(50));

    // A seeded shuffle of three request kinds, all submitted
    // concurrently so batches mix live, pre-expired, and soon-to-be
    // cancelled members:
    //  - "normal": 1-day horizon, must complete byte-identically;
    //  - "expired": 1-day horizon with a 1 ms budget -- shares the
    //    normals' compatibility key, so it rides the same batch as a
    //    masked lane and must answer DEADLINE_EXCEEDED;
    //  - "cancelled": 10-year horizon (its own key), cancelled right
    //    after ACCEPTED, must answer CANCELLED.
    enum class Kind
    {
        Normal,
        Expired,
        Cancelled
    };
    std::vector<Kind> mix = {Kind::Normal,    Kind::Normal,
                             Kind::Normal,    Kind::Normal,
                             Kind::Expired,   Kind::Expired,
                             Kind::Cancelled, Kind::Cancelled};
    std::mt19937 rng(20260808);
    std::shuffle(mix.begin(), mix.end(), rng);

    std::mutex mu;
    std::vector<std::pair<RequestSpec, std::string>> completed;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    threads.reserve(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i) {
        threads.emplace_back([&, i, kind = mix[i]] {
            auto client = harness.client();
            RequestSpec spec =
                campaignRequest(5.0 + 0.1 * static_cast<double>(i));
            spec.clientId = "mix-" + std::to_string(i % 3);
            switch (kind) {
            case Kind::Normal: {
                const auto outcome =
                    client.submitWithRetry(spec, RetryPolicy{});
                if (!outcome.ok() || outcome.value().status !=
                                         OutcomeStatus::Completed) {
                    bad.fetch_add(1);
                    return;
                }
                std::lock_guard<std::mutex> lock(mu);
                completed.emplace_back(spec, outcome.value().report);
                return;
            }
            case Kind::Expired: {
                spec.deadlineMs = 1;
                const auto outcome =
                    client.submitWithRetry(spec, RetryPolicy{});
                if (!outcome.ok() ||
                    outcome.value().status != OutcomeStatus::Error ||
                    outcome.value().errorCode !=
                        RpcErrorCode::DeadlineExceeded)
                    bad.fetch_add(1);
                return;
            }
            case Kind::Cancelled: {
                spec.horizonMinutes = 3650 * kMinutesPerDay;
                std::thread canceller;
                const auto outcome = client.submit(
                    spec,
                    [&](std::uint64_t id, const AcceptedPayload &) {
                        canceller = std::thread([&harness, id] {
                            auto side = harness.client();
                            const auto ack = side.cancel(id);
                            EXPECT_TRUE(ack.ok());
                        });
                    });
                if (canceller.joinable())
                    canceller.join();
                if (!outcome.ok() || outcome.value().status !=
                                         OutcomeStatus::Cancelled)
                    bad.fetch_add(1);
                return;
            }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    // The mix still produced real batches, and every member that
    // completed is byte-identical to the scalar ground truth.
    EXPECT_GE(harness->schedulerStats().batchesDispatched, 1u);
    ASSERT_EQ(completed.size(), 4u);
    auto shared = std::make_shared<core::SetupCache>();
    for (const auto &[spec, report] : completed)
        EXPECT_EQ(report, directReport(spec, shared));
}

TEST(ServeBatchedIdentity, ChaoticTransportStaysByteIdentical)
{
    // Benign unbounded chaos on every socket: delays and 7-byte
    // fragments. The retry client must reassemble responses that are
    // byte-identical to a calm-network direct render even when the
    // batched server is streaming frames for several lanes at once.
    faults::ChaosSchedule schedule;
    schedule.setSeed(20260808);
    faults::ChaosRule shortOp;
    shortOp.kind = faults::ChaosKind::ShortOp;
    shortOp.op = faults::ChaosOp::Both;
    shortOp.probability = 0.2;
    shortOp.maxBytes = 7;
    ASSERT_TRUE(schedule.add(shortOp).ok());
    faults::ChaosRule delay;
    delay.kind = faults::ChaosKind::Delay;
    delay.op = faults::ChaosOp::Write;
    delay.probability = 0.05;
    delay.delayMs = 5;
    delay.maxTriggers = 40;
    ASSERT_TRUE(schedule.add(delay).ok());
    auto injector = faults::installGlobalChaosInjector(schedule);
    ASSERT_NE(injector, nullptr);

    {
        ServerHarness harness(batchedOptions());
        constexpr int kRequests = 6;
        std::vector<std::string> reports(kRequests);
        std::atomic<int> failures{0};
        std::vector<std::thread> clients;
        for (int i = 0; i < kRequests; ++i) {
            clients.emplace_back([&, i] {
                auto client = harness.client();
                const RequestSpec spec = campaignRequest(
                    6.0 + 0.1 * static_cast<double>(i), 0.5);
                const auto outcome =
                    client.submitWithRetry(spec, RetryPolicy{});
                if (!outcome.ok() ||
                    outcome.value().status != OutcomeStatus::Completed) {
                    failures.fetch_add(1);
                    return;
                }
                reports[static_cast<std::size_t>(i)] =
                    outcome.value().report;
            });
        }
        for (std::thread &t : clients)
            t.join();
        ASSERT_EQ(failures.load(), 0);
        EXPECT_GT(injector->stats().shortOps, 0u);

        auto shared = std::make_shared<core::SetupCache>();
        for (int i = 0; i < kRequests; ++i) {
            const RequestSpec spec = campaignRequest(
                6.0 + 0.1 * static_cast<double>(i), 0.5);
            EXPECT_EQ(reports[static_cast<std::size_t>(i)],
                      directReport(spec, shared));
        }
    }
    util::setGlobalSocketFaultInjector(nullptr);
}

} // namespace
} // namespace ecolo::serve
