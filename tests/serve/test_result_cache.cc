/**
 * @file
 * Content-addressed result cache tests: key derivation (every request
 * field and the engine schema version feed the fingerprint; scenario
 * comments and ordering do not), LRU eviction under both budgets, and
 * byte-identity guarantees.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/version.hh"
#include "serve/result_cache.hh"
#include "util/keyvalue.hh"

namespace ecolo::serve {
namespace {

KeyValueConfig
parseScenario(const std::string &text)
{
    std::istringstream is(text);
    auto kv = KeyValueConfig::tryParse(is, "<test>");
    EXPECT_TRUE(kv.ok());
    return kv.value();
}

TEST(ServeResultCache, KeyDependsOnEveryRequestField)
{
    const KeyValueConfig kv = parseScenario("seed = 7\n");
    const CacheKey base = makeCacheKey(kv, "myopic", 7.4, 1440, thermal::KernelMode::Auto);

    EXPECT_NE(base.hash, makeCacheKey(kv, "random", 7.4, 1440, thermal::KernelMode::Auto).hash);
    EXPECT_NE(base.hash, makeCacheKey(kv, "myopic", 7.5, 1440, thermal::KernelMode::Auto).hash);
    EXPECT_NE(base.hash, makeCacheKey(kv, "myopic", 7.4, 1441, thermal::KernelMode::Auto).hash);
    const KeyValueConfig other = parseScenario("seed = 8\n");
    EXPECT_NE(base.hash, makeCacheKey(other, "myopic", 7.4, 1440, thermal::KernelMode::Auto).hash);
    EXPECT_EQ(base.hash, makeCacheKey(kv, "myopic", 7.4, 1440, thermal::KernelMode::Auto).hash);
}

TEST(ServeResultCache, KeyIgnoresCommentsAndOrdering)
{
    const KeyValueConfig a =
        parseScenario("seed = 7\nbattery.capacityKwh = 0.4\n");
    const KeyValueConfig b = parseScenario(
        "# a comment\nbattery.capacityKwh = 0.4\n\nseed = 7\n");
    EXPECT_EQ(makeCacheKey(a, "myopic", 7.4, 1440, thermal::KernelMode::Auto).hash,
              makeCacheKey(b, "myopic", 7.4, 1440, thermal::KernelMode::Auto).hash);
}

TEST(ServeResultCache, KeyChangesWithEngineSchemaVersion)
{
    // Satellite regression: flipping the engine version must invalidate
    // the cache -- a new build may produce different trajectories, so
    // yesterday's cached report must not answer today's request.
    const KeyValueConfig kv = parseScenario("seed = 7\n");
    const CacheKey current = makeCacheKey(kv, "myopic", 7.4, 1440,
                                          thermal::KernelMode::Auto,
                                          core::kEngineSchemaVersion);
    const CacheKey next = makeCacheKey(kv, "myopic", 7.4, 1440,
                                       thermal::KernelMode::Auto,
                                       core::kEngineSchemaVersion + 1);
    EXPECT_NE(current.hash, next.hash);
}

TEST(ServeResultCache, KeyChangesWithKernelMode)
{
    // The thermal kernel is part of the content address, so switching
    // modes can never serve a stale result -- even when the scenario
    // text does not mention thermal.kernel (e.g. the server's default
    // config changed between runs).
    const KeyValueConfig kv = parseScenario("seed = 7\n");
    const CacheKey as_auto =
        makeCacheKey(kv, "myopic", 7.4, 1440, thermal::KernelMode::Auto);
    const CacheKey as_dense =
        makeCacheKey(kv, "myopic", 7.4, 1440, thermal::KernelMode::Dense);
    const CacheKey as_stream = makeCacheKey(
        kv, "myopic", 7.4, 1440, thermal::KernelMode::Streaming);
    EXPECT_NE(as_auto.hash, as_dense.hash);
    EXPECT_NE(as_auto.hash, as_stream.hash);
    EXPECT_NE(as_dense.hash, as_stream.hash);
}

TEST(ServeResultCache, ParamBitsNotTextFeedTheKey)
{
    // 0.1 + 0.2 != 0.3 in doubles; the key must see the exact bits.
    const KeyValueConfig kv = parseScenario("");
    EXPECT_NE(makeCacheKey(kv, "myopic", 0.1 + 0.2, 60, thermal::KernelMode::Auto).hash,
              makeCacheKey(kv, "myopic", 0.3, 60, thermal::KernelMode::Auto).hash);
}

TEST(ServeResultCache, HitReturnsInsertedBytesAndCounts)
{
    ResultCache cache(1 << 20, 16);
    const CacheKey key{1234};
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, "report-bytes");
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "report-bytes");
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, std::string("report-bytes").size());
}

TEST(ServeResultCache, DuplicateInsertKeepsOriginalBytes)
{
    ResultCache cache(1 << 20, 16);
    const CacheKey key{1};
    cache.insert(key, "first");
    cache.insert(key, "second");
    EXPECT_EQ(*cache.lookup(key), "first");
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ServeResultCache, EvictsLeastRecentlyUsedOnEntryBudget)
{
    ResultCache cache(1 << 20, 2);
    cache.insert(CacheKey{1}, "one");
    cache.insert(CacheKey{2}, "two");
    ASSERT_TRUE(cache.lookup(CacheKey{1}).has_value()); // 1 now MRU
    cache.insert(CacheKey{3}, "three");                 // evicts 2
    EXPECT_TRUE(cache.lookup(CacheKey{1}).has_value());
    EXPECT_FALSE(cache.lookup(CacheKey{2}).has_value());
    EXPECT_TRUE(cache.lookup(CacheKey{3}).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeResultCache, EvictsOnByteBudget)
{
    ResultCache cache(10, 100);
    cache.insert(CacheKey{1}, "aaaaaa"); // 6 bytes
    cache.insert(CacheKey{2}, "bbbbbb"); // 12 total -> evict 1
    EXPECT_FALSE(cache.lookup(CacheKey{1}).has_value());
    EXPECT_TRUE(cache.lookup(CacheKey{2}).has_value());
    EXPECT_LE(cache.stats().bytes, 10u);
}

TEST(ServeResultCache, OversizeValueIsRejectedNotCached)
{
    ResultCache cache(4, 100);
    cache.insert(CacheKey{1}, "too-big-for-the-whole-cache");
    EXPECT_FALSE(cache.lookup(CacheKey{1}).has_value());
    EXPECT_EQ(cache.stats().oversizeRejected, 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeResultCache, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a test vectors pin the wire-stable hash.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

} // namespace
} // namespace ecolo::serve
