/**
 * @file
 * Scheduler tests. The suite name contains "Parallel" on purpose: the
 * thread-sanitizer CI job runs `ctest -R 'Parallel'`, so every test
 * here is exercised under TSan (admission, fairness, cancellation, and
 * drain race against worker threads).
 *
 * Determinism trick for ordering assertions: one worker plus a "gate"
 * job that holds the worker while the test enqueues; once the gate is
 * released, the dispatch order of what was queued is fully determined
 * by the scheduling policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hh"

namespace ecolo::serve {
namespace {

using namespace std::chrono_literals;

/** Runs scheduler.run() on a joined thread; drains on destruction. */
class SchedulerHarness
{
  public:
    explicit SchedulerHarness(Scheduler::Options options)
        : scheduler_(options),
          runner_([this] { scheduler_.run(); })
    {}

    ~SchedulerHarness()
    {
        if (runner_.joinable()) {
            scheduler_.drain(true);
            runner_.join();
        }
    }

    Scheduler &operator*() { return scheduler_; }
    Scheduler *operator->() { return &scheduler_; }

    void
    finish()
    {
        scheduler_.drain(false);
        runner_.join();
    }

    void
    finishCancelling()
    {
        scheduler_.drain(true);
        runner_.join();
    }

  private:
    Scheduler scheduler_;
    std::thread runner_;
};

/** Blocks the (single) worker until release() is called. */
class Gate
{
  public:
    Scheduler::JobFn
    job()
    {
        return [this](const CancelToken &) {
            std::unique_lock<std::mutex> lock(mutex_);
            entered_ = true;
            enteredCv_.notify_all();
            cv_.wait(lock, [this] { return released_; });
        };
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        enteredCv_.wait(lock, [this] { return entered_; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        released_ = true;
        cv_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable enteredCv_;
    bool entered_ = false;
    bool released_ = false;
};

/** Thread-safe dispatch-order recorder. */
class OrderLog
{
  public:
    Scheduler::JobFn
    job(int label)
    {
        return [this, label](const CancelToken &) {
            std::lock_guard<std::mutex> lock(mutex_);
            order_.push_back(label);
        };
    }

    std::vector<int>
    order()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return order_;
    }

  private:
    std::mutex mutex_;
    std::vector<int> order_;
};

TEST(ServeSchedulerParallel, InteractiveLaneIsNeverStarvedByBatch)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    ASSERT_EQ(harness->submit(1, Lane::Batch, "warm", gate.job())
                  .admission,
              Scheduler::Admission::Admitted);
    gate.waitEntered(); // worker busy; everything below queues up

    for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(harness
                      ->submit(static_cast<std::uint64_t>(100 + i),
                               Lane::Batch, "bulk", log.job(100 + i))
                      .admission,
                  Scheduler::Admission::Admitted);
    }
    ASSERT_EQ(harness->submit(2, Lane::Interactive, "user", log.job(2))
                  .admission,
              Scheduler::Admission::Admitted);

    gate.release();
    harness.finish();

    // The interactive job must beat the batch backlog queued before it.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order.front(), 2);
}

TEST(ServeSchedulerParallel, BatchIsBoostedUnderInteractiveFlood)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchBoostEvery = 2;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    ASSERT_EQ(harness->submit(1, Lane::Interactive, "warm", gate.job())
                  .admission,
              Scheduler::Admission::Admitted);
    gate.waitEntered();

    for (int i = 0; i < 6; ++i)
        harness->submit(static_cast<std::uint64_t>(10 + i),
                        Lane::Interactive, "flood", log.job(10 + i));
    harness->submit(99, Lane::Batch, "bg", log.job(99));

    gate.release();
    harness.finish();

    // With batchBoostEvery=2 the batch job must not be dead last.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 7u);
    EXPECT_NE(order.back(), 99);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.dispatchedBatch, 1u);
    EXPECT_EQ(stats.dispatchedInteractive, 7u);
}

TEST(ServeSchedulerParallel, ClientsAreServedRoundRobinWithinALane)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    // Client "hog" dumps 4 jobs, then "late" submits one.
    for (int i = 0; i < 4; ++i)
        harness->submit(static_cast<std::uint64_t>(10 + i),
                        Lane::Interactive, "hog", log.job(10 + i));
    harness->submit(50, Lane::Interactive, "late", log.job(50));

    gate.release();
    harness.finish();

    // Round-robin: late's single job is dispatched after at most one
    // more hog job, never behind the whole backlog.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[1], 50);
}

TEST(ServeSchedulerParallel, AdmissionIsBoundedAndReportsQueueFull)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 2;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    OrderLog log;
    EXPECT_EQ(harness->submit(2, Lane::Interactive, "c", log.job(2))
                  .admission,
              Scheduler::Admission::Admitted);
    EXPECT_EQ(harness->submit(3, Lane::Batch, "c", log.job(3)).admission,
              Scheduler::Admission::Admitted);
    const auto rejected =
        harness->submit(4, Lane::Interactive, "c", log.job(4));
    EXPECT_EQ(rejected.admission, Scheduler::Admission::QueueFull);
    EXPECT_EQ(harness->stats().rejectedQueueFull, 1u);

    gate.release();
    harness.finish();
    EXPECT_EQ(log.order().size(), 2u);
}

TEST(ServeSchedulerParallel, CancelledQueuedJobStillRunsItsCompletionPath)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 8;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    std::atomic<bool> observed_cancel{false};
    std::atomic<bool> job_ran{false};
    harness->submit(2, Lane::Interactive, "c",
                    [&](const CancelToken &token) {
                        job_ran.store(true);
                        observed_cancel.store(token.cancelled());
                        EXPECT_EQ(token.reason(), CancelReason::Client);
                    });
    EXPECT_TRUE(harness->cancel(2, CancelReason::Client));
    EXPECT_FALSE(harness->cancel(777, CancelReason::Client));

    gate.release();
    harness.finish();

    // The cancelled job was dispatched (never leaked) and saw its token.
    EXPECT_TRUE(job_ran.load());
    EXPECT_TRUE(observed_cancel.load());
    const auto stats = harness->stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.queuedNow, 0u);
    EXPECT_EQ(stats.runningNow, 0u);
}

TEST(ServeSchedulerParallel, ExpiredDeadlineCancelsAtDispatch)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 8;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    // Queued behind the gate with an already-expired budget: the worker
    // must dispatch it with its token pre-cancelled, never skip it.
    std::atomic<bool> job_ran{false};
    std::atomic<int> observed_reason{0};
    harness->submit(2, Lane::Interactive, "d",
                    [&](const CancelToken &token) {
                        job_ran.store(true);
                        observed_reason.store(
                            static_cast<int>(token.reason()));
                    },
                    std::chrono::steady_clock::now() - 1ms);

    // A deadline comfortably in the future must not trip.
    std::atomic<bool> fresh_cancelled{true};
    harness->submit(3, Lane::Interactive, "d",
                    [&](const CancelToken &token) {
                        fresh_cancelled.store(token.cancelled());
                    },
                    std::chrono::steady_clock::now() + 1h);

    gate.release();
    harness.finish();

    EXPECT_TRUE(job_ran.load());
    EXPECT_EQ(observed_reason.load(),
              static_cast<int>(CancelReason::Deadline));
    EXPECT_FALSE(fresh_cancelled.load());
    const auto stats = harness->stats();
    EXPECT_EQ(stats.deadlineExpiredQueued, 1u);
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 2u); // the gate job + request 3
}

TEST(ServeSchedulerParallel, CancelReachesARunningJob)
{
    Scheduler::Options options;
    options.numWorkers = 2;
    SchedulerHarness harness(options);

    std::atomic<bool> done{false};
    std::atomic<std::int64_t> polls{0};
    harness->submit(1, Lane::Batch, "c",
                    [&](const CancelToken &token) {
                        while (!token.cancelled()) {
                            polls.fetch_add(1);
                            std::this_thread::sleep_for(1ms);
                        }
                        done.store(true);
                    });
    // Give the job time to start, then cancel it mid-flight.
    while (polls.load() == 0)
        std::this_thread::sleep_for(1ms);
    EXPECT_TRUE(harness->cancel(1, CancelReason::Client));
    harness.finish();
    EXPECT_TRUE(done.load());
}

TEST(ServeSchedulerParallel, DrainRejectsNewWorkAndCompletesQueued)
{
    Scheduler::Options options;
    options.numWorkers = 2;
    options.maxQueued = 16;
    SchedulerHarness harness(options);

    OrderLog log;
    for (int i = 0; i < 4; ++i)
        harness->submit(static_cast<std::uint64_t>(i), Lane::Batch,
                        "c" + std::to_string(i), log.job(i));
    harness->drain(false);
    const auto rejected =
        harness->submit(99, Lane::Interactive, "late", log.job(99));
    EXPECT_EQ(rejected.admission, Scheduler::Admission::Draining);
    harness.finish();
    EXPECT_EQ(log.order().size(), 4u);
    EXPECT_EQ(harness->stats().rejectedDraining, 1u);
}

TEST(ServeSchedulerParallel, DrainWithCancelFlagsInFlightWithDrainReason)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    SchedulerHarness harness(options);

    std::atomic<int> reason{-1};
    std::mutex mutex;
    std::condition_variable started_cv;
    bool started = false;
    harness->submit(1, Lane::Batch, "c",
                    [&](const CancelToken &token) {
                        {
                            std::lock_guard<std::mutex> lock(mutex);
                            started = true;
                        }
                        started_cv.notify_all();
                        while (!token.cancelled())
                            std::this_thread::sleep_for(1ms);
                        reason.store(static_cast<int>(token.reason()));
                    });
    {
        std::unique_lock<std::mutex> lock(mutex);
        started_cv.wait(lock, [&] { return started; });
    }
    harness.finishCancelling();
    EXPECT_EQ(reason.load(), static_cast<int>(CancelReason::Drain));
}

// ---- Cross-request micro-batching. ----

/** Thread-safe recorder of every executor invocation's member ids. */
class BatchLog
{
  public:
    Scheduler::BatchFn
    executor()
    {
        return [this](std::vector<Scheduler::BatchItem> &items) {
            std::vector<std::uint64_t> ids;
            std::vector<bool> cancelled;
            ids.reserve(items.size());
            for (const Scheduler::BatchItem &item : items) {
                ids.push_back(item.id);
                cancelled.push_back(item.token.cancelled());
            }
            std::lock_guard<std::mutex> lock(mutex_);
            batches_.push_back(std::move(ids));
            cancelled_.push_back(std::move(cancelled));
        };
    }

    std::vector<std::vector<std::uint64_t>>
    batches()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return batches_;
    }

    std::vector<std::vector<bool>>
    cancelledMasks()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return cancelled_;
    }

  private:
    std::mutex mutex_;
    std::vector<std::vector<std::uint64_t>> batches_;
    std::vector<std::vector<bool>> cancelled_;
};

TEST(ServeSchedulerParallel, CompatibleJobsCoalesceIntoOneBatch)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchMaxLanes = 8;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Batch, "warm", gate.job());
    gate.waitEntered(); // everything below queues behind the gate

    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(harness
                      ->submitBatchable(
                          static_cast<std::uint64_t>(10 + i),
                          Lane::Batch, "c" + std::to_string(i % 3),
                          /*batch_key=*/77, nullptr)
                      .admission,
                  Scheduler::Admission::Admitted);
    }

    gate.release();
    harness.finish();

    // All six compatible jobs ran as a single executor call.
    const auto batches = log.batches();
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].size(), 6u);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.batchesDispatched, 1u);
    EXPECT_EQ(stats.batchedJobs, 6u);
    EXPECT_EQ(stats.batchScalarFallbacks, 0u);
    EXPECT_EQ(stats.batchMaxOccupancy, 6u);
    EXPECT_EQ(stats.completed, 7u); // gate + 6 members
}

TEST(ServeSchedulerParallel, BatchRespectsMaxLanesBound)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchMaxLanes = 4;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Batch, "warm", gate.job());
    gate.waitEntered();

    for (int i = 0; i < 10; ++i)
        harness->submitBatchable(static_cast<std::uint64_t>(10 + i),
                                 Lane::Batch, "c", 77, nullptr);

    gate.release();
    harness.finish();

    // 10 jobs, 4 lanes: no executor call may exceed the bound, and
    // every job must run exactly once.
    std::size_t total = 0;
    for (const auto &batch : log.batches()) {
        EXPECT_LE(batch.size(), 4u);
        total += batch.size();
    }
    EXPECT_EQ(total, 10u);
    EXPECT_EQ(harness->stats().batchMaxOccupancy, 4u);
}

TEST(ServeSchedulerParallel, MixedKeysNeverShareABatch)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Batch, "warm", gate.job());
    gate.waitEntered();

    // Interleaved keys: 11,22,11,22,...
    for (int i = 0; i < 8; ++i)
        harness->submitBatchable(static_cast<std::uint64_t>(10 + i),
                                 Lane::Batch, "c",
                                 (i % 2 == 0) ? 11u : 22u, nullptr);

    gate.release();
    harness.finish();

    // Jobs 10,12,14,16 carry key 11; 11,13,15,17 carry key 22. Every
    // dispatched batch must be key-homogeneous.
    for (const auto &batch : log.batches()) {
        for (const std::uint64_t id : batch)
            EXPECT_EQ(id % 2, batch.front() % 2) << "mixed-key batch";
    }
    const auto stats = harness->stats();
    EXPECT_EQ(stats.batchedJobs + stats.batchScalarFallbacks, 8u);
}

TEST(ServeSchedulerParallel, BatchWindowCollectsLateArrivals)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchWindow = 250ms;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    // The seed dispatches alone into the window wait; the late arrival
    // lands inside the window and must join the same batch. Poll the
    // stat so the "late" submit provably happens inside the window.
    harness->submitBatchable(1, Lane::Batch, "a", 77, nullptr);
    while (harness->stats().batchWindowWaits == 0)
        std::this_thread::sleep_for(1ms);
    harness->submitBatchable(2, Lane::Batch, "b", 77, nullptr);
    harness.finish();

    const auto batches = log.batches();
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].size(), 2u);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.batchesDispatched, 1u);
    EXPECT_GE(stats.batchWindowWaits, 1u);
    EXPECT_GE(harness->batchWindowDelaySnapshot().count, 1u);
}

TEST(ServeSchedulerParallel, InteractiveSeedBypassesTheWindow)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchWindow = 10000ms; // would hang the test if waited on
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    harness->submitBatchable(1, Lane::Interactive, "a", 77, nullptr);
    harness.finish();

    // The interactive seed dispatched immediately, alone, without ever
    // opening the window.
    const auto stats = harness->stats();
    EXPECT_EQ(stats.batchWindowWaits, 0u);
    EXPECT_EQ(stats.batchScalarFallbacks, 1u);
    ASSERT_EQ(log.batches().size(), 1u);
    EXPECT_EQ(log.batches()[0].size(), 1u);
}

TEST(ServeSchedulerParallel, CancelledMemberStaysInBatchAsMaskedLane)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Batch, "warm", gate.job());
    gate.waitEntered();

    harness->submitBatchable(10, Lane::Batch, "a", 77, nullptr);
    harness->submitBatchable(11, Lane::Batch, "b", 77, nullptr);
    harness->submitBatchable(12, Lane::Batch, "c", 77, nullptr);
    EXPECT_TRUE(harness->cancel(11, CancelReason::Client));

    gate.release();
    harness.finish();

    // The cancelled member is still dispatched (the executor answers it
    // with CANCELLED) and only its token reads cancelled.
    const auto batches = log.batches();
    const auto masks = log.cancelledMasks();
    ASSERT_EQ(batches.size(), 1u);
    ASSERT_EQ(batches[0].size(), 3u);
    for (std::size_t i = 0; i < batches[0].size(); ++i)
        EXPECT_EQ(masks[0][i], batches[0][i] == 11);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 3u); // gate + members 10 and 12
}

TEST(ServeSchedulerParallel, QueueWaitIsRecordedPerLane)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    OrderLog log;
    harness->submit(2, Lane::Interactive, "a", log.job(2));
    harness->submit(3, Lane::Batch, "b", log.job(3));
    std::this_thread::sleep_for(5ms); // measurable queueing delay

    gate.release();
    harness.finish();

    const auto inter = harness->queueWaitSnapshot(Lane::Interactive);
    const auto batch = harness->queueWaitSnapshot(Lane::Batch);
    EXPECT_EQ(inter.count, 2u); // the gate job + request 2
    EXPECT_EQ(batch.count, 1u);
    EXPECT_GE(batch.max, 5000.0); // queued >= 5ms, recorded in us
}

TEST(ServeSchedulerParallel, DrainCompletesQueuedBatchableJobs)
{
    BatchLog log;
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchWindow = 10000ms;
    options.batchExecutor = log.executor();
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Batch, "warm", gate.job());
    gate.waitEntered();
    for (int i = 0; i < 3; ++i)
        harness->submitBatchable(static_cast<std::uint64_t>(10 + i),
                                 Lane::Batch, "c", 77, nullptr);
    gate.release();
    harness.finish(); // drain(false): queued work must still run, and
                      // the window must not hold the drain open

    std::size_t total = 0;
    for (const auto &batch : log.batches())
        total += batch.size();
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(harness->stats().queuedNow, 0u);
}

TEST(ServeSchedulerParallel, ConcurrentMixedClientsAllComplete)
{
    Scheduler::Options options;
    options.numWorkers = 4;
    options.maxQueued = 256;
    SchedulerHarness harness(options);

    constexpr int kClients = 8;
    constexpr int kJobsPerClient = 16;
    std::atomic<int> completed{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        submitters.emplace_back([&, c] {
            for (int j = 0; j < kJobsPerClient; ++j) {
                const auto id = static_cast<std::uint64_t>(
                    c * kJobsPerClient + j + 1);
                const Lane lane =
                    (c % 2 == 0) ? Lane::Interactive : Lane::Batch;
                for (;;) {
                    const auto r = harness->submit(
                        id, lane, "client-" + std::to_string(c),
                        [&](const CancelToken &) {
                            completed.fetch_add(1);
                        });
                    if (r.admission == Scheduler::Admission::Admitted)
                        break;
                    std::this_thread::sleep_for(1ms);
                }
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    harness.finish();

    EXPECT_EQ(completed.load(), kClients * kJobsPerClient);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.completed,
              static_cast<std::uint64_t>(kClients * kJobsPerClient));
    EXPECT_EQ(stats.queuedNow, 0u);
    EXPECT_EQ(stats.runningNow, 0u);
}

} // namespace
} // namespace ecolo::serve
