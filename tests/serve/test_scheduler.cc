/**
 * @file
 * Scheduler tests. The suite name contains "Parallel" on purpose: the
 * thread-sanitizer CI job runs `ctest -R 'Parallel'`, so every test
 * here is exercised under TSan (admission, fairness, cancellation, and
 * drain race against worker threads).
 *
 * Determinism trick for ordering assertions: one worker plus a "gate"
 * job that holds the worker while the test enqueues; once the gate is
 * released, the dispatch order of what was queued is fully determined
 * by the scheduling policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hh"

namespace ecolo::serve {
namespace {

using namespace std::chrono_literals;

/** Runs scheduler.run() on a joined thread; drains on destruction. */
class SchedulerHarness
{
  public:
    explicit SchedulerHarness(Scheduler::Options options)
        : scheduler_(options),
          runner_([this] { scheduler_.run(); })
    {}

    ~SchedulerHarness()
    {
        if (runner_.joinable()) {
            scheduler_.drain(true);
            runner_.join();
        }
    }

    Scheduler &operator*() { return scheduler_; }
    Scheduler *operator->() { return &scheduler_; }

    void
    finish()
    {
        scheduler_.drain(false);
        runner_.join();
    }

    void
    finishCancelling()
    {
        scheduler_.drain(true);
        runner_.join();
    }

  private:
    Scheduler scheduler_;
    std::thread runner_;
};

/** Blocks the (single) worker until release() is called. */
class Gate
{
  public:
    Scheduler::JobFn
    job()
    {
        return [this](const CancelToken &) {
            std::unique_lock<std::mutex> lock(mutex_);
            entered_ = true;
            enteredCv_.notify_all();
            cv_.wait(lock, [this] { return released_; });
        };
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        enteredCv_.wait(lock, [this] { return entered_; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        released_ = true;
        cv_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable enteredCv_;
    bool entered_ = false;
    bool released_ = false;
};

/** Thread-safe dispatch-order recorder. */
class OrderLog
{
  public:
    Scheduler::JobFn
    job(int label)
    {
        return [this, label](const CancelToken &) {
            std::lock_guard<std::mutex> lock(mutex_);
            order_.push_back(label);
        };
    }

    std::vector<int>
    order()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return order_;
    }

  private:
    std::mutex mutex_;
    std::vector<int> order_;
};

TEST(ServeSchedulerParallel, InteractiveLaneIsNeverStarvedByBatch)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    ASSERT_EQ(harness->submit(1, Lane::Batch, "warm", gate.job())
                  .admission,
              Scheduler::Admission::Admitted);
    gate.waitEntered(); // worker busy; everything below queues up

    for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(harness
                      ->submit(static_cast<std::uint64_t>(100 + i),
                               Lane::Batch, "bulk", log.job(100 + i))
                      .admission,
                  Scheduler::Admission::Admitted);
    }
    ASSERT_EQ(harness->submit(2, Lane::Interactive, "user", log.job(2))
                  .admission,
              Scheduler::Admission::Admitted);

    gate.release();
    harness.finish();

    // The interactive job must beat the batch backlog queued before it.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order.front(), 2);
}

TEST(ServeSchedulerParallel, BatchIsBoostedUnderInteractiveFlood)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    options.batchBoostEvery = 2;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    ASSERT_EQ(harness->submit(1, Lane::Interactive, "warm", gate.job())
                  .admission,
              Scheduler::Admission::Admitted);
    gate.waitEntered();

    for (int i = 0; i < 6; ++i)
        harness->submit(static_cast<std::uint64_t>(10 + i),
                        Lane::Interactive, "flood", log.job(10 + i));
    harness->submit(99, Lane::Batch, "bg", log.job(99));

    gate.release();
    harness.finish();

    // With batchBoostEvery=2 the batch job must not be dead last.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 7u);
    EXPECT_NE(order.back(), 99);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.dispatchedBatch, 1u);
    EXPECT_EQ(stats.dispatchedInteractive, 7u);
}

TEST(ServeSchedulerParallel, ClientsAreServedRoundRobinWithinALane)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 64;
    SchedulerHarness harness(options);

    Gate gate;
    OrderLog log;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    // Client "hog" dumps 4 jobs, then "late" submits one.
    for (int i = 0; i < 4; ++i)
        harness->submit(static_cast<std::uint64_t>(10 + i),
                        Lane::Interactive, "hog", log.job(10 + i));
    harness->submit(50, Lane::Interactive, "late", log.job(50));

    gate.release();
    harness.finish();

    // Round-robin: late's single job is dispatched after at most one
    // more hog job, never behind the whole backlog.
    const std::vector<int> order = log.order();
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[1], 50);
}

TEST(ServeSchedulerParallel, AdmissionIsBoundedAndReportsQueueFull)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 2;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    OrderLog log;
    EXPECT_EQ(harness->submit(2, Lane::Interactive, "c", log.job(2))
                  .admission,
              Scheduler::Admission::Admitted);
    EXPECT_EQ(harness->submit(3, Lane::Batch, "c", log.job(3)).admission,
              Scheduler::Admission::Admitted);
    const auto rejected =
        harness->submit(4, Lane::Interactive, "c", log.job(4));
    EXPECT_EQ(rejected.admission, Scheduler::Admission::QueueFull);
    EXPECT_EQ(harness->stats().rejectedQueueFull, 1u);

    gate.release();
    harness.finish();
    EXPECT_EQ(log.order().size(), 2u);
}

TEST(ServeSchedulerParallel, CancelledQueuedJobStillRunsItsCompletionPath)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 8;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    std::atomic<bool> observed_cancel{false};
    std::atomic<bool> job_ran{false};
    harness->submit(2, Lane::Interactive, "c",
                    [&](const CancelToken &token) {
                        job_ran.store(true);
                        observed_cancel.store(token.cancelled());
                        EXPECT_EQ(token.reason(), CancelReason::Client);
                    });
    EXPECT_TRUE(harness->cancel(2, CancelReason::Client));
    EXPECT_FALSE(harness->cancel(777, CancelReason::Client));

    gate.release();
    harness.finish();

    // The cancelled job was dispatched (never leaked) and saw its token.
    EXPECT_TRUE(job_ran.load());
    EXPECT_TRUE(observed_cancel.load());
    const auto stats = harness->stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.queuedNow, 0u);
    EXPECT_EQ(stats.runningNow, 0u);
}

TEST(ServeSchedulerParallel, ExpiredDeadlineCancelsAtDispatch)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    options.maxQueued = 8;
    SchedulerHarness harness(options);

    Gate gate;
    harness->submit(1, Lane::Interactive, "warm", gate.job());
    gate.waitEntered();

    // Queued behind the gate with an already-expired budget: the worker
    // must dispatch it with its token pre-cancelled, never skip it.
    std::atomic<bool> job_ran{false};
    std::atomic<int> observed_reason{0};
    harness->submit(2, Lane::Interactive, "d",
                    [&](const CancelToken &token) {
                        job_ran.store(true);
                        observed_reason.store(
                            static_cast<int>(token.reason()));
                    },
                    std::chrono::steady_clock::now() - 1ms);

    // A deadline comfortably in the future must not trip.
    std::atomic<bool> fresh_cancelled{true};
    harness->submit(3, Lane::Interactive, "d",
                    [&](const CancelToken &token) {
                        fresh_cancelled.store(token.cancelled());
                    },
                    std::chrono::steady_clock::now() + 1h);

    gate.release();
    harness.finish();

    EXPECT_TRUE(job_ran.load());
    EXPECT_EQ(observed_reason.load(),
              static_cast<int>(CancelReason::Deadline));
    EXPECT_FALSE(fresh_cancelled.load());
    const auto stats = harness->stats();
    EXPECT_EQ(stats.deadlineExpiredQueued, 1u);
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 2u); // the gate job + request 3
}

TEST(ServeSchedulerParallel, CancelReachesARunningJob)
{
    Scheduler::Options options;
    options.numWorkers = 2;
    SchedulerHarness harness(options);

    std::atomic<bool> done{false};
    std::atomic<std::int64_t> polls{0};
    harness->submit(1, Lane::Batch, "c",
                    [&](const CancelToken &token) {
                        while (!token.cancelled()) {
                            polls.fetch_add(1);
                            std::this_thread::sleep_for(1ms);
                        }
                        done.store(true);
                    });
    // Give the job time to start, then cancel it mid-flight.
    while (polls.load() == 0)
        std::this_thread::sleep_for(1ms);
    EXPECT_TRUE(harness->cancel(1, CancelReason::Client));
    harness.finish();
    EXPECT_TRUE(done.load());
}

TEST(ServeSchedulerParallel, DrainRejectsNewWorkAndCompletesQueued)
{
    Scheduler::Options options;
    options.numWorkers = 2;
    options.maxQueued = 16;
    SchedulerHarness harness(options);

    OrderLog log;
    for (int i = 0; i < 4; ++i)
        harness->submit(static_cast<std::uint64_t>(i), Lane::Batch,
                        "c" + std::to_string(i), log.job(i));
    harness->drain(false);
    const auto rejected =
        harness->submit(99, Lane::Interactive, "late", log.job(99));
    EXPECT_EQ(rejected.admission, Scheduler::Admission::Draining);
    harness.finish();
    EXPECT_EQ(log.order().size(), 4u);
    EXPECT_EQ(harness->stats().rejectedDraining, 1u);
}

TEST(ServeSchedulerParallel, DrainWithCancelFlagsInFlightWithDrainReason)
{
    Scheduler::Options options;
    options.numWorkers = 1;
    SchedulerHarness harness(options);

    std::atomic<int> reason{-1};
    std::mutex mutex;
    std::condition_variable started_cv;
    bool started = false;
    harness->submit(1, Lane::Batch, "c",
                    [&](const CancelToken &token) {
                        {
                            std::lock_guard<std::mutex> lock(mutex);
                            started = true;
                        }
                        started_cv.notify_all();
                        while (!token.cancelled())
                            std::this_thread::sleep_for(1ms);
                        reason.store(static_cast<int>(token.reason()));
                    });
    {
        std::unique_lock<std::mutex> lock(mutex);
        started_cv.wait(lock, [&] { return started; });
    }
    harness.finishCancelling();
    EXPECT_EQ(reason.load(), static_cast<int>(CancelReason::Drain));
}

TEST(ServeSchedulerParallel, ConcurrentMixedClientsAllComplete)
{
    Scheduler::Options options;
    options.numWorkers = 4;
    options.maxQueued = 256;
    SchedulerHarness harness(options);

    constexpr int kClients = 8;
    constexpr int kJobsPerClient = 16;
    std::atomic<int> completed{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        submitters.emplace_back([&, c] {
            for (int j = 0; j < kJobsPerClient; ++j) {
                const auto id = static_cast<std::uint64_t>(
                    c * kJobsPerClient + j + 1);
                const Lane lane =
                    (c % 2 == 0) ? Lane::Interactive : Lane::Batch;
                for (;;) {
                    const auto r = harness->submit(
                        id, lane, "client-" + std::to_string(c),
                        [&](const CancelToken &) {
                            completed.fetch_add(1);
                        });
                    if (r.admission == Scheduler::Admission::Admitted)
                        break;
                    std::this_thread::sleep_for(1ms);
                }
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    harness.finish();

    EXPECT_EQ(completed.load(), kClients * kJobsPerClient);
    const auto stats = harness->stats();
    EXPECT_EQ(stats.completed,
              static_cast<std::uint64_t>(kClients * kJobsPerClient));
    EXPECT_EQ(stats.queuedNow, 0u);
    EXPECT_EQ(stats.runningNow, 0u);
}

} // namespace
} // namespace ecolo::serve
