/**
 * @file
 * RequestJournal tests: WAL round-trips, outcome-closes-admit
 * semantics, torn-tail and corruption tolerance, compaction on open,
 * and the server-level recovery contract -- a journaled admit with no
 * outcome is replayed on the next start and fills the result cache with
 * byte-identical bytes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/journal.hh"
#include "serve/server.hh"
#include "util/sim_time.hh"

namespace ecolo::serve {
namespace {

/** A unique scratch directory under the build tree. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "journal_test_" + name;
    std::remove((dir + "/requests.wal").c_str());
    return dir;
}

SubmitPayload
sampleRequest(const std::string &client_id, std::int64_t horizon)
{
    SubmitPayload request;
    request.clientId = client_id;
    request.policy = "standby";
    request.horizonMinutes = horizon;
    return request;
}

TEST(RequestJournal, AdmitWithoutOutcomeIsRecoveredInOrder)
{
    const std::string dir = scratchDir("pending");
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok()) << journal.error().describe();
        EXPECT_TRUE(journal.value().recovered().empty());
        ASSERT_TRUE(
            journal.value().recordAdmit(3, sampleRequest("a", 60)).ok());
        ASSERT_TRUE(
            journal.value().recordAdmit(4, sampleRequest("b", 120)).ok());
        ASSERT_TRUE(
            journal.value().recordAdmit(5, sampleRequest("c", 180)).ok());
        ASSERT_TRUE(
            journal.value()
                .recordOutcome(4, JournalOutcome::Completed)
                .ok());
    }
    auto reopened = RequestJournal::open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.error().describe();
    const auto &pending = reopened.value().recovered();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].id, 3u);
    EXPECT_EQ(pending[0].request.clientId, "a");
    EXPECT_EQ(pending[0].request.horizonMinutes, 60);
    EXPECT_EQ(pending[1].id, 5u);
    EXPECT_EQ(pending[1].request.clientId, "c");
}

TEST(RequestJournal, EveryOutcomeKindClosesItsAdmit)
{
    const std::string dir = scratchDir("outcomes");
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok());
        const JournalOutcome outcomes[] = {
            JournalOutcome::Completed,      JournalOutcome::Cancelled,
            JournalOutcome::Drained,        JournalOutcome::Error,
            JournalOutcome::DeadlineExceeded, JournalOutcome::Bounced,
        };
        std::uint64_t id = 10;
        for (const JournalOutcome outcome : outcomes) {
            ASSERT_TRUE(
                journal.value()
                    .recordAdmit(id, sampleRequest("x", 60))
                    .ok());
            ASSERT_TRUE(journal.value().recordOutcome(id, outcome).ok());
            ++id;
        }
    }
    auto reopened = RequestJournal::open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened.value().recovered().empty());
}

TEST(RequestJournal, TornTailIsToleratedAndEarlierRecordsSurvive)
{
    const std::string dir = scratchDir("torn");
    std::string path;
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok());
        path = journal.value().path();
        ASSERT_TRUE(
            journal.value().recordAdmit(1, sampleRequest("a", 60)).ok());
        ASSERT_TRUE(
            journal.value().recordAdmit(2, sampleRequest("b", 60)).ok());
    }
    // Tear the last record: chop off its trailing checksum bytes, the
    // signature of a kill -9 mid-append.
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    ASSERT_GT(bytes.size(), 5u);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - 5));
    os.close();

    auto scanned = RequestJournal::scanFile(path);
    ASSERT_TRUE(scanned.ok()) << scanned.error().describe();
    ASSERT_EQ(scanned.value().size(), 1u);
    EXPECT_EQ(scanned.value()[0].id, 1u);

    // And open() still works (compacting away the torn tail).
    auto reopened = RequestJournal::open(dir);
    ASSERT_TRUE(reopened.ok());
    ASSERT_EQ(reopened.value().recovered().size(), 1u);
    EXPECT_EQ(reopened.value().recovered()[0].id, 1u);
}

TEST(RequestJournal, ChecksumCorruptionStopsTheScan)
{
    const std::string dir = scratchDir("corrupt");
    std::string path;
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok());
        path = journal.value().path();
        ASSERT_TRUE(
            journal.value().recordAdmit(1, sampleRequest("a", 60)).ok());
        ASSERT_TRUE(
            journal.value().recordAdmit(2, sampleRequest("b", 60)).ok());
    }
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    // Flip a byte in the first record's payload: its checksum fails, so
    // the scan must keep nothing (a corrupt prefix hides the suffix).
    bytes[8] ^= 0x40;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.close();

    auto scanned = RequestJournal::scanFile(path);
    ASSERT_TRUE(scanned.ok());
    EXPECT_TRUE(scanned.value().empty());
}

TEST(RequestJournal, CompactionShrinksTheFileOnOpen)
{
    const std::string dir = scratchDir("compact");
    std::string path;
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok());
        path = journal.value().path();
        for (std::uint64_t id = 1; id <= 20; ++id) {
            ASSERT_TRUE(
                journal.value()
                    .recordAdmit(id, sampleRequest("bulk", 60))
                    .ok());
            ASSERT_TRUE(journal.value()
                            .recordOutcome(id, JournalOutcome::Completed)
                            .ok());
        }
        ASSERT_TRUE(
            journal.value().recordAdmit(21, sampleRequest("last", 60)).ok());
    }
    std::ifstream before(path, std::ios::binary | std::ios::ate);
    const auto size_before = before.tellg();
    before.close();

    auto reopened = RequestJournal::open(dir);
    ASSERT_TRUE(reopened.ok());
    ASSERT_EQ(reopened.value().recovered().size(), 1u);
    EXPECT_EQ(reopened.value().recovered()[0].id, 21u);

    std::ifstream after(path, std::ios::binary | std::ios::ate);
    const auto size_after = after.tellg();
    EXPECT_LT(size_after, size_before);
    EXPECT_GT(size_after, 0);
}

TEST(RequestJournal, ServerReplaysPendingAdmitsIntoTheCache)
{
    const std::string dir = scratchDir("server_replay");
    const std::int64_t horizon = kMinutesPerDay;
    // Phase 1: complete a request against a journaling server and keep
    // its report as the reference.
    std::string expected;
    {
        ServerOptions options;
        options.journalDir = dir;
        Server server(options);
        ASSERT_TRUE(server.start().ok());
        ServeClient client(server.port());
        RequestSpec spec;
        spec.policy = "standby";
        spec.horizonMinutes = horizon;
        auto outcome = client.submit(spec);
        ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
        ASSERT_EQ(outcome.value().status, OutcomeStatus::Completed);
        expected = outcome.value().report;
        server.requestDrain();
        server.waitUntilStopped();
    }
    ASSERT_FALSE(expected.empty());

    // Phase 2: forge the crash -- an admit with no outcome, exactly
    // what a kill -9 between ACCEPTED and RESULT leaves behind.
    {
        auto journal = RequestJournal::open(dir);
        ASSERT_TRUE(journal.ok());
        EXPECT_TRUE(journal.value().recovered().empty());
        ASSERT_TRUE(journal.value()
                        .recordAdmit(77, sampleRequest("crashed", horizon))
                        .ok());
    }

    // Phase 3: a restarted server replays the orphan; the retrying
    // client's re-submit then hits the cache byte-identically.
    {
        ServerOptions options;
        options.journalDir = dir;
        Server server(options);
        ASSERT_TRUE(server.start().ok());
        // Replay happens on scheduler workers; poll until it lands.
        for (int i = 0; i < 200 && server.journalStats().pending > 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const Server::JournalStats stats = server.journalStats();
        EXPECT_EQ(stats.recovered, 1u);
        EXPECT_EQ(stats.replayed, 1u);
        EXPECT_EQ(stats.pending, 0u);

        ServeClient client(server.port());
        RequestSpec spec;
        spec.policy = "standby";
        spec.horizonMinutes = horizon;
        bool cache_hit = false;
        auto outcome = client.submit(
            spec, [&cache_hit](std::uint64_t,
                               const AcceptedPayload &accepted) {
                cache_hit = accepted.cacheHit;
            });
        ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
        ASSERT_EQ(outcome.value().status, OutcomeStatus::Completed);
        EXPECT_TRUE(cache_hit);
        EXPECT_EQ(outcome.value().report, expected);
        server.requestDrain();
        server.waitUntilStopped();
    }

    // Phase 4: the replay's outcome record closes the journal entry.
    auto journal = RequestJournal::open(dir);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(journal.value().recovered().empty());
}

} // namespace
} // namespace ecolo::serve
