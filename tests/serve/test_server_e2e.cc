/**
 * @file
 * In-process end-to-end tests for the serving stack: a real Server on
 * an ephemeral loopback port, driven through ServeClient over real
 * sockets. Covers the PR's acceptance criteria: a cold request's report
 * matches a direct engine render byte for byte, a repeated request is a
 * cache hit with identical bytes, validation errors, backpressure,
 * cancellation, stats, shutdown, and drain-checkpoint-resume
 * bit-identity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/keyvalue.hh"
#include "util/sim_time.hh"

namespace ecolo::serve {
namespace {

using namespace std::chrono_literals;

/** Server on an ephemeral port; drained and joined at scope exit. */
class ServerHarness
{
  public:
    explicit ServerHarness(ServerOptions options = {})
        : server_(std::move(options))
    {
        const auto started = server_.start();
        EXPECT_TRUE(started.ok()) << started.error().describe();
    }

    ~ServerHarness()
    {
        server_.requestDrain();
        server_.waitUntilStopped();
    }

    Server &operator*() { return server_; }
    Server *operator->() { return &server_; }
    ServeClient client() { return ServeClient(server_.port()); }

  private:
    Server server_;
};

RequestSpec
smallRequest(std::uint64_t seed, double days = 1.0)
{
    RequestSpec spec;
    spec.clientId = "test";
    spec.policy = "myopic";
    spec.horizonMinutes =
        static_cast<std::int64_t>(days * static_cast<double>(
            kMinutesPerDay));
    spec.scenarioText = "seed = " + std::to_string(seed) + "\n";
    return spec;
}

/** What the engine renders for this request, bypassing the server. */
std::string
directReport(const RequestSpec &spec)
{
    core::SimulationConfig config =
        core::SimulationConfig::paperDefault();
    std::istringstream is(spec.scenarioText);
    auto kv = KeyValueConfig::tryParse(is, "<test>");
    EXPECT_TRUE(kv.ok());
    EXPECT_TRUE(core::tryApplyScenario(kv.value(), config).ok());
    const double param = spec.paramSet
                             ? spec.param
                             : core::defaultPolicyParam(spec.policy);
    auto policy =
        core::tryMakePolicyByName(config, spec.policy, param);
    EXPECT_TRUE(policy.ok());
    core::Simulation sim(config, policy.take());
    sim.run(spec.horizonMinutes);
    core::ReportInputs inputs;
    inputs.policyName = spec.policy;
    inputs.policyParameter = param;
    inputs.simulatedDays =
        static_cast<double>(spec.horizonMinutes) /
        static_cast<double>(kMinutesPerDay);
    std::ostringstream os;
    core::writeMarkdownReport(os, config, sim.metrics(), inputs);
    return os.str();
}

TEST(ServeServerE2E, ColdRequestMatchesDirectEngineRender)
{
    ServerHarness harness;
    auto client = harness.client();
    const RequestSpec spec = smallRequest(4242);
    const auto outcome = client.submit(spec);
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    ASSERT_EQ(outcome.value().status, OutcomeStatus::Completed);
    EXPECT_FALSE(outcome.value().cacheHit);
    EXPECT_FALSE(outcome.value().report.empty());
    EXPECT_EQ(outcome.value().report, directReport(spec));
}

TEST(ServeServerE2E, RepeatedRequestIsAByteIdenticalCacheHit)
{
    ServerHarness harness;
    auto client = harness.client();
    const RequestSpec spec = smallRequest(777);

    const auto first = client.submit(spec);
    ASSERT_TRUE(first.ok()) << first.error().describe();
    ASSERT_EQ(first.value().status, OutcomeStatus::Completed);
    EXPECT_FALSE(first.value().cacheHit);

    const auto second = client.submit(spec);
    ASSERT_TRUE(second.ok()) << second.error().describe();
    ASSERT_EQ(second.value().status, OutcomeStatus::Completed);
    EXPECT_TRUE(second.value().cacheHit);
    EXPECT_EQ(second.value().report, first.value().report);

    const auto stats = harness->cacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);

    // A scenario that differs only in comments/ordering also hits.
    RequestSpec reordered = spec;
    reordered.scenarioText =
        "# same thing, different text\n" + spec.scenarioText;
    const auto third = client.submit(reordered);
    ASSERT_TRUE(third.ok());
    EXPECT_TRUE(third.value().cacheHit);
    EXPECT_EQ(third.value().report, first.value().report);
}

TEST(ServeServerE2E, InvalidRequestsAreRejectedWithoutRunning)
{
    ServerHarness harness;
    auto client = harness.client();

    RequestSpec bad_policy = smallRequest(1);
    bad_policy.policy = "nonsense";
    auto outcome = client.submit(bad_policy);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Error);
    EXPECT_EQ(outcome.value().errorCode, RpcErrorCode::ValidationError);

    RequestSpec bad_scenario = smallRequest(1);
    bad_scenario.scenarioText = "this is not a key=value line\n";
    outcome = client.submit(bad_scenario);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Error);
    EXPECT_EQ(outcome.value().errorCode, RpcErrorCode::ParseError);

    RequestSpec bad_key = smallRequest(1);
    bad_key.scenarioText = "no.such.key = 1\n";
    outcome = client.submit(bad_key);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Error);

    RequestSpec bad_horizon = smallRequest(1);
    bad_horizon.horizonMinutes = 0;
    outcome = client.submit(bad_horizon);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Error);
    EXPECT_EQ(outcome.value().errorCode, RpcErrorCode::ValidationError);

    EXPECT_EQ(harness->schedulerStats().submitted, 0u);
}

TEST(ServeServerE2E, BackpressureAnswersRetryAfter)
{
    ServerOptions options;
    options.numWorkers = 1;
    options.maxQueued = 1;
    options.retryAfterMs = 123;
    ServerHarness harness(options);

    // Fill the single worker and the single queue slot with year-long
    // runs (distinct seeds so neither is a cache hit), then submit a
    // third: it must bounce with RETRY_AFTER, not block or queue.
    std::atomic<std::uint64_t> id1{0}, id2{0};
    auto runner = [&](std::uint64_t seed,
                      std::atomic<std::uint64_t> &slot) {
        auto client = harness.client();
        const auto outcome = client.submit(
            smallRequest(seed, 365.0),
            [&](std::uint64_t id, const AcceptedPayload &) {
                slot.store(id);
            });
        EXPECT_TRUE(outcome.ok());
        EXPECT_EQ(outcome.value().status, OutcomeStatus::Cancelled);
    };
    std::thread t1(runner, 10, std::ref(id1));
    while (harness->schedulerStats().runningNow == 0)
        std::this_thread::sleep_for(1ms);
    std::thread t2(runner, 11, std::ref(id2));
    while (harness->schedulerStats().queuedNow == 0)
        std::this_thread::sleep_for(1ms);

    auto client = harness.client();
    const auto rejected = client.submit(smallRequest(12, 365.0));
    ASSERT_TRUE(rejected.ok()) << rejected.error().describe();
    EXPECT_EQ(rejected.value().status, OutcomeStatus::RetryLater);
    EXPECT_EQ(rejected.value().retryAfterMs, 123u);
    EXPECT_GE(harness->schedulerStats().rejectedQueueFull, 1u);

    // Put the fleet out of its misery.
    while (id1.load() == 0 || id2.load() == 0)
        std::this_thread::sleep_for(1ms);
    EXPECT_TRUE(client.cancel(id1.load()).value());
    EXPECT_TRUE(client.cancel(id2.load()).value());
    t1.join();
    t2.join();
}

TEST(ServeServerE2E, CancellationStopsARunMidFlight)
{
    ServerHarness harness;
    auto client = harness.client();

    std::atomic<std::uint64_t> request_id{0};
    std::thread canceller;
    const auto outcome = client.submit(
        smallRequest(99, 3650.0),
        [&](std::uint64_t id, const AcceptedPayload &accepted) {
            EXPECT_FALSE(accepted.cacheHit);
            request_id.store(id);
            canceller = std::thread([&harness, id] {
                auto side = harness.client();
                // Let the run make some progress first.
                std::this_thread::sleep_for(50ms);
                const auto ack = side.cancel(id);
                EXPECT_TRUE(ack.ok());
                EXPECT_TRUE(ack.value());
            });
        });
    canceller.join();
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Cancelled);
    EXPECT_LT(outcome.value().minutesDone,
              3650 * kMinutesPerDay);
    // The CANCELLED frame is written inside the job body; the scheduler
    // counts the job only after the body returns, so allow it a moment.
    for (int i = 0; i < 2000 && harness->schedulerStats().cancelled == 0;
         ++i)
        std::this_thread::sleep_for(1ms);
    EXPECT_EQ(harness->schedulerStats().cancelled, 1u);

    // Cancelling an unknown id reports not-found.
    const auto missing = client.cancel(555555);
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing.value());
}

TEST(ServeServerE2E, DeadlineExpiryMidRunAnswersDeadlineExceeded)
{
    ServerHarness harness;
    auto client = harness.client();

    // A decade-long run with a tiny wall budget: the cooperative check
    // inside the simulation must trip and answer a typed error.
    RequestSpec spec = smallRequest(42, 3650.0);
    spec.deadlineMs = 50;
    const auto outcome = client.submit(spec);
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    ASSERT_EQ(outcome.value().status, OutcomeStatus::Error);
    EXPECT_EQ(outcome.value().errorCode, RpcErrorCode::DeadlineExceeded);
    EXPECT_NE(outcome.value().errorMessage.find("deadline"),
              std::string::npos);
    for (int i = 0; i < 2000 && harness->deadlineExceededCount() == 0;
         ++i)
        std::this_thread::sleep_for(1ms);
    EXPECT_EQ(harness->deadlineExceededCount(), 1u);

    // A generous budget on a short run completes normally.
    RequestSpec fine = smallRequest(42);
    fine.deadlineMs = 5 * 60 * 1000;
    const auto ok_outcome = client.submit(fine);
    ASSERT_TRUE(ok_outcome.ok());
    EXPECT_EQ(ok_outcome.value().status, OutcomeStatus::Completed);
}

TEST(ServeServerE2E, PerLaneLatencyIsRecorded)
{
    ServerHarness harness;
    auto client = harness.client();
    ASSERT_EQ(client.submit(smallRequest(8)).value().status,
              OutcomeStatus::Completed);
    RequestSpec batch = smallRequest(8);
    batch.priority = Priority::Batch;
    ASSERT_EQ(client.submit(batch).value().status,
              OutcomeStatus::Completed);

    // Latency accounting runs after the RESULT frame; give it a beat.
    for (int i = 0;
         i < 2000 &&
         (harness->latencySnapshot(Lane::Interactive).count == 0 ||
          harness->latencySnapshot(Lane::Batch).count == 0);
         ++i)
        std::this_thread::sleep_for(1ms);
    const auto interactive =
        harness->latencySnapshot(Lane::Interactive);
    ASSERT_EQ(interactive.count, 1u);
    EXPECT_GT(interactive.p99, 0.0);
    // The batch request was a cache hit (same content key): still
    // counted, against its own lane.
    EXPECT_EQ(harness->latencySnapshot(Lane::Batch).count, 1u);

    const auto stats = client.stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_NE(stats.value().find("\"serve.latency.interactive.p99_us\""),
              std::string::npos);
    EXPECT_NE(stats.value().find("\"serve.latency.batch.count\""),
              std::string::npos);
}

TEST(ServeServerE2E, RetryingClientAbsorbsBackpressure)
{
    // One worker, queue of one: the second concurrent submit bounces
    // with RETRY_AFTER, and submitWithRetry must eventually land it.
    ServerOptions options;
    options.numWorkers = 1;
    options.maxQueued = 1;
    options.retryAfterMs = 20;
    ServerHarness harness(options);

    // Two long submissions occupy the worker and the single queue slot.
    std::vector<std::thread> blockers;
    std::atomic<int> accepted{0};
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        blockers.emplace_back([&harness, &accepted, seed] {
            auto blocker_client = harness.client();
            RetryPolicy keep_trying;
            keep_trying.maxAttempts = 200;
            keep_trying.baseBackoffMs = 5;
            keep_trying.maxBackoffMs = 50;
            keep_trying.jitterSeed = seed;
            (void)blocker_client.submitWithRetry(
                smallRequest(seed, 120.0), keep_trying, nullptr,
                [&accepted](std::uint64_t, const AcceptedPayload &) {
                    accepted.fetch_add(1);
                });
        });
    }
    for (int i = 0; i < 2000 && accepted.load() < 2; ++i)
        std::this_thread::sleep_for(1ms);
    ASSERT_EQ(accepted.load(), 2);

    auto client = harness.client();
    RetryPolicy policy;
    policy.maxAttempts = 200;
    policy.baseBackoffMs = 5;
    policy.maxBackoffMs = 50;
    policy.jitterSeed = 3;
    std::size_t attempts = 0;
    const auto outcome =
        client.submitWithRetry(smallRequest(3), policy, &attempts);
    for (std::thread &blocker : blockers)
        blocker.join();
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    EXPECT_EQ(outcome.value().status, OutcomeStatus::Completed);
    EXPECT_GE(attempts, 2u); // at least one RETRY_AFTER bounce absorbed
}

TEST(ServeServerE2E, StatsEndpointServesMetricsJson)
{
    ServerHarness harness;
    auto client = harness.client();
    ASSERT_EQ(client.submit(smallRequest(5)).value().status,
              OutcomeStatus::Completed);
    ASSERT_EQ(client.submit(smallRequest(5)).value().status,
              OutcomeStatus::Completed);

    const auto stats = client.stats();
    ASSERT_TRUE(stats.ok()) << stats.error().describe();
    EXPECT_NE(stats.value().find("edgetherm-metrics-v1"),
              std::string::npos);
    EXPECT_NE(stats.value().find("\"serve.cache.hits\""),
              std::string::npos);
    EXPECT_NE(stats.value().find("\"serve.requests.completed\""),
              std::string::npos);
}

TEST(ServeServerE2E, ShutdownFrameDrainsTheServer)
{
    ServerHarness harness;
    auto client = harness.client();
    ASSERT_TRUE(client.shutdown().ok());
    harness->waitUntilStopped();
    EXPECT_FALSE(harness->running());

    // New submissions are refused (connect or submit fails).
    auto late = client.submit(smallRequest(1));
    if (late.ok())
        EXPECT_NE(late.value().status, OutcomeStatus::Completed);
}

TEST(ServeServerE2E, DrainCheckpointsInFlightAndResumesBitIdentically)
{
    const std::string spool = ::testing::TempDir() + "serve_spool";
    ASSERT_EQ(std::system(("mkdir -p '" + spool + "'").c_str()), 0);

    RequestSpec spec = smallRequest(31337, 3650.0);
    std::uint64_t request_id = 0;
    std::string checkpoint_path;
    std::int64_t minutes_done = 0;
    {
        ServerOptions options;
        options.numWorkers = 1;
        options.drainCheckpointDir = spool;
        options.statusEveryMinutes = kMinutesPerDay;
        ServerHarness harness(options);
        auto client = harness.client();

        // Drain only once a STATUS frame proves the run made progress,
        // so the checkpoint is guaranteed to be mid-flight.
        std::atomic<bool> progressed{false};
        std::thread drainer([&] {
            while (!progressed.load())
                std::this_thread::sleep_for(1ms);
            harness->requestDrain();
        });
        const auto outcome = client.submit(
            spec,
            [&](std::uint64_t id, const AcceptedPayload &) {
                request_id = id;
            },
            [&](const StatusPayload &status) {
                if (status.minutesDone > 0)
                    progressed.store(true);
            });
        drainer.join();
        ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
        ASSERT_EQ(outcome.value().status, OutcomeStatus::Drained);
        checkpoint_path = outcome.value().checkpointPath;
        minutes_done = outcome.value().minutesDone;
        ASSERT_FALSE(checkpoint_path.empty());
        ASSERT_GT(minutes_done, 0);
    }

    // Resume the checkpoint and run to a 3-day horizon; it must match
    // an uninterrupted 3-day run bit for bit. (3 days, not the full 10
    // years -- bit-identity is established at the first divergence.)
    core::SimulationConfig config =
        core::SimulationConfig::paperDefault();
    {
        std::istringstream is(spec.scenarioText);
        auto kv = KeyValueConfig::tryParse(is, "<test>");
        ASSERT_TRUE(kv.ok());
        ASSERT_TRUE(core::tryApplyScenario(kv.value(), config).ok());
    }
    const double param = core::defaultPolicyParam(spec.policy);
    const MinuteIndex horizon = minutes_done + 3 * kMinutesPerDay;

    core::Simulation resumed(
        config,
        core::tryMakePolicyByName(config, spec.policy, param).take());
    const auto loaded = core::loadSimulationCheckpoint(
        checkpoint_path, resumed, spec.policy);
    ASSERT_TRUE(loaded.ok()) << loaded.error().describe();
    ASSERT_EQ(resumed.now(), minutes_done);
    resumed.run(horizon - resumed.now());

    core::Simulation reference(
        config,
        core::tryMakePolicyByName(config, spec.policy, param).take());
    reference.run(horizon);

    std::ostringstream resumed_report, reference_report;
    core::ReportInputs inputs;
    inputs.policyName = spec.policy;
    inputs.policyParameter = param;
    inputs.simulatedDays = static_cast<double>(horizon) /
                           static_cast<double>(kMinutesPerDay);
    core::writeMarkdownReport(resumed_report, config, resumed.metrics(),
                              inputs);
    core::writeMarkdownReport(reference_report, config,
                              reference.metrics(), inputs);
    EXPECT_EQ(resumed_report.str(), reference_report.str());
    std::remove(checkpoint_path.c_str());
}

TEST(ServeServerE2E, ConcurrentMixedClientsAllResolve)
{
    ServerOptions options;
    options.numWorkers = 2;
    options.maxQueued = 64;
    ServerHarness harness(options);

    // Pre-warm the three distinct scenarios serially so the concurrent
    // phase is deterministic: identical requests racing an in-flight
    // first run would otherwise all miss (the cache has no coalescing).
    {
        auto warm = harness.client();
        for (int s = 0; s < 3; ++s) {
            const auto outcome = warm.submit(
                smallRequest(static_cast<std::uint64_t>(1000 + s), 0.25));
            ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
            ASSERT_EQ(outcome.value().status, OutcomeStatus::Completed);
            EXPECT_FALSE(outcome.value().cacheHit);
        }
    }

    constexpr int kThreads = 6;
    std::atomic<int> completed{0};
    std::atomic<int> cache_hits{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            auto client = harness.client();
            RequestSpec spec = smallRequest(
                static_cast<std::uint64_t>(1000 + t % 3), 0.25);
            spec.clientId = "tenant-" + std::to_string(t);
            spec.priority = (t % 2 == 0) ? Priority::Interactive
                                         : Priority::Batch;
            for (;;) {
                const auto outcome = client.submit(spec);
                ASSERT_TRUE(outcome.ok())
                    << outcome.error().describe();
                if (outcome.value().status ==
                    OutcomeStatus::RetryLater) {
                    std::this_thread::sleep_for(10ms);
                    continue;
                }
                ASSERT_EQ(outcome.value().status,
                          OutcomeStatus::Completed);
                completed.fetch_add(1);
                if (outcome.value().cacheHit)
                    cache_hits.fetch_add(1);
                return;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(completed.load(), kThreads);
    // Every concurrent request repeats warmed content: all six hit.
    EXPECT_EQ(cache_hits.load(), kThreads);
    EXPECT_EQ(harness->cacheStats().misses, 3u);
    EXPECT_EQ(harness->cacheStats().hits,
              static_cast<std::uint64_t>(kThreads));
}

} // namespace
} // namespace ecolo::serve
