/**
 * @file
 * Fuzz-style robustness tests for the edgetherm-rpc-v2 codecs: a
 * seed-driven corpus of truncated, bit-flipped, and length-corrupted
 * frames must always produce a typed decode error or a valid payload --
 * never a crash, a hang, or an out-of-bounds read. Socket-level cases
 * cover a peer that sends a partial frame and disappears.
 *
 * The corpus is deterministic (fixed ecolo::Rng seeds), so a failure
 * reproduces exactly; bump kFuzzIterations locally for longer runs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/rng.hh"
#include "util/socket.hh"

namespace ecolo::serve {
namespace {

constexpr int kFuzzIterations = 300;

std::vector<std::string>
corpusPayloads()
{
    SubmitPayload submit;
    submit.priority = Priority::Batch;
    submit.clientId = "fuzz-client";
    submit.policy = "foresighted";
    submit.param = 3.5;
    submit.paramSet = true;
    submit.horizonMinutes = 10080;
    submit.scenarioText = "battery.capacityKwh = 0.4\nseed = 9\n";
    return {
        encodeSubmit(submit),
        encodeAccepted({true, 9}),
        encodeRetryAfter({125}),
        encodeStatus({60, 1440}),
        encodeResult({std::string(512, 'r')}),
        encodeCancelled({61}),
        encodeDrained({62, "/spool/request-8.ckpt"}),
        encodeError({RpcErrorCode::DeadlineExceeded, "budget spent"}),
        encodeStatsReport({"{\"a\":1}"}),
        encodeCancel({12}),
        encodeCancelAck({false}),
    };
}

/** Decode `bytes` as every payload type; assert none of them crash. */
void
decodeEverywhere(const std::string &bytes)
{
    (void)decodeSubmit(bytes);
    (void)decodeAccepted(bytes);
    (void)decodeRetryAfter(bytes);
    (void)decodeStatus(bytes);
    (void)decodeResult(bytes);
    (void)decodeCancelled(bytes);
    (void)decodeDrained(bytes);
    (void)decodeError(bytes);
    (void)decodeStatsReport(bytes);
    (void)decodeCancel(bytes);
    (void)decodeCancelAck(bytes);
}

TEST(ProtocolFuzz, TruncatedPayloadsNeverCrashAndNeverParse)
{
    Rng rng(0x7072756e65ULL);
    const auto corpus = corpusPayloads();
    for (int i = 0; i < kFuzzIterations; ++i) {
        const std::string &bytes =
            corpus[rng.uniformInt(corpus.size())];
        if (bytes.empty())
            continue;
        const std::size_t cut = rng.uniformInt(bytes.size());
        decodeEverywhere(bytes.substr(0, cut));
    }
}

TEST(ProtocolFuzz, BitFlippedPayloadsDecodeToErrorOrValidNeverCrash)
{
    Rng rng(0x666c6970ULL);
    const auto corpus = corpusPayloads();
    for (int i = 0; i < kFuzzIterations; ++i) {
        std::string bytes = corpus[rng.uniformInt(corpus.size())];
        if (bytes.empty())
            continue;
        const int flips = 1 + static_cast<int>(rng.uniformInt(4));
        for (int f = 0; f < flips; ++f) {
            const std::size_t at = rng.uniformInt(bytes.size());
            bytes[at] = static_cast<char>(
                static_cast<unsigned char>(bytes[at]) ^
                (1u << rng.uniformInt(8)));
        }
        decodeEverywhere(bytes);
    }
}

TEST(ProtocolFuzz, RandomGarbageNeverCrashes)
{
    Rng rng(0x67617262ULL);
    for (int i = 0; i < kFuzzIterations; ++i) {
        std::string bytes(rng.uniformInt(256), '\0');
        for (char &c : bytes)
            c = static_cast<char>(rng.uniformInt(256));
        decodeEverywhere(bytes);
    }
}

TEST(ProtocolFuzz, HeaderMutationsRejectOversizeAndUnknownFields)
{
    const std::string frame =
        encodeFrame(MessageType::Submit, 5,
                    encodeSubmit(SubmitPayload{}), 250);
    Rng rng(0x68656164ULL);
    int rejected = 0;
    for (int i = 0; i < kFuzzIterations; ++i) {
        unsigned char header[kHeaderBytes];
        std::memcpy(header, frame.data(), kHeaderBytes);
        const int flips = 1 + static_cast<int>(rng.uniformInt(3));
        for (int f = 0; f < flips; ++f) {
            header[rng.uniformInt(kHeaderBytes)] ^=
                static_cast<unsigned char>(1u << rng.uniformInt(8));
        }
        const auto decoded = decodeHeader(header);
        if (!decoded.ok()) {
            ++rejected;
            continue;
        }
        // Anything that passes must still respect the hard bounds.
        EXPECT_LE(decoded.value().payloadLen, kMaxPayloadBytes);
        EXPECT_TRUE(isKnownMessageType(
            static_cast<std::uint32_t>(decoded.value().type)));
    }
    // Magic/version/type corruption dominates: most mutants die.
    EXPECT_GT(rejected, kFuzzIterations / 2);
}

TEST(ProtocolFuzz, PartialFrameThenEofIsATypedReadError)
{
    auto listener = util::TcpListener::listenLoopback(0);
    ASSERT_TRUE(listener.ok());
    const std::string frame = encodeFrame(
        MessageType::Submit, 1, encodeSubmit(SubmitPayload{}));

    Rng rng(0x656f66ULL);
    for (int i = 0; i < 24; ++i) {
        auto client = util::connectLoopback(listener.value().port());
        ASSERT_TRUE(client.ok());
        auto accepted = listener.value().acceptFor(2000);
        ASSERT_TRUE(accepted.ok() && accepted.value().has_value());
        util::TcpConnection server = std::move(*accepted.value());

        // Send a strict prefix (possibly zero bytes), then vanish.
        const std::size_t cut = rng.uniformInt(frame.size());
        if (cut > 0)
            ASSERT_TRUE(client.value().writeAll(frame.data(), cut).ok());
        client.value().close();

        const auto read = readFrame(server);
        ASSERT_FALSE(read.ok()) << "cut at " << cut << " byte(s)";
        EXPECT_FALSE(read.error().message.empty());
    }
}

TEST(ProtocolFuzz, OversizedDeclaredPayloadIsRejectedBeforeReading)
{
    auto listener = util::TcpListener::listenLoopback(0);
    ASSERT_TRUE(listener.ok());
    auto client = util::connectLoopback(listener.value().port());
    ASSERT_TRUE(client.ok());
    auto accepted = listener.value().acceptFor(2000);
    ASSERT_TRUE(accepted.ok() && accepted.value().has_value());
    util::TcpConnection server = std::move(*accepted.value());

    std::string frame =
        encodeFrame(MessageType::Submit, 1, encodeSubmit(SubmitPayload{}));
    const std::uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(frame.data() + 24, &huge, sizeof huge);
    ASSERT_TRUE(
        client.value().writeAll(frame.data(), kHeaderBytes).ok());

    // The reader must reject from the header alone -- no attempt to
    // allocate or read a 4 MiB+ body that will never arrive.
    const auto read = readFrame(server);
    ASSERT_FALSE(read.ok());
    EXPECT_NE(read.error().message.find("payload"), std::string::npos)
        << read.error().message;
}

} // namespace
} // namespace ecolo::serve
