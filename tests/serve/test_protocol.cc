/**
 * @file
 * edgetherm-rpc-v2 codec tests: round-trips for every payload type
 * (including the v2 deadline header field) and strict rejection of
 * malformed frames (bad magic/version/type, truncation, trailing
 * bytes, oversized lengths).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "serve/protocol.hh"

namespace ecolo::serve {
namespace {

TEST(ServeProtocol, SubmitRoundTripsAllFields)
{
    SubmitPayload p;
    p.priority = Priority::Batch;
    p.clientId = "tenant-7";
    p.policy = "foresighted";
    p.param = 14.25;
    p.paramSet = true;
    p.horizonMinutes = 525600;
    p.scenarioText = "battery.capacityKwh = 0.4\nseed = 7\n";

    const auto decoded = decodeSubmit(encodeSubmit(p));
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    const SubmitPayload &q = decoded.value();
    EXPECT_EQ(q.priority, Priority::Batch);
    EXPECT_EQ(q.clientId, "tenant-7");
    EXPECT_EQ(q.policy, "foresighted");
    EXPECT_DOUBLE_EQ(q.param, 14.25);
    EXPECT_TRUE(q.paramSet);
    EXPECT_EQ(q.horizonMinutes, 525600);
    EXPECT_EQ(q.scenarioText, p.scenarioText);
}

TEST(ServeProtocol, EveryResponsePayloadRoundTrips)
{
    {
        const auto d = decodeAccepted(encodeAccepted({true, 3}));
        ASSERT_TRUE(d.ok());
        EXPECT_TRUE(d.value().cacheHit);
        EXPECT_EQ(d.value().queueDepth, 3u);
    }
    {
        const auto d = decodeRetryAfter(encodeRetryAfter({250}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().retryAfterMs, 250u);
    }
    {
        const auto d = decodeStatus(encodeStatus({1440, 10080}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().minutesDone, 1440);
        EXPECT_EQ(d.value().horizonMinutes, 10080);
    }
    {
        const std::string report(4096, 'r');
        const auto d = decodeResult(encodeResult({report}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().report, report);
    }
    {
        const auto d = decodeCancelled(encodeCancelled({77}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().minutesDone, 77);
    }
    {
        const auto d =
            decodeDrained(encodeDrained({99, "/spool/request-4.ckpt"}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().minutesDone, 99);
        EXPECT_EQ(d.value().checkpointPath, "/spool/request-4.ckpt");
    }
    {
        const auto d = decodeError(
            encodeError({RpcErrorCode::ValidationError, "bad horizon"}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().code, RpcErrorCode::ValidationError);
        EXPECT_EQ(d.value().message, "bad horizon");
    }
    {
        const auto d =
            decodeStatsReport(encodeStatsReport({"{\"stats\":{}}"}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().metricsJson, "{\"stats\":{}}");
    }
    {
        const auto d = decodeCancelAck(encodeCancelAck({true}));
        ASSERT_TRUE(d.ok());
        EXPECT_TRUE(d.value().found);
    }
    {
        const auto d = decodeCancel(encodeCancel({42}));
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.value().targetId, 42u);
    }
}

TEST(ServeProtocol, FrameHeaderRoundTrips)
{
    const std::string frame =
        encodeFrame(MessageType::Status, 7, encodeStatus({10, 20}));
    ASSERT_GE(frame.size(), kHeaderBytes);
    unsigned char header[kHeaderBytes];
    std::memcpy(header, frame.data(), kHeaderBytes);
    const auto decoded = decodeHeader(header);
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().type, MessageType::Status);
    EXPECT_EQ(decoded.value().requestId, 7u);
    EXPECT_EQ(decoded.value().deadlineMs, 0u);
    EXPECT_EQ(decoded.value().payloadLen,
              frame.size() - kHeaderBytes);
}

TEST(ServeProtocol, DeadlineTravelsInTheFrameHeader)
{
    const std::string frame = encodeFrame(
        MessageType::Submit, 3, encodeSubmit(SubmitPayload{}), 1500);
    unsigned char header[kHeaderBytes];
    std::memcpy(header, frame.data(), kHeaderBytes);
    const auto decoded = decodeHeader(header);
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().deadlineMs, 1500u);
    EXPECT_EQ(decoded.value().requestId, 3u);
}

TEST(ServeProtocol, HeaderRejectsBadMagicVersionTypeAndLength)
{
    const std::string frame = encodeFrame(MessageType::Cancel, 1,
                                          encodeCancel({1}));
    unsigned char good[kHeaderBytes];
    std::memcpy(good, frame.data(), kHeaderBytes);

    {
        unsigned char bad[kHeaderBytes];
        std::memcpy(bad, good, kHeaderBytes);
        bad[0] ^= 0xff; // magic
        EXPECT_FALSE(decodeHeader(bad).ok());
    }
    {
        unsigned char bad[kHeaderBytes];
        std::memcpy(bad, good, kHeaderBytes);
        bad[4] = 99; // version
        EXPECT_FALSE(decodeHeader(bad).ok());
    }
    {
        unsigned char bad[kHeaderBytes];
        std::memcpy(bad, good, kHeaderBytes);
        bad[8] = 200; // unknown type
        EXPECT_FALSE(decodeHeader(bad).ok());
    }
    {
        unsigned char bad[kHeaderBytes];
        std::memcpy(bad, good, kHeaderBytes);
        // payloadLen is the last header field; make it absurd.
        bad[24] = 0xff;
        bad[25] = 0xff;
        bad[26] = 0xff;
        bad[27] = 0xff;
        EXPECT_FALSE(decodeHeader(bad).ok());
    }
}

TEST(ServeProtocol, DecodersRejectTruncationAndTrailingBytes)
{
    const std::string bytes = encodeSubmit([] {
        SubmitPayload p;
        p.clientId = "c";
        p.policy = "myopic";
        p.horizonMinutes = 60;
        return p;
    }());

    for (const std::size_t cut : {std::size_t{0}, bytes.size() / 2,
                                  bytes.size() - 1}) {
        const auto d = decodeSubmit(bytes.substr(0, cut));
        EXPECT_FALSE(d.ok()) << "cut at " << cut << " must not parse";
    }
    EXPECT_FALSE(decodeSubmit(bytes + "x").ok());
    EXPECT_FALSE(
        decodeCancelled(encodeCancelled({1}) + std::string(1, '\0')).ok());
}

TEST(ServeProtocol, StringLengthCannotExceedPayload)
{
    // A string whose declared length runs past the end of the buffer
    // must fail cleanly, not read out of bounds.
    std::string bytes = encodeCancel({5});
    // CancelPayload is a bare u64; craft a corrupt "string" case via
    // Drained (i64 + string): truncate mid-string.
    const std::string drained = encodeDrained({1, "abcdef"});
    EXPECT_FALSE(decodeDrained(drained.substr(0, drained.size() - 3)).ok());
    (void)bytes;
}

TEST(ServeProtocol, MessageTypeNamesAreStable)
{
    EXPECT_STREQ(toString(MessageType::Submit), "submit");
    EXPECT_STREQ(toString(MessageType::ResultReport), "result");
    EXPECT_TRUE(isKnownMessageType(
        static_cast<std::uint32_t>(MessageType::CancelAck)));
    EXPECT_FALSE(isKnownMessageType(0));
    EXPECT_FALSE(isKnownMessageType(1000));
}

} // namespace
} // namespace ecolo::serve
