/**
 * @file
 * Network chaos layer tests: chaos.* parsing, deterministic rule firing
 * (same seed, same fault placement), trigger budgets, and the socket
 * integration -- short ops must be invisible to the byte stream, drops
 * and resets must surface as typed "chaos:" IoErrors, and an empty
 * schedule must install nothing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faults/chaos.hh"
#include "util/keyvalue.hh"
#include "util/socket.hh"

namespace ecolo::faults {
namespace {

util::Result<ChaosSchedule>
parseSchedule(const std::string &text)
{
    std::istringstream is(text);
    auto kv = KeyValueConfig::tryParse(is, "<test>");
    if (!kv)
        return kv.error();
    return ChaosSchedule::fromKeyValue(kv.value());
}

TEST(ChaosSchedule, ParsesRulesAndSeed)
{
    const auto schedule = parseSchedule(
        "chaos.seed = 42\n"
        "chaos.0.kind = short_op\n"
        "chaos.0.op = write\n"
        "chaos.0.probability = 0.25\n"
        "chaos.0.maxBytes = 3\n"
        "chaos.1.kind = drop\n"
        "chaos.1.everyOps = 10\n"
        "chaos.1.afterOps = 5\n"
        "chaos.1.maxTriggers = 2\n");
    ASSERT_TRUE(schedule.ok()) << schedule.error().describe();
    EXPECT_EQ(schedule.value().seed(), 42u);
    ASSERT_EQ(schedule.value().size(), 2u);
    const ChaosRule &first = schedule.value().rules()[0];
    EXPECT_EQ(first.kind, ChaosKind::ShortOp);
    EXPECT_EQ(first.op, ChaosOp::Write);
    EXPECT_DOUBLE_EQ(first.probability, 0.25);
    EXPECT_EQ(first.maxBytes, 3u);
    const ChaosRule &second = schedule.value().rules()[1];
    EXPECT_EQ(second.kind, ChaosKind::Drop);
    EXPECT_EQ(second.op, ChaosOp::Both);
    EXPECT_EQ(second.everyOps, 10);
    EXPECT_EQ(second.afterOps, 5);
    EXPECT_EQ(second.maxTriggers, 2);
}

TEST(ChaosSchedule, EmptyDocumentYieldsEmptySchedule)
{
    const auto schedule = parseSchedule("thermal.kernel = streaming\n");
    ASSERT_TRUE(schedule.ok());
    EXPECT_TRUE(schedule.value().empty());
    EXPECT_EQ(installGlobalChaosInjector(schedule.value()), nullptr);
    EXPECT_EQ(util::globalSocketFaultInjector(), nullptr);
}

TEST(ChaosSchedule, RejectsAmbiguousOrMissingFiring)
{
    // Both probability and everyOps.
    EXPECT_FALSE(parseSchedule("chaos.0.kind = drop\n"
                               "chaos.0.probability = 0.5\n"
                               "chaos.0.everyOps = 3\n")
                     .ok());
    // Neither.
    EXPECT_FALSE(parseSchedule("chaos.0.kind = drop\n").ok());
    // Probability out of range.
    EXPECT_FALSE(parseSchedule("chaos.0.kind = drop\n"
                               "chaos.0.probability = 1.5\n")
                     .ok());
    // Unknown kind.
    EXPECT_FALSE(parseSchedule("chaos.0.kind = gremlins\n"
                               "chaos.0.probability = 0.5\n")
                     .ok());
    // delayMs on a non-delay rule.
    EXPECT_FALSE(parseSchedule("chaos.0.kind = drop\n"
                               "chaos.0.probability = 0.5\n"
                               "chaos.0.delayMs = 10\n")
                     .ok());
}

TEST(ChaosInjector, EveryOpsCadenceIsExact)
{
    ChaosSchedule schedule;
    ChaosRule rule;
    rule.kind = ChaosKind::ShortOp;
    rule.op = ChaosOp::Write;
    rule.everyOps = 3;
    rule.maxBytes = 1;
    ASSERT_TRUE(schedule.add(rule).ok());
    ChaosInjector injector(schedule);

    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i) {
        const auto d = injector.onWrite(100);
        fired.push_back(d.action ==
                        util::SocketFaultDecision::Action::ShortOp);
        // Reads are a different op stream; they must not advance the
        // write cadence.
        (void)injector.onRead(100);
    }
    const std::vector<bool> expected{false, false, true,  false, false,
                                     true,  false, false, true};
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(injector.stats().shortOps, 3u);
    EXPECT_EQ(injector.stats().writeOps, 9u);
    EXPECT_EQ(injector.stats().readOps, 9u);
}

TEST(ChaosInjector, SameSeedSameDecisions)
{
    ChaosSchedule schedule;
    schedule.setSeed(99);
    ChaosRule rule;
    rule.kind = ChaosKind::ShortOp;
    rule.probability = 0.3;
    rule.maxBytes = 2;
    ASSERT_TRUE(schedule.add(rule).ok());

    const auto run = [&schedule] {
        ChaosInjector injector(schedule);
        std::vector<int> decisions;
        for (int i = 0; i < 64; ++i)
            decisions.push_back(
                static_cast<int>(injector.onWrite(16).action));
        return decisions;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b);
    // And the stream is not degenerate.
    EXPECT_NE(std::count(a.begin(), a.end(), 0), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), 0),
              static_cast<long>(a.size()));
}

TEST(ChaosInjector, MaxTriggersBoundsTheBlastRadius)
{
    ChaosSchedule schedule;
    ChaosRule rule;
    rule.kind = ChaosKind::Drop;
    rule.everyOps = 1; // would otherwise fire every op
    rule.maxTriggers = 2;
    ASSERT_TRUE(schedule.add(rule).ok());
    ChaosInjector injector(schedule);

    int drops = 0;
    for (int i = 0; i < 10; ++i) {
        if (injector.onWrite(8).action ==
            util::SocketFaultDecision::Action::Drop)
            ++drops;
    }
    EXPECT_EQ(drops, 2);
    EXPECT_EQ(injector.stats().drops, 2u);
}

/** A loopback pair for socket-level fault tests. */
struct Pair
{
    util::TcpListener listener;
    util::TcpConnection client;
    util::TcpConnection server;
};

Pair
makePair()
{
    Pair p;
    auto listener = util::TcpListener::listenLoopback(0);
    EXPECT_TRUE(listener.ok());
    p.listener = listener.take();
    auto client = util::connectLoopback(p.listener.port());
    EXPECT_TRUE(client.ok());
    p.client = client.take();
    auto accepted = p.listener.acceptFor(2000);
    EXPECT_TRUE(accepted.ok() && accepted.value().has_value());
    p.server = std::move(*accepted.value());
    return p;
}

TEST(ChaosSocket, ShortOpsAreInvisibleToTheByteStream)
{
    Pair p = makePair();
    ChaosSchedule schedule;
    ChaosRule rule;
    rule.kind = ChaosKind::ShortOp;
    rule.everyOps = 2;
    rule.maxBytes = 3;
    ASSERT_TRUE(schedule.add(rule).ok());
    p.client.setFaultInjector(std::make_shared<ChaosInjector>(schedule));

    std::string sent(4096, '\0');
    for (std::size_t i = 0; i < sent.size(); ++i)
        sent[i] = static_cast<char>(i * 131 % 251);
    ASSERT_TRUE(p.client.writeAll(sent.data(), sent.size()).ok());

    std::string got(sent.size(), '\0');
    ASSERT_TRUE(p.server.readAll(got.data(), got.size()).ok());
    EXPECT_EQ(got, sent);
}

TEST(ChaosSocket, DropSurfacesAsTypedChaosError)
{
    Pair p = makePair();
    ChaosSchedule schedule;
    ChaosRule rule;
    rule.kind = ChaosKind::Drop;
    rule.op = ChaosOp::Write;
    rule.everyOps = 1;
    ASSERT_TRUE(schedule.add(rule).ok());
    p.client.setFaultInjector(std::make_shared<ChaosInjector>(schedule));

    const char byte = 'x';
    const auto written = p.client.writeAll(&byte, 1);
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code, util::ErrorCode::IoError);
    EXPECT_EQ(written.error().message.rfind("chaos:", 0), 0u)
        << written.error().message;

    // The peer sees a clean EOF, not garbage.
    char in = 0;
    const auto read = p.server.readAll(&in, 1);
    EXPECT_FALSE(read.ok());
}

TEST(ChaosSocket, TruncateDeliversAPrefixThenCloses)
{
    Pair p = makePair();
    ChaosSchedule schedule;
    ChaosRule rule;
    rule.kind = ChaosKind::Truncate;
    rule.op = ChaosOp::Write;
    rule.everyOps = 1;
    rule.maxBytes = 5;
    ASSERT_TRUE(schedule.add(rule).ok());
    p.client.setFaultInjector(std::make_shared<ChaosInjector>(schedule));

    const std::string sent = "0123456789abcdef";
    const auto written = p.client.writeAll(sent.data(), sent.size());
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().message.rfind("chaos:", 0), 0u);

    // Exactly the prefix arrives, then EOF.
    std::string got(5, '\0');
    ASSERT_TRUE(p.server.readAll(got.data(), got.size()).ok());
    EXPECT_EQ(got, sent.substr(0, 5));
    char extra = 0;
    EXPECT_FALSE(p.server.readAll(&extra, 1).ok());
}

TEST(ChaosSocket, GlobalInjectorIsAdoptedByNewConnections)
{
    ChaosSchedule schedule;
    schedule.setSeed(7);
    ChaosRule rule;
    rule.kind = ChaosKind::ShortOp;
    rule.everyOps = 1; // every send/recv chunk is capped at 1 byte
    rule.maxBytes = 1;
    ASSERT_TRUE(schedule.add(rule).ok());
    auto installed = installGlobalChaosInjector(schedule);
    ASSERT_NE(installed, nullptr);

    {
        Pair p = makePair(); // both ends adopt the global injector
        const std::string sent = "global-chaos-roundtrip";
        ASSERT_TRUE(p.client.writeAll(sent.data(), sent.size()).ok());
        std::string got(sent.size(), '\0');
        ASSERT_TRUE(p.server.readAll(got.data(), got.size()).ok());
        EXPECT_EQ(got, sent);
        EXPECT_GT(installed->stats().shortOps, 0u);
    }
    util::setGlobalSocketFaultInjector(nullptr);
}

} // namespace
} // namespace ecolo::faults
