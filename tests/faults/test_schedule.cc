#include "faults/schedule.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ecolo;
using namespace ecolo::faults;

KeyValueConfig
parse(const std::string &text)
{
    std::istringstream iss(text);
    auto result = KeyValueConfig::tryParse(iss, "test.cfg");
    EXPECT_TRUE(result.ok());
    return result.take();
}

TEST(FaultKindNames, RoundTrip)
{
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const auto parsed = parseFaultKind(toString(kind));
        ASSERT_TRUE(parsed.ok()) << toString(kind);
        EXPECT_EQ(parsed.value(), kind);
    }
    EXPECT_FALSE(parseFaultKind("meteor_strike").ok());
}

TEST(FaultEvent, ActiveWindow)
{
    FaultEvent event;
    event.start = 100;
    event.duration = 10;
    EXPECT_FALSE(event.activeAt(99));
    EXPECT_TRUE(event.activeAt(100));
    EXPECT_TRUE(event.activeAt(109));
    EXPECT_FALSE(event.activeAt(110));

    event.duration = 0; // forever
    EXPECT_TRUE(event.activeAt(1'000'000));
}

TEST(FaultEvent, ValidationRejectsBadValues)
{
    FaultEvent event;
    event.start = -1;
    EXPECT_FALSE(event.validated().ok());

    event.start = 0;
    event.kind = FaultKind::CracCapacityLoss;
    event.magnitude = 1.0; // total loss not representable
    EXPECT_FALSE(event.validated().ok());

    event.magnitude = 0.5;
    EXPECT_TRUE(event.validated().ok());

    event.kind = FaultKind::ServerFailure;
    event.count = 0;
    EXPECT_FALSE(event.validated().ok());
}

TEST(FaultSchedule, FromKeyValueParsesEvents)
{
    const auto kv = parse("fault.0.type = crac_capacity_loss\n"
                          "fault.0.startDay = 2\n"
                          "fault.0.durationMinutes = 60\n"
                          "fault.0.magnitude = 0.3\n"
                          "fault.1.type = server_failure\n"
                          "fault.1.startMinute = 500\n"
                          "fault.1.servers = 3\n");
    auto schedule = FaultSchedule::fromKeyValue(kv);
    ASSERT_TRUE(schedule.ok());
    ASSERT_EQ(schedule.value().size(), 2u);
    EXPECT_EQ(schedule.value().events()[0].kind,
              FaultKind::CracCapacityLoss);
    EXPECT_EQ(schedule.value().events()[0].start, 2 * kMinutesPerDay);
    EXPECT_EQ(schedule.value().events()[1].count, 3u);
    EXPECT_EQ(schedule.value().firstStart(), 500);
    EXPECT_TRUE(kv.unconsumedKeys().empty());
}

TEST(FaultSchedule, FromKeyValueRejectsUnknownKind)
{
    const auto kv = parse("fault.0.type = gremlins\n");
    const auto schedule = FaultSchedule::fromKeyValue(kv);
    ASSERT_FALSE(schedule.ok());
    EXPECT_NE(schedule.error().message.find("unknown fault kind"),
              std::string::npos);
    // Diagnostics carry the source location of the offending key.
    EXPECT_NE(schedule.error().message.find("test.cfg"),
              std::string::npos);
}

TEST(FaultSchedule, FromKeyValueRejectsAmbiguousStart)
{
    const auto kv = parse("fault.0.type = bms_cutout\n"
                          "fault.0.startMinute = 10\n"
                          "fault.0.startDay = 1\n");
    const auto schedule = FaultSchedule::fromKeyValue(kv);
    ASSERT_FALSE(schedule.ok());
    EXPECT_NE(schedule.error().message.find("both startMinute and"),
              std::string::npos);
}

TEST(FaultSchedule, EmptyDocumentYieldsEmptySchedule)
{
    const auto kv = parse("# no faults here\n");
    auto schedule = FaultSchedule::fromKeyValue(kv);
    ASSERT_TRUE(schedule.ok());
    EXPECT_TRUE(schedule.value().empty());
    EXPECT_EQ(schedule.value().firstStart(), -1);
}

TEST(FaultSchedule, ActiveAtComposesOverlappingEvents)
{
    FaultSchedule schedule;
    FaultEvent a;
    a.kind = FaultKind::CracCapacityLoss;
    a.start = 0;
    a.duration = 100;
    a.magnitude = 0.5;
    ASSERT_TRUE(schedule.add(a).ok());
    FaultEvent b = a;
    b.magnitude = 0.2;
    ASSERT_TRUE(schedule.add(b).ok());
    FaultEvent c;
    c.kind = FaultKind::ServerFailure;
    c.start = 50;
    c.duration = 100;
    c.count = 4;
    ASSERT_TRUE(schedule.add(c).ok());

    const auto at10 = schedule.activeAt(10);
    EXPECT_DOUBLE_EQ(at10.coolingCapacityFactor, 0.5 * 0.8);
    EXPECT_EQ(at10.failedServers, 0u);
    EXPECT_TRUE(at10.any());

    const auto at120 = schedule.activeAt(120);
    EXPECT_DOUBLE_EQ(at120.coolingCapacityFactor, 1.0);
    EXPECT_EQ(at120.failedServers, 4u);

    const auto at200 = schedule.activeAt(200);
    EXPECT_FALSE(at200.any());
}

TEST(FaultSchedule, RandomizedIsSeedReproducible)
{
    RandomCampaignParams params;
    params.numEvents = 25;
    params.seed = 7;
    const auto one = FaultSchedule::randomized(params);
    const auto two = FaultSchedule::randomized(params);
    ASSERT_EQ(one.size(), 25u);
    ASSERT_EQ(one.size(), two.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one.events()[i].kind, two.events()[i].kind);
        EXPECT_EQ(one.events()[i].start, two.events()[i].start);
        EXPECT_EQ(one.events()[i].duration, two.events()[i].duration);
        EXPECT_EQ(one.events()[i].magnitude, two.events()[i].magnitude);
    }

    params.seed = 8;
    const auto other = FaultSchedule::randomized(params);
    bool differs = false;
    for (std::size_t i = 0; i < one.size(); ++i)
        differs = differs || one.events()[i].start != other.events()[i].start;
    EXPECT_TRUE(differs);
}

TEST(FaultSchedule, RandomizedEventsAreInRange)
{
    RandomCampaignParams params;
    params.numEvents = 50;
    params.horizonMinutes = 10000;
    params.maxMagnitude = 0.4;
    const auto schedule = FaultSchedule::randomized(params);
    for (const auto &event : schedule.events()) {
        EXPECT_TRUE(event.validated().ok());
        EXPECT_GE(event.start, 0);
        EXPECT_LT(event.start, 10000);
        EXPECT_GE(event.duration, 10);
        EXPECT_LT(event.magnitude, 0.4);
    }
}

} // namespace
