#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hh"
#include "faults/schedule.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;
using ecolo::faults::FaultEvent;
using ecolo::faults::FaultKind;

/** Per-minute fingerprint for bitwise run comparison. */
struct Fingerprint
{
    std::vector<double> metered, heat, inlet, supply, soc, benign;

    void record(const MinuteRecord &r)
    {
        metered.push_back(r.meteredTotal.value());
        heat.push_back(r.actualHeat.value());
        inlet.push_back(r.maxInlet.value());
        supply.push_back(r.supply.value());
        soc.push_back(r.batterySoc);
        benign.push_back(r.benignPower.value());
    }

    bool operator==(const Fingerprint &other) const
    {
        return metered == other.metered && heat == other.heat &&
               inlet == other.inlet && supply == other.supply &&
               soc == other.soc && benign == other.benign;
    }
};

Fingerprint
runFingerprint(const SimulationConfig &config, MinuteIndex minutes)
{
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    Fingerprint fp;
    sim.setMinuteCallback(
        [&](const MinuteRecord &r) { fp.record(r); });
    sim.run(minutes);
    return fp;
}

TEST(FaultInjection, NeutralScheduleIsBitIdenticalToEmpty)
{
    const auto baseline = SimulationConfig::paperDefault();

    // Zero-magnitude and not-yet-started events exercise every fault
    // hook with neutral values; the run must match the hook-free fast
    // path bit for bit.
    auto neutral = baseline;
    FaultEvent zero_crac;
    zero_crac.kind = FaultKind::CracCapacityLoss;
    zero_crac.magnitude = 0.0;
    ASSERT_TRUE(neutral.faultSchedule.add(zero_crac).ok());
    FaultEvent zero_fan;
    zero_fan.kind = FaultKind::CracFanDerate;
    zero_fan.magnitude = 0.0;
    ASSERT_TRUE(neutral.faultSchedule.add(zero_fan).ok());
    FaultEvent zero_fade;
    zero_fade.kind = FaultKind::BatteryFade;
    zero_fade.magnitude = 0.0;
    ASSERT_TRUE(neutral.faultSchedule.add(zero_fade).ok());
    FaultEvent future;
    future.kind = FaultKind::SideChannelNan;
    future.start = 10 * kMinutesPerYear;
    ASSERT_TRUE(neutral.faultSchedule.add(future).ok());

    EXPECT_TRUE(runFingerprint(baseline, 2 * kMinutesPerDay) ==
                runFingerprint(neutral, 2 * kMinutesPerDay));
}

TEST(FaultInjection, CracLossDegradesInsteadOfDying)
{
    auto config = SimulationConfig::paperDefault();
    FaultEvent crac;
    crac.kind = FaultKind::CracCapacityLoss;
    crac.start = 60;
    crac.duration = 0; // never repaired
    crac.magnitude = 0.55;
    ASSERT_TRUE(config.faultSchedule.add(crac).ok());

    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    MinuteIndex degraded_records = 0;
    double max_shed = 0.0;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.degraded)
            ++degraded_records;
        max_shed = std::max(max_shed, r.shedFraction);
    });
    sim.run(2 * kMinutesPerDay);

    // The operator's degraded overlay engages (capping / set-point raise
    // / shedding) and the site survives the fault without an outage.
    EXPECT_GT(sim.metrics().degradedMinutes(), 0);
    EXPECT_EQ(sim.metrics().degradedMinutes(), degraded_records);
    EXPECT_EQ(sim.metrics().outages(), 0u);
    EXPECT_GT(max_shed, 0.0);
    EXPECT_LE(max_shed, 0.5); // maxShedFraction cap
    EXPECT_DOUBLE_EQ(sim.activeFaults().coolingCapacityFactor, 0.45);
}

TEST(FaultInjection, SensorNanNeverReachesThePolicy)
{
    auto config = SimulationConfig::paperDefault();
    FaultEvent nan_fault;
    nan_fault.kind = FaultKind::SideChannelNan;
    nan_fault.start = 30;
    nan_fault.duration = 120;
    ASSERT_TRUE(config.faultSchedule.add(nan_fault).ok());

    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    MinuteIndex stale_records = 0;
    bool all_finite = true;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.estimateStale)
            ++stale_records;
        all_finite = all_finite && std::isfinite(r.batterySoc) &&
                     std::isfinite(r.maxInlet.value());
    });
    sim.run(300);

    EXPECT_EQ(stale_records, 120);
    EXPECT_TRUE(all_finite);
}

TEST(FaultInjection, SensorFaultTouchesOnlyTheEstimate)
{
    // Side-channel faults must be isolated to the attacker's estimate:
    // with a policy that never reads the estimate, the physical
    // trajectory is untouched bit for bit.
    auto config = SimulationConfig::paperDefault();
    FaultEvent stuck;
    stuck.kind = FaultKind::SideChannelStuck;
    stuck.start = 50;
    stuck.duration = 60;
    ASSERT_TRUE(config.faultSchedule.add(stuck).ok());

    Fingerprint healthy, faulted;
    {
        const auto base = SimulationConfig::paperDefault();
        Simulation sim(base, std::make_unique<StandbyPolicy>());
        sim.setMinuteCallback(
            [&](const MinuteRecord &r) { healthy.record(r); });
        sim.run(200);
    }
    {
        Simulation sim(config, std::make_unique<StandbyPolicy>());
        sim.setMinuteCallback(
            [&](const MinuteRecord &r) { faulted.record(r); });
        sim.run(200);
    }
    EXPECT_TRUE(healthy == faulted);
}

TEST(FaultInjection, ServerFailurePowersDownBenignServers)
{
    auto config = SimulationConfig::paperDefault();
    FaultEvent failure;
    failure.kind = FaultKind::ServerFailure;
    failure.start = 0;
    failure.count = 3;
    ASSERT_TRUE(config.faultSchedule.add(failure).ok());

    Simulation sim(config, std::make_unique<StandbyPolicy>());
    sim.run(10);

    const auto &metered = sim.lastServerMetered();
    ASSERT_EQ(metered.size(), config.numServers());
    // Benign servers fail from the highest benign index downward; the
    // attacker's servers (the last attackerNumServers slots) are not
    // the attacker's to lose here.
    std::size_t dark = 0;
    for (const auto &kw : metered)
        dark += kw.value() == 0.0;
    EXPECT_GE(dark, 3u);
    EXPECT_EQ(sim.activeFaults().failedServers, 3u);
}

TEST(FaultInjection, BmsCutoutFreezesTheBattery)
{
    auto config = SimulationConfig::paperDefault();
    FaultEvent cutout;
    cutout.kind = FaultKind::BmsCutout;
    cutout.start = 0;
    cutout.duration = 0;
    ASSERT_TRUE(config.faultSchedule.add(cutout).ok());

    // The myopic attacker drains the battery during attacks -- unless
    // the BMS refuses to discharge it.
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    double cutout_min_soc = 2.0;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        cutout_min_soc = std::min(cutout_min_soc, r.batterySoc);
    });
    sim.run(kMinutesPerDay);

    const auto base = SimulationConfig::paperDefault();
    Simulation free(base, makeMyopicPolicy(base, Kilowatts(7.4)));
    double free_min_soc = 2.0;
    free.setMinuteCallback([&](const MinuteRecord &r) {
        free_min_soc = std::min(free_min_soc, r.batterySoc);
    });
    free.run(kMinutesPerDay);

    EXPECT_LT(free_min_soc, 1.0);          // attacks really drained it
    EXPECT_DOUBLE_EQ(cutout_min_soc, 1.0); // the BMS never let go
}

TEST(FaultInjection, TraceGapFreezesBenignUtilization)
{
    auto config = SimulationConfig::paperDefault();
    FaultEvent gap;
    gap.kind = FaultKind::TraceGap;
    gap.start = 100;
    gap.duration = 50;
    ASSERT_TRUE(config.faultSchedule.add(gap).ok());

    Simulation sim(config, std::make_unique<StandbyPolicy>());
    std::vector<double> benign;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        benign.push_back(r.benignPower.value());
    });
    sim.run(200);

    // During the gap every tenant replays the same pre-gap minute, so
    // benign power is flat; after the gap the live trace resumes.
    for (MinuteIndex t = 101; t < 150; ++t)
        EXPECT_EQ(benign[static_cast<std::size_t>(t)], benign[100]);
    bool resumed_varies = false;
    for (MinuteIndex t = 151; t < 200; ++t)
        resumed_varies = resumed_varies ||
                         benign[static_cast<std::size_t>(t)] != benign[100];
    EXPECT_TRUE(resumed_varies);
}

TEST(FaultInjection, DegradedScenarioSurvivesUnderAttack)
{
    // Compound faults + an active attacker: the year must not abort.
    auto config = SimulationConfig::paperDefault();
    faults::RandomCampaignParams params;
    params.numEvents = 20;
    params.seed = 3;
    params.horizonMinutes = 30 * kMinutesPerDay;
    params.maxMagnitude = 0.5;
    config.faultSchedule = faults::FaultSchedule::randomized(params);

    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.run(30 * kMinutesPerDay);
    EXPECT_EQ(sim.now(), 30 * kMinutesPerDay);
}

} // namespace
