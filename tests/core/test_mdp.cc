/** @file Unit tests for the MDP state space. */

#include <gtest/gtest.h>

#include "core/mdp.hh"

namespace ecolo::core {
namespace {

TEST(StateSpace, DefaultDimensions)
{
    StateSpace space;
    EXPECT_EQ(space.batteryBins(), 11u);
    EXPECT_EQ(space.loadBins(), 16u);
    EXPECT_EQ(space.numStates(), 176u);
}

TEST(StateSpace, BatteryBinning)
{
    StateSpace space;
    EXPECT_EQ(space.batteryBinOf(0.0), 0u);
    EXPECT_EQ(space.batteryBinOf(1.0), 10u); // top bin, clamped
    EXPECT_EQ(space.batteryBinOf(0.5), 5u);
    EXPECT_EQ(space.batteryBinOf(-0.3), 0u);
    EXPECT_EQ(space.batteryBinOf(1.7), 10u);
}

TEST(StateSpace, LoadBinning)
{
    StateSpace space; // 4 .. 8.5 kW over 16 bins
    EXPECT_EQ(space.loadBinOf(Kilowatts(4.0)), 0u);
    EXPECT_EQ(space.loadBinOf(Kilowatts(8.5)), 15u);
    EXPECT_EQ(space.loadBinOf(Kilowatts(3.0)), 0u);   // clamped below
    EXPECT_EQ(space.loadBinOf(Kilowatts(10.0)), 15u); // clamped above
    const std::size_t mid = space.loadBinOf(Kilowatts(6.25));
    EXPECT_GE(mid, 7u);
    EXPECT_LE(mid, 8u);
}

TEST(StateSpace, IndexRoundTrip)
{
    StateSpace space;
    for (std::size_t b = 0; b < space.batteryBins(); ++b) {
        for (std::size_t l = 0; l < space.loadBins(); ++l) {
            const std::size_t idx = space.indexOfBins(b, l);
            EXPECT_LT(idx, space.numStates());
            EXPECT_EQ(space.batteryBinFromIndex(idx), b);
            EXPECT_EQ(space.loadBinFromIndex(idx), l);
        }
    }
}

TEST(StateSpace, BinCentersAreRepresentative)
{
    StateSpace space;
    for (std::size_t b = 0; b < space.batteryBins(); ++b)
        EXPECT_EQ(space.batteryBinOf(space.batteryBinCenter(b)), b);
    for (std::size_t l = 0; l < space.loadBins(); ++l)
        EXPECT_EQ(space.loadBinOf(space.loadBinCenter(l)), l);
}

TEST(StateSpace, IndexOfMatchesBins)
{
    StateSpace space;
    const std::size_t idx = space.indexOf(0.8, Kilowatts(7.4));
    EXPECT_EQ(space.batteryBinFromIndex(idx), space.batteryBinOf(0.8));
    EXPECT_EQ(space.loadBinFromIndex(idx),
              space.loadBinOf(Kilowatts(7.4)));
}

TEST(Actions, Names)
{
    EXPECT_STREQ(toString(AttackAction::Charge), "charge");
    EXPECT_STREQ(toString(AttackAction::Attack), "attack");
    EXPECT_STREQ(toString(AttackAction::Standby), "standby");
}

TEST(StateSpaceDeathTest, BadBins)
{
    StateSpace space;
    EXPECT_DEATH(space.indexOfBins(11, 0), "out of range");
    EXPECT_DEATH(space.loadBinCenter(16), "out of range");
}

} // namespace
} // namespace ecolo::core
