/**
 * @file
 * Lane-batch equivalence properties: a simulation advanced through
 * LaneBatchRunner must be *byte-identical* -- full saveState snapshot,
 * not just summary metrics -- to the same simulation advanced by its
 * own scalar run(), across workload sharing, the SoA thermal bank,
 * fault-driven divergence, degraded-mode transitions, heterogeneous
 * horizons, chunked runs, and checkpoint round-trips. These tests are
 * the enforcement of the runner's core contract; see
 * docs/performance.md ("Lane-batched execution").
 *
 * The *Parallel suite drives multiple groups through the thread pool
 * and runs under the ThreadSanitizer CI job (ctest -R 'Parallel').
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "core/lane_batch.hh"
#include "core/setup_cache.hh"
#include "faults/schedule.hh"
#include "util/state_io.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

/** Full mutable state as bytes (the strictest equality available). */
std::string
snapshot(const Simulation &sim)
{
    std::ostringstream os;
    util::StateWriter writer(os);
    sim.saveState(writer);
    return os.str();
}

struct MemberSpec
{
    const char *policy;
    double param;
    double batteryKwh;
    MinuteIndex horizon;
    bool faults;
};

SimulationConfig
memberConfig(const MemberSpec &spec,
             const std::shared_ptr<SetupCache> &cache)
{
    auto config = SimulationConfig::paperDefault();
    config.seed = 1234; // all members share one workload fingerprint
    config.batterySpec.capacity = KilowattHours(spec.batteryKwh);
    if (spec.faults) {
        // A cooling loss deep enough to push the operator through
        // degraded tiers (preventive capping diverges the lane), plus a
        // side-channel dropout overlapping it.
        EXPECT_TRUE(config.faultSchedule
                        .add({faults::FaultKind::CracCapacityLoss,
                              /*start=*/200, /*duration=*/240,
                              /*magnitude=*/0.45, /*count=*/0})
                        .ok());
        EXPECT_TRUE(config.faultSchedule
                        .add({faults::FaultKind::SideChannelDropout,
                              /*start=*/260, /*duration=*/120,
                              /*magnitude=*/0.0, /*count=*/0})
                        .ok());
    }
    config.setupCache = cache;
    return config;
}

std::unique_ptr<AttackPolicy>
memberPolicy(const MemberSpec &spec, const SimulationConfig &config)
{
    const std::string name = spec.policy;
    if (name == "random")
        return makeRandomPolicy(config, spec.param);
    if (name == "oneshot")
        return makeOneShotPolicy(config, Kilowatts(spec.param), 0);
    return makeMyopicPolicy(config, Kilowatts(spec.param));
}

TEST(LaneBatch, MixedCampaignByteIdenticalToScalar)
{
    // Policies that attack at different times, different battery sizes,
    // two members with active fault schedules, and heterogeneous
    // horizons: every divergence mechanism the runner masks.
    const MemberSpec specs[] = {
        {"myopic", 7.4, 0.2, 1440, false},
        {"myopic", 7.0, 0.3, 720, false},
        {"random", 0.08, 0.2, 1440, true},
        {"oneshot", 7.0, 0.25, 1080, false},
        {"myopic", 7.8, 0.2, 1440, true},
    };
    auto cache = std::make_shared<SetupCache>();

    std::vector<std::unique_ptr<Simulation>> lane_sims;
    std::vector<std::unique_ptr<Simulation>> scalar_sims;
    for (const auto &spec : specs) {
        const auto config = memberConfig(spec, cache);
        lane_sims.push_back(std::make_unique<Simulation>(
            config, memberPolicy(spec, config)));
        scalar_sims.push_back(std::make_unique<Simulation>(
            config, memberPolicy(spec, config)));
    }

    LaneBatchRunner runner;
    for (std::size_t i = 0; i < lane_sims.size(); ++i)
        runner.add(*lane_sims[i], specs[i].horizon);
    runner.runAll();
    ASSERT_TRUE(runner.finished());

    for (std::size_t i = 0; i < scalar_sims.size(); ++i) {
        scalar_sims[i]->run(specs[i].horizon);
        EXPECT_EQ(lane_sims[i]->now(), specs[i].horizon);
        EXPECT_EQ(snapshot(*lane_sims[i]), snapshot(*scalar_sims[i]))
            << "lane-batched member " << i
            << " diverged from its scalar run";
    }

    // The fast paths must actually have engaged, or this test proves
    // nothing about them.
    EXPECT_EQ(runner.stats().groups, 1u);
    EXPECT_GE(runner.stats().bankedLanes, 2u);
    EXPECT_GT(runner.stats().sharedWorkloadSlots, 0u);
}

TEST(LaneBatch, ChunkedRunsCheckpointCompatibleWithScalar)
{
    const MemberSpec specs[] = {
        {"myopic", 7.4, 0.2, 600, false},
        {"random", 0.08, 0.2, 600, true},
        {"myopic", 7.1, 0.2, 480, false},
    };
    auto cache = std::make_shared<SetupCache>();

    std::vector<std::unique_ptr<Simulation>> lane_sims;
    std::vector<std::unique_ptr<Simulation>> scalar_sims;
    for (const auto &spec : specs) {
        const auto config = memberConfig(spec, cache);
        lane_sims.push_back(std::make_unique<Simulation>(
            config, memberPolicy(spec, config)));
        scalar_sims.push_back(std::make_unique<Simulation>(
            config, memberPolicy(spec, config)));
    }

    LaneBatchRunner runner;
    for (std::size_t i = 0; i < lane_sims.size(); ++i)
        runner.add(*lane_sims[i], specs[i].horizon);

    // Advance in ragged chunks; at every boundary each lane must be a
    // normal scalar simulation whose full state matches the scalar
    // reference advanced by the same amount (the bank scattered back,
    // shared-workload tenants restored).
    std::string mid_state;
    const MinuteIndex chunk = 97;
    MinuteIndex advanced = 0;
    while (!runner.finished()) {
        runner.run(chunk);
        advanced += chunk;
        for (std::size_t i = 0; i < scalar_sims.size(); ++i) {
            const MinuteIndex target =
                std::min(advanced, specs[i].horizon);
            scalar_sims[i]->run(target - scalar_sims[i]->now());
            EXPECT_EQ(snapshot(*lane_sims[i]), snapshot(*scalar_sims[i]))
                << "member " << i << " diverged after " << advanced
                << " chunked minutes";
        }
        if (mid_state.empty())
            mid_state = snapshot(*lane_sims[1]);
    }

    // Checkpoint round-trip from a mid-run boundary: restore into a
    // fresh simulation, continue scalar, and land on the same bytes as
    // the lane-batched run.
    const auto config = memberConfig(specs[1], cache);
    Simulation resumed(config, memberPolicy(specs[1], config));
    std::istringstream is(mid_state);
    util::StateReader reader(is);
    resumed.loadState(reader);
    ASSERT_TRUE(reader.ok());
    resumed.run(specs[1].horizon - resumed.now());
    EXPECT_EQ(snapshot(resumed), snapshot(*lane_sims[1]));
}

TEST(LaneBatchParallel, MultiGroupCampaignMatchesScalar)
{
    // More members than a group holds: the runner forms multiple groups
    // and dispatches them over the thread pool (this suite runs under
    // the ThreadSanitizer CI job). Heterogeneous horizons keep lanes
    // finishing at different slots inside both groups.
    auto cache = std::make_shared<SetupCache>();
    std::vector<MemberSpec> specs;
    for (int i = 0; i < 10; ++i) {
        specs.push_back({"myopic", 6.8 + 0.1 * i, 0.2,
                         i % 2 == 0 ? MinuteIndex(240) : MinuteIndex(360),
                         i == 3});
    }

    std::vector<std::unique_ptr<Simulation>> lane_sims;
    for (const auto &spec : specs) {
        const auto config = memberConfig(spec, cache);
        lane_sims.push_back(std::make_unique<Simulation>(
            config, memberPolicy(spec, config)));
    }

    LaneBatchRunner runner;
    for (std::size_t i = 0; i < lane_sims.size(); ++i)
        runner.add(*lane_sims[i], specs[i].horizon);
    runner.runAll();
    ASSERT_TRUE(runner.finished());
    EXPECT_EQ(runner.stats().groups, 2u);

    // Spot-check members from both groups against scalar references.
    for (std::size_t i : {std::size_t(0), std::size_t(3),
                          std::size_t(9)}) {
        const auto config = memberConfig(specs[i], cache);
        Simulation reference(config, memberPolicy(specs[i], config));
        reference.run(specs[i].horizon);
        EXPECT_EQ(snapshot(*lane_sims[i]), snapshot(reference))
            << "multi-group member " << i;
    }
}

TEST(LaneBatchParallel, SetupCacheIsBitIdenticalAccelerator)
{
    // A cached construction must behave exactly like an uncached one:
    // same traces (the rng fork is consumed either way), same scale
    // factor, same thermal artifacts.
    auto config = SimulationConfig::paperDefault();
    config.seed = 4242;
    Simulation plain(config, makeMyopicPolicy(config, Kilowatts(7.4)));

    config.setupCache = std::make_shared<SetupCache>();
    Simulation cached(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    Simulation cached2(config, makeMyopicPolicy(config, Kilowatts(7.4)));

    const auto counters = config.setupCache->counters();
    EXPECT_EQ(counters.traceMisses, 1u);
    EXPECT_EQ(counters.traceHits, 1u);
    EXPECT_EQ(counters.factorizationMisses, 1u);
    EXPECT_EQ(counters.factorizationHits, 1u);

    plain.run(360);
    cached.run(360);
    cached2.run(360);
    EXPECT_EQ(snapshot(plain), snapshot(cached));
    EXPECT_EQ(snapshot(plain), snapshot(cached2));
}

} // namespace
