/** @file Unit tests for the markdown campaign report. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/engine.hh"
#include "core/report.hh"

namespace ecolo::core {
namespace {

TEST(Report, ContainsAllSections)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.runDays(7.0);

    ReportInputs inputs{"myopic", 7.4, 7.0};
    std::ostringstream oss;
    writeMarkdownReport(oss, config, sim.metrics(), inputs);
    const std::string out = oss.str();

    EXPECT_NE(out.find("# EdgeTherm campaign report"), std::string::npos);
    EXPECT_NE(out.find("## Site"), std::string::npos);
    EXPECT_NE(out.find("## Outcome"), std::string::npos);
    EXPECT_NE(out.find("## Per-tenant damage"), std::string::npos);
    EXPECT_NE(out.find("## Inlet temperature distribution"),
              std::string::npos);
    EXPECT_NE(out.find("## Annualized cost estimate"), std::string::npos);
    EXPECT_NE(out.find("## Site threat assessment"), std::string::npos);
    EXPECT_NE(out.find("**myopic**"), std::string::npos);
}

TEST(Report, QuietRunOmitsLatencyRow)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    sim.runDays(2.0);
    ReportInputs inputs{"standby", 0.0, 2.0};
    std::ostringstream oss;
    writeMarkdownReport(oss, config, sim.metrics(), inputs);
    EXPECT_EQ(oss.str().find("norm. 95p latency in emergencies"),
              std::string::npos);
}

TEST(Report, FileWrapperWrites)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    sim.run(200);
    const std::string path =
        ::testing::TempDir() + "/edgetherm_report_test.md";
    saveMarkdownReport(path, config, sim.metrics(),
                       ReportInputs{"standby", 0.0, 0.14});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_EQ(first_line, "# EdgeTherm campaign report");
}

TEST(ReportDeathTest, UnwritablePathFatal)
{
    auto config = SimulationConfig::paperDefault();
    SimulationMetrics metrics;
    EXPECT_DEATH(saveMarkdownReport("/nonexistent/dir/report.md", config,
                                    metrics, ReportInputs{}),
                 "cannot open");
}

} // namespace
} // namespace ecolo::core
