/**
 * @file Unit tests for the batch Q-learner on small synthetic MDPs where
 * the optimal behaviour is known.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rl/batch_q.hh"

namespace ecolo::core {
namespace {

/** Identity post-state: reduces batch learning to plain bookkeeping. */
std::size_t
identityPost(std::size_t s, int)
{
    return s;
}

TEST(BatchQ, TablesStartAtZero)
{
    BatchQLearning learner(4, 3, identityPost);
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_DOUBLE_EQ(learner.postValue(s), 0.0);
        for (int a = 0; a < 3; ++a)
            EXPECT_DOUBLE_EQ(learner.qValue(s, a), 0.0);
    }
}

TEST(BatchQ, QTracksMeanReward)
{
    LearnerParams params;
    params.minLearningRate = 0.05;
    BatchQLearning learner(1, 2, identityPost, params);
    for (int i = 0; i < 2000; ++i)
        learner.update(0, 0, 5.0, 0);
    EXPECT_NEAR(learner.qValue(0, 0), 5.0, 0.1);
    EXPECT_DOUBLE_EQ(learner.qValue(0, 1), 0.0); // untouched action
}

TEST(BatchQ, LearnsToPreferRewardingAction)
{
    // Two actions in one state: action 1 pays 1.0, action 0 pays 0.
    BatchQLearning learner(1, 2, identityPost);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        learner.update(0, 0, 0.0, 0);
        learner.update(0, 1, 1.0, 0);
    }
    EXPECT_EQ(learner.greedyAction(0), 1);
}

TEST(BatchQ, PostStateValuePropagatesFutureReward)
{
    // Chain: state 0 --action 0--> post/next state 1 where the only
    // action pays 10. The post-state value of 1 must grow, making
    // action 0 attractive in state 0 despite zero immediate reward.
    auto post = [](std::size_t s, int a) -> std::size_t {
        if (s == 0 && a == 0)
            return 1;
        return s;
    };
    BatchQLearning learner(2, 2, post);
    for (int i = 0; i < 3000; ++i) {
        learner.update(1, 0, 10.0, 1); // state 1 pays 10 forever
        learner.update(0, 0, 0.0, 1);  // transition into state 1
        learner.update(0, 1, 0.2, 0);  // small immediate alternative
    }
    EXPECT_GT(learner.postValue(1), 5.0);
    EXPECT_EQ(learner.greedyAction(0), 0); // future beats small immediate
}

TEST(BatchQ, ActionScoreCombinesQAndPostValue)
{
    auto post = [](std::size_t, int a) -> std::size_t {
        return a == 0 ? 1 : 0;
    };
    BatchQLearning learner(2, 2, post);
    learner.setQValue(0, 0, 1.0);
    learner.setQValue(0, 1, 1.0);
    learner.setPostValue(1, 10.0);
    learner.setPostValue(0, 0.0);
    EXPECT_NEAR(learner.actionScore(0, 0), 1.0 + 0.99 * 10.0, 1e-12);
    EXPECT_NEAR(learner.actionScore(0, 1), 1.0, 1e-12);
    EXPECT_EQ(learner.greedyAction(0), 0);
}

TEST(BatchQ, LearningRateScheduleDecays)
{
    BatchQLearning learner(1, 2, identityPost);
    const double day1 = learner.learningRate();
    EXPECT_DOUBLE_EQ(day1, 1.0); // 1 / 1^0.85
    learner.advanceDay();
    const double day2 = learner.learningRate();
    EXPECT_NEAR(day2, 1.0 / std::pow(2.0, 0.85), 1e-12);
    for (int d = 0; d < 400; ++d)
        learner.advanceDay();
    EXPECT_DOUBLE_EQ(learner.learningRate(), 0.02); // floor
}

TEST(BatchQ, EpsilonDecays)
{
    BatchQLearning learner(1, 2, identityPost);
    const double start = learner.epsilon();
    for (int d = 0; d < 30; ++d)
        learner.advanceDay();
    EXPECT_LT(learner.epsilon(), start / 4.0);
}

TEST(BatchQ, ExplorationVisitsAllActions)
{
    LearnerParams params;
    params.epsilon0 = 1.0; // always explore
    BatchQLearning learner(1, 3, identityPost, params);
    Rng rng(5);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 3000; ++i)
        ++counts[learner.selectAction(0, rng, true)];
    for (int c : counts)
        EXPECT_GT(c, 500);
}

TEST(BatchQ, NoExplorationIsGreedy)
{
    BatchQLearning learner(1, 3, identityPost);
    learner.setQValue(0, 2, 5.0);
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(learner.selectAction(0, rng, false), 2);
}

TEST(VanillaQ, LearnsSimpleChain)
{
    // Two states: action 1 in state 0 gives reward 1 and stays; action 0
    // gives 0. Vanilla learner should also figure this out.
    VanillaQLearning learner(2, 2);
    for (int i = 0; i < 1000; ++i) {
        learner.update(0, 0, 0.0, 0);
        learner.update(0, 1, 1.0, 0);
    }
    EXPECT_EQ(learner.greedyAction(0), 1);
    EXPECT_GT(learner.qValue(0, 1), learner.qValue(0, 0));
}

TEST(VanillaQ, BootstrapsFutureValue)
{
    VanillaQLearning learner(2, 1);
    for (int i = 0; i < 4000; ++i) {
        learner.update(1, 0, 1.0, 1); // absorbing rewarding state
        learner.update(0, 0, 0.0, 1);
    }
    // Q(0) ~ gamma * Q(1) and Q(1) ~ 1/(1-gamma) (discounted chain).
    EXPECT_GT(learner.qValue(0, 0), 10.0);
    EXPECT_GT(learner.qValue(1, 0), learner.qValue(0, 0));
}

TEST(BatchQDeathTest, RangeChecks)
{
    BatchQLearning learner(2, 2, identityPost);
    EXPECT_DEATH(learner.update(5, 0, 0.0, 0), "out of range");
    EXPECT_DEATH(learner.update(0, 7, 0.0, 0), "out of range");
    EXPECT_DEATH(learner.qValue(0, 9), "out of range");
}

} // namespace
} // namespace ecolo::core

#include <sstream>

#include "core/engine.hh"

namespace ecolo::core {
namespace {

TEST(BatchQPersistence, SaveLoadRoundTrip)
{
    BatchQLearning original(4, 3, identityPost);
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        original.update(rng.uniformInt(4), (int)rng.uniformInt(3),
                        rng.normal(), rng.uniformInt(4));
    original.advanceDay();
    original.advanceDay();

    std::stringstream buffer;
    original.save(buffer);

    BatchQLearning restored(4, 3, identityPost);
    restored.load(buffer);
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_DOUBLE_EQ(restored.postValue(s), original.postValue(s));
        for (int a = 0; a < 3; ++a)
            EXPECT_DOUBLE_EQ(restored.qValue(s, a),
                             original.qValue(s, a));
    }
    EXPECT_EQ(restored.daysElapsed(), original.daysElapsed());
    EXPECT_DOUBLE_EQ(restored.learningRate(), original.learningRate());
}

TEST(BatchQPersistence, GreedyPolicySurvivesRoundTrip)
{
    BatchQLearning original(6, 3, identityPost);
    original.setQValue(2, 1, 5.0);
    original.setQValue(4, 2, 3.0);
    std::stringstream buffer;
    original.save(buffer);
    BatchQLearning restored(6, 3, identityPost);
    restored.load(buffer);
    for (std::size_t s = 0; s < 6; ++s)
        EXPECT_EQ(restored.greedyAction(s), original.greedyAction(s));
}

TEST(BatchQPersistenceDeathTest, RejectsBadFiles)
{
    BatchQLearning learner(2, 2, identityPost);
    std::stringstream garbage("not a table");
    EXPECT_DEATH(learner.load(garbage), "not a batch-Q");

    BatchQLearning other(3, 2, identityPost);
    std::stringstream mismatched;
    other.save(mismatched);
    EXPECT_DEATH(learner.load(mismatched), "mismatch");

    std::stringstream truncated("batchq v1 2 2 1\n0.5\n");
    EXPECT_DEATH(learner.load(truncated), "truncated");
}

TEST(ForesightedPersistence, TrainSaveReplay)
{
    auto config = SimulationConfig::paperDefault();
    auto trained_owner = makeForesightedPolicy(config, 14.0);
    ForesightedPolicy *trained = trained_owner.get();
    // A few days of training, then snapshot the tables.
    Simulation sim(config, std::move(trained_owner));
    sim.runDays(5.0);
    std::stringstream tables;
    trained->saveTables(tables);

    auto replay = makeForesightedPolicy(config, 14.0, false);
    replay->loadTables(tables);
    // The replayed policy's greedy map matches the trained one.
    const auto &space = trained->stateSpace();
    for (std::size_t bb = 0; bb < space.batteryBins(); ++bb) {
        for (std::size_t lb = 0; lb < space.loadBins(); ++lb) {
            const double soc = space.batteryBinCenter(bb);
            const Kilowatts load = space.loadBinCenter(lb);
            EXPECT_EQ(replay->greedyActionFor(soc, load),
                      trained->greedyActionFor(soc, load));
        }
    }
}

} // namespace
} // namespace ecolo::core
