/** @file Unit tests for the cost model (Section VI-C). */

#include <gtest/gtest.h>

#include "core/cost.hh"

namespace ecolo::core {
namespace {

SimulationMetrics
yearWithEmergencies(double emergency_fraction, double norm_perf)
{
    SimulationMetrics metrics;
    const auto total = kMinutesPerYear;
    const auto emergency_minutes =
        static_cast<MinuteIndex>(emergency_fraction *
                                 static_cast<double>(total));
    for (MinuteIndex m = 0; m < total; ++m) {
        MinuteRecord r;
        r.cappingActive = m < emergency_minutes;
        r.meteredTotal = Kilowatts(6.0);
        r.benignPower = Kilowatts(5.6); // attacker draws 0.4 kW
        metrics.recordMinute(r, Celsius(27.0), Celsius(27.3));
        if (r.cappingActive)
            metrics.recordEmergencyPerf(norm_perf);
    }
    return metrics;
}

TEST(CostModel, AttackerSubscriptionAndServers)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    SimulationMetrics metrics; // empty run: fixed costs only
    const auto cost = model.attackerAnnualCost(config, metrics);
    // 0.8 kW * $150/kW/month * 12.
    EXPECT_NEAR(cost.subscriptionUsd, 1440.0, 1e-9);
    // 4 servers * $4500 / 4-year amortization.
    EXPECT_NEAR(cost.serversUsd, 4500.0, 1e-9);
    EXPECT_DOUBLE_EQ(cost.energyUsd, 0.0);
}

TEST(CostModel, AttackerEnergyScalesWithConsumption)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    const auto metrics = yearWithEmergencies(0.0, 1.0);
    const auto cost = model.attackerAnnualCost(config, metrics);
    // 0.4 kW year-round = 3504 kWh at $0.1.
    EXPECT_NEAR(cost.energyUsd, 350.4, 1.0);
    EXPECT_NEAR(cost.total(),
                cost.subscriptionUsd + cost.energyUsd + cost.serversUsd,
                1e-9);
}

TEST(CostModel, BenignCostNearPaperBallpark)
{
    // Foresighted's default outcome: ~2.6% of the year in emergencies at
    // ~3x normalized latency should land near the paper's $60+K/year.
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    const auto metrics = yearWithEmergencies(0.030, 4.0);
    const auto cost = model.benignAnnualCost(config, metrics);
    EXPECT_GT(cost.degradationUsd, 40000.0);
    EXPECT_LT(cost.degradationUsd, 90000.0);
}

TEST(CostModel, NoEmergenciesNoCost)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    const auto metrics = yearWithEmergencies(0.0, 1.0);
    const auto cost = model.benignAnnualCost(config, metrics);
    EXPECT_DOUBLE_EQ(cost.degradationUsd, 0.0);
    EXPECT_DOUBLE_EQ(cost.outageUsd, 0.0);
}

TEST(CostModel, CostGrowsWithEmergencies)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    const auto low = model.benignAnnualCost(
        config, yearWithEmergencies(0.01, 3.0));
    const auto high = model.benignAnnualCost(
        config, yearWithEmergencies(0.03, 3.0));
    EXPECT_NEAR(high.degradationUsd / low.degradationUsd, 3.0, 0.1);
}

TEST(CostModel, OutagesAreExpensive)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    SimulationMetrics metrics;
    for (MinuteIndex m = 0; m < kMinutesPerYear; ++m) {
        MinuteRecord r;
        r.outage = m < 60; // one hour-long outage
        r.meteredTotal = Kilowatts(0.0);
        r.benignPower = Kilowatts(0.0);
        metrics.recordMinute(r, Celsius(27.0), Celsius(27.0));
    }
    const auto cost = model.benignAnnualCost(config, metrics);
    EXPECT_NEAR(cost.outageUsd, 60000.0, 1.0);
}

TEST(CostModel, EmptyMetricsSafe)
{
    const auto config = SimulationConfig::paperDefault();
    CostModel model;
    SimulationMetrics metrics;
    EXPECT_DOUBLE_EQ(model.benignAnnualCost(config, metrics).total(), 0.0);
}

} // namespace
} // namespace ecolo::core
