/** @file Unit tests for the operator's emergency protocol state machine. */

#include <gtest/gtest.h>

#include "core/operator.hh"

namespace ecolo::core {
namespace {

ColoOperator::Params
defaults()
{
    return ColoOperator::Params{Celsius(32.0), 2, 5, Celsius(45.0), 60};
}

TEST(Operator, StaysNormalWhenCool)
{
    ColoOperator op(defaults());
    for (int m = 0; m < 100; ++m) {
        const auto cmd = op.observeMinute(Celsius(28.0));
        EXPECT_FALSE(cmd.capServers);
        EXPECT_FALSE(cmd.outage);
    }
    EXPECT_EQ(op.state(), OperatorState::Normal);
    EXPECT_EQ(op.emergenciesDeclared(), 0u);
}

TEST(Operator, RequiresSustainedViolation)
{
    ColoOperator op(defaults());
    // One hot minute, then cool: no emergency.
    op.observeMinute(Celsius(33.0));
    EXPECT_EQ(op.state(), OperatorState::Pending);
    op.observeMinute(Celsius(30.0));
    EXPECT_EQ(op.state(), OperatorState::Normal);
    EXPECT_EQ(op.emergenciesDeclared(), 0u);
}

TEST(Operator, DeclaresEmergencyAfterTwoMinutes)
{
    ColoOperator op(defaults());
    op.observeMinute(Celsius(33.0));
    const auto cmd = op.observeMinute(Celsius(33.0));
    EXPECT_EQ(op.state(), OperatorState::Emergency);
    EXPECT_TRUE(cmd.capServers);
    EXPECT_EQ(op.emergenciesDeclared(), 1u);
}

TEST(Operator, CappingLastsFiveMinutes)
{
    ColoOperator op(defaults());
    op.observeMinute(Celsius(33.0));
    op.observeMinute(Celsius(33.0)); // declared; minute 1 of capping
    int capped_minutes = 1;
    // Remain hot-ish; capping rides through its fixed window.
    while (op.state() == OperatorState::Emergency && capped_minutes < 20) {
        op.observeMinute(Celsius(30.0));
        ++capped_minutes;
    }
    EXPECT_EQ(capped_minutes, 5);
    EXPECT_EQ(op.state(), OperatorState::Normal);
    EXPECT_EQ(op.emergencyMinutes(), 5);
}

TEST(Operator, RepeatedEmergenciesCount)
{
    ColoOperator op(defaults());
    for (int round = 0; round < 3; ++round) {
        // Heat until declared.
        while (op.state() != OperatorState::Emergency)
            op.observeMinute(Celsius(33.0));
        // Cool down through the capping window.
        while (op.state() == OperatorState::Emergency)
            op.observeMinute(Celsius(28.0));
    }
    EXPECT_EQ(op.emergenciesDeclared(), 3u);
}

TEST(Operator, ShutdownAtFortyFive)
{
    ColoOperator op(defaults());
    const auto cmd = op.observeMinute(Celsius(45.0));
    EXPECT_TRUE(cmd.outage);
    EXPECT_EQ(op.state(), OperatorState::Outage);
    EXPECT_EQ(op.outages(), 1u);
}

TEST(Operator, ShutdownOverridesEmergency)
{
    ColoOperator op(defaults());
    op.observeMinute(Celsius(33.0));
    op.observeMinute(Celsius(33.0));
    EXPECT_EQ(op.state(), OperatorState::Emergency);
    op.observeMinute(Celsius(46.0));
    EXPECT_EQ(op.state(), OperatorState::Outage);
}

TEST(Operator, OutageLastsRestartWindow)
{
    ColoOperator op(defaults());
    op.observeMinute(Celsius(45.0));
    int outage_minutes = 1;
    while (op.state() == OperatorState::Outage && outage_minutes < 200) {
        op.observeMinute(Celsius(27.0));
        ++outage_minutes;
    }
    EXPECT_EQ(outage_minutes, 60);
    EXPECT_EQ(op.outageMinutes(), 60);
    EXPECT_EQ(op.state(), OperatorState::Normal);
}

TEST(Operator, ResetClearsEverything)
{
    ColoOperator op(defaults());
    op.observeMinute(Celsius(45.0));
    op.reset();
    EXPECT_EQ(op.state(), OperatorState::Normal);
    EXPECT_EQ(op.outages(), 0u);
    EXPECT_EQ(op.outageMinutes(), 0);
}

TEST(Operator, StateNames)
{
    EXPECT_STREQ(toString(OperatorState::Normal), "normal");
    EXPECT_STREQ(toString(OperatorState::Emergency), "emergency");
    EXPECT_STREQ(toString(OperatorState::Outage), "outage");
    EXPECT_STREQ(toString(OperatorState::Pending), "pending");
}

TEST(OperatorDeathTest, BadParams)
{
    auto params = defaults();
    params.sustainMinutes = 0;
    EXPECT_DEATH(ColoOperator{params}, "at least one minute");
    params = defaults();
    params.emergencyThreshold = Celsius(50.0);
    EXPECT_DEATH(ColoOperator{params}, "below shutdown");
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

ColoOperator::Params
adaptiveParams()
{
    ColoOperator::Params params;
    params.adaptiveCapping = true;
    return params;
}

TEST(AdaptiveCapping, GentleCapForMarginalOvershoot)
{
    ColoOperator op(adaptiveParams());
    op.observeMinute(Celsius(32.1));
    const auto cmd = op.observeMinute(Celsius(32.1));
    ASSERT_TRUE(cmd.capServers);
    ASSERT_TRUE(cmd.capLevel.has_value());
    // Barely above threshold -> near the gentle end (0.15 kW).
    EXPECT_GT(cmd.capLevel->value(), 0.14);
}

TEST(AdaptiveCapping, HardCapForSevereOvershoot)
{
    ColoOperator op(adaptiveParams());
    op.observeMinute(Celsius(38.0));
    const auto cmd = op.observeMinute(Celsius(38.0));
    ASSERT_TRUE(cmd.capServers);
    ASSERT_TRUE(cmd.capLevel.has_value());
    // 6 K overshoot saturates at the hard end (0.10 kW).
    EXPECT_NEAR(cmd.capLevel->value(), 0.10, 1e-9);
}

TEST(AdaptiveCapping, DisabledMeansNoCapLevel)
{
    ColoOperator op(ColoOperator::Params{});
    op.observeMinute(Celsius(38.0));
    const auto cmd = op.observeMinute(Celsius(38.0));
    ASSERT_TRUE(cmd.capServers);
    EXPECT_FALSE(cmd.capLevel.has_value());
}

TEST(AdaptiveCapping, LevelScalesMonotonically)
{
    double previous = 1.0;
    for (double temp : {32.5, 33.5, 34.5, 36.0}) {
        ColoOperator op(adaptiveParams());
        op.observeMinute(Celsius(temp));
        const auto cmd = op.observeMinute(Celsius(temp));
        ASSERT_TRUE(cmd.capLevel.has_value());
        EXPECT_LE(cmd.capLevel->value(), previous);
        previous = cmd.capLevel->value();
    }
}

} // namespace
} // namespace ecolo::core
