/** @file Unit tests for the attack policies. */

#include <gtest/gtest.h>

#include "core/policies.hh"

namespace ecolo::core {
namespace {

AttackObservation
obs(double soc, double load_kw, bool capping = false, bool outage = false)
{
    AttackObservation o;
    o.batterySoc = soc;
    o.estimatedLoad = Kilowatts(load_kw);
    o.cappingActive = capping;
    o.outage = outage;
    o.inletTemperature = Celsius(27.0);
    return o;
}

TEST(StandbyPolicy, NeverAttacks)
{
    StandbyPolicy policy;
    for (double load = 4.0; load < 9.0; load += 0.5)
        EXPECT_NE(policy.decide(obs(1.0, load)), AttackAction::Attack);
}

TEST(StandbyPolicy, ChargesWhenDepleted)
{
    StandbyPolicy policy;
    EXPECT_EQ(policy.decide(obs(0.4, 6.0)), AttackAction::Charge);
    EXPECT_EQ(policy.decide(obs(1.0, 6.0)), AttackAction::Standby);
}

TEST(RandomPolicy, AttackFrequencyMatchesProbability)
{
    RandomPolicy policy(0.25, 0.05, Rng(1));
    int attacks = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        attacks += policy.decide(obs(1.0, 5.0)) == AttackAction::Attack;
    EXPECT_NEAR(static_cast<double>(attacks) / n, 0.25, 0.02);
}

TEST(RandomPolicy, NeedsBatteryEnergy)
{
    RandomPolicy policy(1.0, 0.10, Rng(2));
    EXPECT_NE(policy.decide(obs(0.05, 8.0)), AttackAction::Attack);
    EXPECT_EQ(policy.decide(obs(0.5, 8.0)), AttackAction::Attack);
}

TEST(RandomPolicy, CompliesWithCapping)
{
    RandomPolicy policy(1.0, 0.0, Rng(3));
    EXPECT_NE(policy.decide(obs(1.0, 8.0, /*capping=*/true)),
              AttackAction::Attack);
}

TEST(RandomPolicy, IsLoadOblivious)
{
    // Statistically identical behaviour at low and high load.
    RandomPolicy policy(0.5, 0.0, Rng(4));
    int low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        low += policy.decide(obs(1.0, 4.5)) == AttackAction::Attack;
        high += policy.decide(obs(1.0, 8.0)) == AttackAction::Attack;
    }
    EXPECT_NEAR(static_cast<double>(low) / 10000.0,
                static_cast<double>(high) / 10000.0, 0.03);
}

TEST(MyopicPolicy, ThresholdGatesAttack)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09);
    EXPECT_EQ(policy.decide(obs(1.0, 7.5)), AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(1.0, 7.3)), AttackAction::Attack);
}

TEST(MyopicPolicy, BatteryGatesAttack)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09);
    EXPECT_NE(policy.decide(obs(0.01, 8.0)), AttackAction::Attack);
}

TEST(MyopicPolicy, RechargesBelowThreshold)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09);
    EXPECT_EQ(policy.decide(obs(0.5, 6.0)), AttackAction::Charge);
    EXPECT_EQ(policy.decide(obs(1.0, 6.0)), AttackAction::Standby);
}

TEST(MyopicPolicy, CompliesWithCappingAndOutage)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09);
    EXPECT_NE(policy.decide(obs(1.0, 8.0, true)), AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(1.0, 8.0, false, true)),
              AttackAction::Attack);
    EXPECT_FALSE(policy.ignoresCapping());
}

ForesightedPolicy::Params
foresightedParams(double weight = 14.0)
{
    ForesightedPolicy::Params params;
    params.weight = weight;
    params.capacity = Kilowatts(8.0);
    params.attackLoad = Kilowatts(1.0);
    params.learner.epsilon0 = 0.0; // deterministic for unit tests
    return params;
}

TEST(ForesightedPolicy, WarmStartYieldsThresholdStructure)
{
    ForesightedPolicy policy(foresightedParams(), Rng(5));
    policy.warmStart();
    // With a full battery: attack at high load, not at low load.
    EXPECT_EQ(policy.greedyActionFor(0.95, Kilowatts(8.2)),
              AttackAction::Attack);
    EXPECT_NE(policy.greedyActionFor(0.95, Kilowatts(5.0)),
              AttackAction::Attack);
    // With an empty battery: never attack.
    EXPECT_NE(policy.greedyActionFor(0.0, Kilowatts(8.2)),
              AttackAction::Attack);
}

TEST(ForesightedPolicy, CompliesWithCapping)
{
    ForesightedPolicy policy(foresightedParams(), Rng(6));
    policy.warmStart();
    EXPECT_NE(policy.decide(obs(1.0, 8.2, /*capping=*/true)),
              AttackAction::Attack);
}

TEST(ForesightedPolicy, LearnsFromRewardFeedback)
{
    // Reward attacking at high load, punish attacking at low load (via
    // temperature responses), and check the learned structure.
    auto params = foresightedParams(14.0);
    params.learner.minLearningRate = 0.05;
    ForesightedPolicy policy(params, Rng(7));

    AttackObservation high = obs(1.0, 8.2);
    AttackObservation high_hot = high;
    high_hot.inletTemperature = Celsius(28.5); // attack worked: +1.5 K
    AttackObservation low = obs(1.0, 5.0);
    AttackObservation low_cold = low;
    low_cold.inletTemperature = Celsius(27.0); // attack wasted

    for (int i = 0; i < 800; ++i) {
        policy.feedback(high, AttackAction::Attack, high_hot);
        policy.feedback(high, AttackAction::Standby, high);
        policy.feedback(low, AttackAction::Attack, low_cold);
        policy.feedback(low, AttackAction::Standby, low);
        policy.feedback(low, AttackAction::Charge, low);
    }
    EXPECT_EQ(policy.greedyActionFor(1.0, Kilowatts(8.2)),
              AttackAction::Attack);
    EXPECT_NE(policy.greedyActionFor(1.0, Kilowatts(5.0)),
              AttackAction::Attack);
}

TEST(ForesightedPolicy, DayBoundaryAdvancesSchedules)
{
    ForesightedPolicy policy(foresightedParams(), Rng(8));
    const double before = policy.learner().learningRate();
    policy.onDayBoundary(1);
    EXPECT_LT(policy.learner().learningRate(), before);
}

TEST(OneShotPolicy, WaitsForFullBatteryAndHighLoad)
{
    OneShotPolicy policy(Kilowatts(7.0), 0);
    EXPECT_NE(policy.decide(obs(0.8, 7.5)), AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(1.0, 6.0)), AttackAction::Attack);
    EXPECT_EQ(policy.decide(obs(1.0, 7.5)), AttackAction::Attack);
    EXPECT_TRUE(policy.fired());
}

TEST(OneShotPolicy, RespectsArmDelay)
{
    OneShotPolicy policy(Kilowatts(7.0), 100);
    AttackObservation o = obs(1.0, 7.5);
    o.time = 50;
    EXPECT_NE(policy.decide(o), AttackAction::Attack);
    o.time = 100;
    EXPECT_EQ(policy.decide(o), AttackAction::Attack);
}

TEST(OneShotPolicy, PressesThroughCappingUntilExhausted)
{
    OneShotPolicy policy(Kilowatts(7.0), 0);
    EXPECT_EQ(policy.decide(obs(1.0, 7.5)), AttackAction::Attack);
    EXPECT_TRUE(policy.ignoresCapping());
    // Capping is in force but the strike continues.
    EXPECT_EQ(policy.decide(obs(0.5, 7.5, /*capping=*/true)),
              AttackAction::Attack);
    // Battery empty: done for good.
    EXPECT_EQ(policy.decide(obs(0.0, 7.5)), AttackAction::Standby);
    EXPECT_TRUE(policy.exhausted());
    EXPECT_EQ(policy.decide(obs(1.0, 8.0)), AttackAction::Standby);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(MyopicPolicy, BurstHysteresis)
{
    // Starts a burst only with a >= 50% reserve, then continues down to
    // the one-minute floor.
    MyopicPolicy policy(Kilowatts(7.4), 0.09, 0.5);
    EXPECT_NE(policy.decide(obs(0.3, 8.0)), AttackAction::Attack);
    EXPECT_EQ(policy.decide(obs(0.6, 8.0)), AttackAction::Attack);
    // Mid-burst the battery drains below the start threshold: continue.
    EXPECT_EQ(policy.decide(obs(0.2, 8.0)), AttackAction::Attack);
    EXPECT_EQ(policy.decide(obs(0.10, 8.0)), AttackAction::Attack);
    // Below the continue floor: the burst ends...
    EXPECT_NE(policy.decide(obs(0.05, 8.0)), AttackAction::Attack);
    // ...and does not restart until the reserve is rebuilt.
    EXPECT_NE(policy.decide(obs(0.3, 8.0)), AttackAction::Attack);
    EXPECT_EQ(policy.decide(obs(0.55, 8.0)), AttackAction::Attack);
}

TEST(MyopicPolicy, BurstEndsWhenLoadDrops)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09, 0.5);
    EXPECT_EQ(policy.decide(obs(1.0, 8.0)), AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(0.9, 7.0)), AttackAction::Attack);
    // Restarting needs the start reserve again (0.4 < 0.5).
    EXPECT_NE(policy.decide(obs(0.4, 8.0)), AttackAction::Attack);
}

TEST(MyopicPolicy, CappingEndsBurst)
{
    MyopicPolicy policy(Kilowatts(7.4), 0.09, 0.5);
    EXPECT_EQ(policy.decide(obs(1.0, 8.0)), AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(0.8, 8.0, /*capping=*/true)),
              AttackAction::Attack);
    // After capping, the burst must re-qualify against the start reserve.
    EXPECT_NE(policy.decide(obs(0.3, 8.0)), AttackAction::Attack);
}

TEST(MyopicPolicyDeathTest, BadHysteresisRejected)
{
    EXPECT_DEATH(MyopicPolicy(Kilowatts(7.4), 0.6, 0.5),
                 "continue threshold");
}

TEST(VanillaRlPolicy, LearnsTheSameContrast)
{
    ForesightedPolicy::Params params;
    params.weight = 14.0;
    params.baselineInlet = Celsius(27.5);
    params.learner.epsilon0 = 0.0;
    params.learner.minLearningRate = 0.05;
    VanillaRlPolicy policy(params, Rng(3));

    AttackObservation high = obs(1.0, 8.2);
    AttackObservation high_hot = high;
    high_hot.inletTemperature = Celsius(29.5);
    AttackObservation low = obs(1.0, 5.0);

    for (int i = 0; i < 800; ++i) {
        policy.feedback(high, AttackAction::Attack, high_hot);
        policy.feedback(high, AttackAction::Standby, high);
        policy.feedback(low, AttackAction::Attack, low);
        policy.feedback(low, AttackAction::Standby, low);
    }
    EXPECT_EQ(policy.decide(high), AttackAction::Attack);
    EXPECT_NE(policy.decide(low), AttackAction::Attack);
}

TEST(VanillaRlPolicy, CompliesWithProtocol)
{
    ForesightedPolicy::Params params;
    VanillaRlPolicy policy(params, Rng(4));
    EXPECT_NE(policy.decide(obs(1.0, 8.2, /*capping=*/true)),
              AttackAction::Attack);
    EXPECT_NE(policy.decide(obs(1.0, 8.2, false, /*outage=*/true)),
              AttackAction::Attack);
}

} // namespace
} // namespace ecolo::core
