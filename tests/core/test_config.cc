/** @file Unit tests for the simulation configuration (Table I). */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace ecolo::core {
namespace {

TEST(Config, PaperDefaultMatchesTableOne)
{
    const auto config = SimulationConfig::paperDefault();
    EXPECT_DOUBLE_EQ(config.capacity.value(), 8.0);
    EXPECT_EQ(config.numBenignTenants + 1, 4u); // 4 tenants incl. attacker
    EXPECT_EQ(config.numServers(), 40u);
    EXPECT_EQ(config.layout.numRacks, 2u);
    EXPECT_DOUBLE_EQ(config.attackerSubscription.value(), 0.8);
    EXPECT_DOUBLE_EQ(config.batterySpec.capacity.value(), 0.2);
    EXPECT_DOUBLE_EQ(config.attackLoad.value(), 1.0);
    EXPECT_DOUBLE_EQ(config.batterySpec.maxChargeRate.value(), 0.2);
    EXPECT_DOUBLE_EQ(config.emergencyThreshold.value(), 32.0);
    EXPECT_DOUBLE_EQ(config.shutdownThreshold.value(), 45.0);
    EXPECT_DOUBLE_EQ(config.cooling.supplySetPoint.value(), 27.0);
    EXPECT_DOUBLE_EQ(config.averageUtilization, 0.75);
}

TEST(Config, DerivedQuantities)
{
    const auto config = SimulationConfig::paperDefault();
    EXPECT_EQ(config.numBenignServers(), 36u);
    EXPECT_EQ(config.serversPerBenignTenant(), 12u);
    EXPECT_DOUBLE_EQ(config.benignSubscription().value(), 2.4);
}

TEST(Config, PrototypeScaleIsConsistent)
{
    const auto config = SimulationConfig::prototypeScale();
    EXPECT_EQ(config.numServers(), 14u);
    EXPECT_DOUBLE_EQ(config.capacity.value(), 3.0);
    EXPECT_DOUBLE_EQ(config.attackLoad.value(), 1.5);
    EXPECT_NO_FATAL_FAILURE(config.validate());
}

TEST(ConfigDeathTest, InvalidConfigsRejected)
{
    auto bad = SimulationConfig::paperDefault();
    bad.attackerNumServers = 40;
    EXPECT_DEATH(bad.validate(), "attacker server count");

    bad = SimulationConfig::paperDefault();
    bad.attackerNumServers = 5; // 35 benign servers / 3 tenants
    EXPECT_DEATH(bad.validate(), "divide evenly");

    bad = SimulationConfig::paperDefault();
    bad.batterySpec.maxDischargeRate = Kilowatts(0.5);
    EXPECT_DEATH(bad.validate(), "discharge rate");

    bad = SimulationConfig::paperDefault();
    bad.emergencyThreshold = Celsius(50.0);
    EXPECT_DEATH(bad.validate(), "below shutdown");

    bad = SimulationConfig::paperDefault();
    bad.perServerCap = Kilowatts(0.25);
    EXPECT_DEATH(bad.validate(), "below server peak");

    bad = SimulationConfig::paperDefault();
    bad.averageUtilization = 1.5;
    EXPECT_DEATH(bad.validate(), "utilization");
}

} // namespace
} // namespace ecolo::core
