/**
 * @file
 * Heap-allocation regression guard for the steady-state slot loop.
 *
 * The per-minute step is the hot path of every year-long campaign; the
 * streaming thermal kernel, the side-channel sample arena and the fleet
 * scratch rows exist so that, once warmed up, stepping the simulation
 * touches the allocator zero times per slot. This binary replaces the
 * global operator new with a counting wrapper (which is why these tests
 * live in their own executable) and asserts the count stays flat across
 * hundreds of simulated minutes -- in the healthy steady state and in
 * degraded mode with active cooling and sensor faults.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "core/lane_batch.hh"
#include "core/setup_cache.hh"
#include "faults/schedule.hh"

namespace {

std::atomic<long long> g_news{0};

void *
countedAlloc(std::size_t size)
{
    ++g_news;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++g_news;
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : align) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_news;
    return std::malloc(size ? size : 1);
}
void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_news;
    return std::malloc(size ? size : 1);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace {

using namespace ecolo;
using namespace ecolo::core;

long long
allocationsDuring(Simulation &sim, MinuteIndex minutes)
{
    const long long before = g_news.load(std::memory_order_relaxed);
    sim.run(minutes);
    return g_news.load(std::memory_order_relaxed) - before;
}

TEST(ZeroAllocation, SteadyStateSlotLoopIsAllocationFree)
{
    auto config = SimulationConfig::paperDefault();
    config.seed = 99;
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));

    // Warmup sizes every scratch arena (thermal ring, side-channel
    // sample buffer, rise vectors) and fills the thermal horizon.
    sim.run(30);

    EXPECT_EQ(allocationsDuring(sim, 360), 0)
        << "the healthy steady-state slot loop touched the heap";
}

TEST(ZeroAllocation, DegradedModeSlotLoopIsAllocationFree)
{
    auto config = SimulationConfig::paperDefault();
    config.seed = 99;
    // Open-ended cooling + sensor faults: the measured window runs
    // entirely inside degraded operation with a faulted side channel.
    ASSERT_TRUE(config.faultSchedule
                    .add({faults::FaultKind::CracCapacityLoss,
                          /*start=*/20, /*duration=*/0,
                          /*magnitude=*/0.3, /*count=*/0})
                    .ok());
    ASSERT_TRUE(config.faultSchedule
                    .add({faults::FaultKind::SideChannelDropout,
                          /*start=*/25, /*duration=*/0,
                          /*magnitude=*/0.0, /*count=*/0})
                    .ok());
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));

    // Warmup crosses both fault onsets (and any one-time transition
    // logging) before the measurement starts.
    sim.run(60);

    EXPECT_EQ(allocationsDuring(sim, 360), 0)
        << "the degraded-mode slot loop touched the heap";
}

TEST(ZeroAllocation, LaneBatchSlotLoopIsAllocationFree)
{
    // Four fingerprint-equal simulations packed into one group exercise
    // the full lane-batch fast path -- shared benign workload, SoA
    // thermal bank, masked finish bookkeeping -- which must be as
    // allocation-free as the scalar loop it replaces.
    auto cache = std::make_shared<SetupCache>();
    auto config = SimulationConfig::paperDefault();
    config.seed = 99;
    config.setupCache = cache;

    std::vector<std::unique_ptr<Simulation>> sims;
    for (double threshold : {7.2, 7.4, 7.6, 7.8}) {
        sims.push_back(std::make_unique<Simulation>(
            config, makeMyopicPolicy(config, Kilowatts(threshold))));
    }

    LaneBatchRunner runner;
    for (auto &sim : sims)
        runner.add(*sim, 30 + 360);

    // Warmup: forms the groups, sizes the bank arena and every per-lane
    // scratch buffer, and fills the thermal horizon.
    runner.run(30);

    const long long before = g_news.load(std::memory_order_relaxed);
    runner.run(360);
    const long long during =
        g_news.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(during, 0)
        << "the lane-batched slot loop touched the heap";
    EXPECT_TRUE(runner.finished());
}

TEST(ZeroAllocation, ServeStyleBatchedLaneLoopIsAllocationFree)
{
    // The serving tier's micro-batch executor drives the same runner in
    // statusEveryMinutes-sized chunks with a per-lane cancel check
    // installed (the scheduler token poll). Neither the chunked
    // re-entry, nor the armed cancel branch, nor retiring a cancelled
    // lane mid-measurement may touch the heap.
    auto cache = std::make_shared<SetupCache>();
    auto config = SimulationConfig::paperDefault();
    config.seed = 99;
    config.setupCache = cache;

    std::atomic<bool> cancelled[4];
    for (std::atomic<bool> &flag : cancelled)
        flag.store(false, std::memory_order_relaxed);
    std::vector<std::unique_ptr<Simulation>> sims;
    int lane = 0;
    for (double threshold : {7.2, 7.4, 7.6, 7.8}) {
        sims.push_back(std::make_unique<Simulation>(
            config, makeMyopicPolicy(config, Kilowatts(threshold))));
        std::atomic<bool> *flag = &cancelled[lane++];
        sims.back()->setCancelCheck([flag] {
            return flag->load(std::memory_order_relaxed);
        });
    }

    LaneBatchRunner runner;
    for (auto &sim : sims)
        runner.add(*sim, 30 + 360);
    runner.run(30); // warmup: groups formed, arenas sized

    const long long before = g_news.load(std::memory_order_relaxed);
    for (int chunk = 0; chunk < 6 && !runner.finished(); ++chunk) {
        if (chunk == 2) // masked divergence: one lane retires early
            cancelled[1].store(true, std::memory_order_relaxed);
        runner.run(60);
    }
    const long long during =
        g_news.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(during, 0)
        << "the serve-style batched lane loop touched the heap";
    EXPECT_TRUE(runner.finished());
    EXPECT_TRUE(runner.cancelled(1));
    EXPECT_EQ(sims[1]->now(), 30 + 120);
    EXPECT_EQ(sims[0]->now(), 30 + 360);
}

} // namespace
