/** @file Integration tests for the coordinated fleet attack. */

#include <gtest/gtest.h>

#include "core/fleet.hh"
#include "util/parallel.hh"

namespace ecolo::core {
namespace {

SimulationConfig
strikeConfig()
{
    auto config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    return config;
}

TEST(Fleet, CoordinatedStrikeTakesDownMultipleSites)
{
    // Arm 4 sites for the afternoon peak of day 1; a permissive gate
    // (6.5 kW) lets every site fire near the strike minute.
    const MinuteIndex strike = kMinutesPerDay + 14 * 60;
    FleetSimulation fleet(strikeConfig(), 4, strike, Kilowatts(6.5));
    fleet.run(2 * kMinutesPerDay);

    const FleetResult &r = fleet.result();
    EXPECT_EQ(r.numSites, 4u);
    EXPECT_GE(r.sitesWithOutage, 3u);
    EXPECT_GE(r.maxSimultaneousOutages, 2u);
    EXPECT_GT(r.wideAreaInterruptionMinutes, 0);
    EXPECT_GE(r.firstOutageDelay, 0);
    EXPECT_LT(r.firstOutageDelay, 120); // strikes land near the arm time
}

TEST(Fleet, SitesAreIndependent)
{
    // Different derived seeds => different traces => different thermal
    // histories (outage *duration* is fixed by the restart window, so
    // compare a trace-dependent continuous quantity instead).
    const MinuteIndex strike = kMinutesPerDay + 14 * 60;
    FleetSimulation fleet(strikeConfig(), 3, strike, Kilowatts(6.8));
    fleet.run(2 * kMinutesPerDay);
    // (the hottest inlet saturates at the same physical ceiling during
    // an outage run, so compare the mean rise instead)
    const double rise0 = fleet.site(0).metrics().inletRise().mean();
    const double rise1 = fleet.site(1).metrics().inletRise().mean();
    const double rise2 = fleet.site(2).metrics().inletRise().mean();
    EXPECT_FALSE(rise0 == rise1 && rise1 == rise2);
}

TEST(Fleet, NoStrikeBeforeArmTime)
{
    const MinuteIndex strike = 5 * kMinutesPerDay;
    FleetSimulation fleet(strikeConfig(), 2, strike, Kilowatts(6.5));
    fleet.run(kMinutesPerDay); // well before the arm time
    EXPECT_EQ(fleet.result().sitesWithOutage, 0u);
    EXPECT_EQ(fleet.sitesDownNow(), 0u);
}

TEST(Fleet, ResultAccumulatesAcrossRuns)
{
    // Strike at the day-1 afternoon peak, split across two run() calls
    // that straddle it.
    const MinuteIndex strike = kMinutesPerDay + 14 * 60;
    FleetSimulation fleet(strikeConfig(), 2, strike, Kilowatts(6.5));
    fleet.run(strike - 60);          // up to just before the strike
    EXPECT_EQ(fleet.result().sitesWithOutage, 0u);
    fleet.run(6 * 60);               // through the strike window
    EXPECT_GE(fleet.result().sitesWithOutage, 1u);
}

TEST(FleetParallel, BitIdenticalToSerial)
{
    // The threaded run must reproduce the serial sweep exactly: same
    // aggregate result and the same per-site trajectories, bit for bit.
    const MinuteIndex strike = kMinutesPerDay + 14 * 60;

    util::ThreadPool::setGlobalThreads(1);
    FleetSimulation serial(strikeConfig(), 4, strike, Kilowatts(6.5));
    serial.run(2 * kMinutesPerDay);
    util::ThreadPool::setGlobalThreads(4);
    FleetSimulation parallel(strikeConfig(), 4, strike, Kilowatts(6.5));
    // Split across two calls to also cover mid-run state carry-over.
    parallel.run(kMinutesPerDay);
    parallel.run(kMinutesPerDay);
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());

    const FleetResult &a = serial.result();
    const FleetResult &b = parallel.result();
    EXPECT_EQ(a.numSites, b.numSites);
    EXPECT_EQ(a.sitesWithOutage, b.sitesWithOutage);
    EXPECT_EQ(a.maxSimultaneousOutages, b.maxSimultaneousOutages);
    EXPECT_EQ(a.wideAreaInterruptionMinutes, b.wideAreaInterruptionMinutes);
    EXPECT_EQ(a.firstOutageDelay, b.firstOutageDelay);
    ASSERT_EQ(a.siteOutageMinutes.size(), b.siteOutageMinutes.size());
    for (std::size_t s = 0; s < a.siteOutageMinutes.size(); ++s) {
        EXPECT_EQ(a.siteOutageMinutes[s], b.siteOutageMinutes[s]);
        EXPECT_DOUBLE_EQ(serial.site(s).metrics().inletRise().mean(),
                         parallel.site(s).metrics().inletRise().mean());
        EXPECT_DOUBLE_EQ(serial.site(s).metrics().inletRise().max(),
                         parallel.site(s).metrics().inletRise().max());
    }
}

TEST(FleetDeathTest, EmptyFleetRejected)
{
    EXPECT_DEATH(FleetSimulation(strikeConfig(), 0, 0, Kilowatts(6.5)),
                 "at least one site");
}

} // namespace
} // namespace ecolo::core
