#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "core/fleet.hh"
#include "core/version.hh"
#include "util/state_io.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

SimulationConfig
smallConfig()
{
    auto config = SimulationConfig::paperDefault();
    config.seed = 1234;
    return config;
}

std::vector<double>
tailTrajectory(Simulation &sim, MinuteIndex minutes)
{
    std::vector<double> values;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        values.push_back(r.maxInlet.value());
        values.push_back(r.meteredTotal.value());
        values.push_back(r.batterySoc);
    });
    sim.run(minutes);
    return values;
}

TEST(Checkpoint, SimulationRestoreContinuesBitIdentically)
{
    const auto config = smallConfig();

    // Uninterrupted reference run: 2 days, record the second day.
    Simulation reference(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    reference.run(kMinutesPerDay);
    const auto expected = tailTrajectory(reference, kMinutesPerDay);

    // Interrupted run: 1 day, checkpoint, "crash", restore, second day.
    std::stringstream checkpoint;
    {
        Simulation first(config, makeMyopicPolicy(config, Kilowatts(7.4)));
        first.run(kMinutesPerDay);
        util::StateWriter writer(checkpoint);
        writer.header();
        first.saveState(writer);
        ASSERT_TRUE(writer.good());
    }
    Simulation resumed(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    util::StateReader reader(checkpoint);
    reader.header();
    resumed.loadState(reader);
    ASSERT_TRUE(reader.ok()) << reader.status().error().describe();
    EXPECT_EQ(resumed.now(), kMinutesPerDay);

    const auto actual = tailTrajectory(resumed, kMinutesPerDay);
    EXPECT_EQ(actual, expected);
}

TEST(Checkpoint, MetricsSurviveTheRoundTrip)
{
    const auto config = smallConfig();
    Simulation reference(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    reference.run(2 * kMinutesPerDay);

    std::stringstream checkpoint;
    {
        Simulation first(config, makeMyopicPolicy(config, Kilowatts(7.4)));
        first.run(kMinutesPerDay);
        util::StateWriter writer(checkpoint);
        writer.header();
        first.saveState(writer);
    }
    Simulation resumed(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    util::StateReader reader(checkpoint);
    reader.header();
    resumed.loadState(reader);
    ASSERT_TRUE(reader.ok());
    resumed.run(kMinutesPerDay);

    const auto &a = reference.metrics();
    const auto &b = resumed.metrics();
    EXPECT_EQ(a.emergencies(), b.emergencies());
    EXPECT_EQ(a.outages(), b.outages());
    EXPECT_EQ(a.attackMinutes(), b.attackMinutes());
    EXPECT_EQ(a.degradedMinutes(), b.degradedMinutes());
    EXPECT_EQ(a.inletRise().mean(), b.inletRise().mean());
    EXPECT_EQ(a.maxInlet().max(), b.maxInlet().max());
}

TEST(Checkpoint, RestoreIntoWrongConfigFails)
{
    const auto config = smallConfig();
    std::stringstream checkpoint;
    {
        Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
        sim.run(100);
        util::StateWriter writer(checkpoint);
        writer.header();
        sim.saveState(writer);
    }

    auto other = smallConfig();
    other.layout.serversPerRack = 10; // 20 servers instead of 40
    other.attackerNumServers = 2;
    Simulation resumed(other, makeMyopicPolicy(other, Kilowatts(7.4)));
    util::StateReader reader(checkpoint);
    reader.header();
    resumed.loadState(reader);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error().code, util::ErrorCode::StateError);
}

class SimCheckpointFileTest : public ::testing::Test
{
  protected:
    // Suffix with the test name: ctest schedules each test as its own
    // process, so a shared fixed path races with a sibling's TearDown
    // under -j.
    std::string path_ =
        ::testing::TempDir() + "edgetherm_sim_checkpoint_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".bin";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SimCheckpointFileTest, SaveAndLoadHelpersRoundTrip)
{
    const auto config = smallConfig();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.run(500);
    const auto saved = saveSimulationCheckpoint(path_, sim, "myopic");
    ASSERT_TRUE(saved.ok()) << saved.error().describe();

    Simulation resumed(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    const auto loaded =
        loadSimulationCheckpoint(path_, resumed, "myopic");
    ASSERT_TRUE(loaded.ok()) << loaded.error().describe();
    EXPECT_EQ(resumed.now(), 500);
}

TEST_F(SimCheckpointFileTest, SchemaVersionFlipInvalidatesCheckpoint)
{
    // Satellite regression: a checkpoint stamped with a different
    // engine schema version must be refused on load -- resuming a
    // trajectory across behaviorally different builds would silently
    // produce garbage continuations.
    const auto config = smallConfig();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.run(100);
    const auto saved = saveSimulationCheckpoint(
        path_, sim, "myopic", kEngineSchemaVersion + 1);
    ASSERT_TRUE(saved.ok()) << saved.error().describe();

    Simulation resumed(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    const auto loaded =
        loadSimulationCheckpoint(path_, resumed, "myopic");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::StateError);
    EXPECT_NE(loaded.error().message.find("schema version"),
              std::string::npos);
}

TEST_F(SimCheckpointFileTest, PolicyNameMismatchRejected)
{
    const auto config = smallConfig();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.run(100);
    ASSERT_TRUE(saveSimulationCheckpoint(path_, sim, "myopic").ok());

    Simulation resumed(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    const auto loaded =
        loadSimulationCheckpoint(path_, resumed, "standby");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::StateError);
}

class FleetCheckpointTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kSites = 3;
    static constexpr MinuteIndex kStrike = 300;

    FleetSimulation makeFleet() const
    {
        return FleetSimulation(smallConfig(), kSites, kStrike,
                               Kilowatts(5.0));
    }

    std::string path_ =
        ::testing::TempDir() + "edgetherm_fleet_checkpoint_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".bin";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(FleetCheckpointTest, KillAndResumeMatchesUninterrupted)
{
    auto reference = makeFleet();
    reference.run(1000);

    {
        auto first = makeFleet();
        first.run(400);
        const auto saved = first.saveCheckpoint(path_);
        ASSERT_TRUE(saved.ok()) << saved.error().describe();
        // `first` goes out of scope here: the "crash".
    }

    auto resumed = makeFleet();
    const auto loaded = resumed.loadCheckpoint(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.error().describe();
    EXPECT_EQ(resumed.now(), 400);
    resumed.run(600);

    const auto &a = reference.result();
    const auto &b = resumed.result();
    EXPECT_EQ(a.sitesWithOutage, b.sitesWithOutage);
    EXPECT_EQ(a.maxSimultaneousOutages, b.maxSimultaneousOutages);
    EXPECT_EQ(a.wideAreaInterruptionMinutes,
              b.wideAreaInterruptionMinutes);
    EXPECT_EQ(a.firstOutageDelay, b.firstOutageDelay);
    EXPECT_EQ(a.siteOutageMinutes, b.siteOutageMinutes);
    for (std::size_t s = 0; s < kSites; ++s) {
        EXPECT_EQ(reference.site(s).metrics().outages(),
                  resumed.site(s).metrics().outages());
        EXPECT_EQ(reference.site(s).metrics().maxInlet().max(),
                  resumed.site(s).metrics().maxInlet().max());
    }
}

TEST_F(FleetCheckpointTest, CheckpointWriteIsAtomic)
{
    auto fleet = makeFleet();
    fleet.run(50);
    ASSERT_TRUE(fleet.saveCheckpoint(path_).ok());
    // No .tmp litter once the rename landed.
    std::ifstream tmp(path_ + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST_F(FleetCheckpointTest, FingerprintMismatchRejected)
{
    auto fleet = makeFleet();
    fleet.run(100);
    ASSERT_TRUE(fleet.saveCheckpoint(path_).ok());

    FleetSimulation other(smallConfig(), kSites + 1, kStrike,
                          Kilowatts(5.0));
    const auto loaded = other.loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::StateError);
    EXPECT_NE(loaded.error().message.find("fingerprint mismatch"),
              std::string::npos);
}

TEST_F(FleetCheckpointTest, SchemaVersionFlipInvalidatesCheckpoint)
{
    auto fleet = makeFleet();
    fleet.run(100);
    ASSERT_TRUE(
        fleet.saveCheckpoint(path_, core::kEngineSchemaVersion + 1).ok());

    auto other = makeFleet();
    const auto loaded = other.loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::StateError);
    EXPECT_NE(loaded.error().message.find("schema version"),
              std::string::npos);
}

TEST_F(FleetCheckpointTest, MissingFileIsAnIoError)
{
    auto fleet = makeFleet();
    const auto loaded =
        fleet.loadCheckpoint(::testing::TempDir() + "does_not_exist.bin");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::IoError);
}

} // namespace
