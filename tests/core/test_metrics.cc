/** @file Unit tests for the metrics accumulator. */

#include <gtest/gtest.h>

#include "core/metrics.hh"

namespace ecolo::core {
namespace {

MinuteRecord
record(bool attack, bool capping, double battery_kw = 1.0)
{
    MinuteRecord r;
    r.action = attack ? AttackAction::Attack : AttackAction::Standby;
    r.attackBatteryPower = Kilowatts(attack ? battery_kw : 0.0);
    r.cappingActive = capping;
    r.meteredTotal = Kilowatts(6.0);
    r.benignPower = Kilowatts(5.5);
    r.maxInlet = Celsius(28.0);
    return r;
}

TEST(Metrics, CountsAttackAndEmergencyMinutes)
{
    SimulationMetrics metrics;
    for (int m = 0; m < 60; ++m)
        metrics.recordMinute(record(m < 15, m < 6), Celsius(27.0),
                             Celsius(27.5));
    EXPECT_EQ(metrics.minutes(), 60);
    EXPECT_EQ(metrics.attackMinutes(), 15);
    EXPECT_EQ(metrics.emergencyMinutes(), 6);
    EXPECT_DOUBLE_EQ(metrics.emergencyFraction(), 0.1);
}

TEST(Metrics, AttackWithDeadBatteryNotCounted)
{
    SimulationMetrics metrics;
    metrics.recordMinute(record(true, false, /*battery_kw=*/0.0),
                         Celsius(27.0), Celsius(27.5));
    EXPECT_EQ(metrics.attackMinutes(), 0);
}

TEST(Metrics, AttackHoursPerDay)
{
    SimulationMetrics metrics;
    // One full day with 90 attack minutes = 1.5 h/day.
    for (int m = 0; m < kMinutesPerDay; ++m)
        metrics.recordMinute(record(m < 90, false), Celsius(27.0),
                             Celsius(27.2));
    EXPECT_NEAR(metrics.attackHoursPerDay(), 1.5, 1e-9);
}

TEST(Metrics, EmergencyHoursPerYearExtrapolates)
{
    SimulationMetrics metrics;
    for (int m = 0; m < kMinutesPerDay; ++m)
        metrics.recordMinute(record(false, m < 144), Celsius(27.0),
                             Celsius(27.2));
    // 10% of the day -> 876 h/year.
    EXPECT_NEAR(metrics.emergencyHoursPerYear(), 876.0, 1.0);
}

TEST(Metrics, InletRiseTracked)
{
    SimulationMetrics metrics;
    metrics.recordMinute(record(false, false), Celsius(27.0),
                         Celsius(28.5));
    metrics.recordMinute(record(false, false), Celsius(27.0),
                         Celsius(27.5));
    EXPECT_NEAR(metrics.inletRise().mean(), 1.0, 1e-12);
}

TEST(Metrics, EnergyAccounting)
{
    SimulationMetrics metrics;
    // Attacker grid draw = metered - benign = 0.5 kW for 60 minutes.
    for (int m = 0; m < 60; ++m)
        metrics.recordMinute(record(true, false), Celsius(27.0),
                             Celsius(27.2));
    EXPECT_NEAR(metrics.attackerGridEnergy().value(), 0.5, 1e-9);
    EXPECT_NEAR(metrics.batteryEnergyDelivered().value(), 1.0, 1e-9);
}

TEST(Metrics, EmergencyPerfSamples)
{
    SimulationMetrics metrics;
    metrics.recordEmergencyPerf(3.0);
    metrics.recordEmergencyPerf(4.0);
    EXPECT_DOUBLE_EQ(metrics.emergencyPerf().mean(), 3.5);
    EXPECT_EQ(metrics.emergencyPerf().count(), 2u);
}

TEST(Metrics, EventCounts)
{
    SimulationMetrics metrics;
    metrics.noteEmergencyDeclared();
    metrics.noteEmergencyDeclared();
    metrics.noteOutage();
    EXPECT_EQ(metrics.emergencies(), 2u);
    EXPECT_EQ(metrics.outages(), 1u);
}

TEST(Metrics, EmptyMetricsSafe)
{
    SimulationMetrics metrics;
    EXPECT_DOUBLE_EQ(metrics.emergencyFraction(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.attackHoursPerDay(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.emergencyHoursPerYear(), 0.0);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Metrics, InletHistogramTracksDistribution)
{
    SimulationMetrics metrics;
    for (int m = 0; m < 100; ++m) {
        MinuteRecord r;
        r.maxInlet = Celsius(m < 90 ? 27.5 : 33.0);
        metrics.recordMinute(r, Celsius(27.0), Celsius(27.2));
    }
    const auto &h = metrics.inletHistogram();
    EXPECT_EQ(h.totalCount(), 100u);
    // ~90% of mass near 27.5, ~10% near 33.
    double below_30 = 0.0, above_32 = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b) {
        if (h.binCenter(b) < 30.0)
            below_30 += h.binFraction(b);
        if (h.binCenter(b) > 32.0)
            above_32 += h.binFraction(b);
    }
    EXPECT_NEAR(below_30, 0.9, 0.01);
    EXPECT_NEAR(above_32, 0.1, 0.01);
}

TEST(Metrics, PerTenantPerfSamples)
{
    SimulationMetrics metrics;
    metrics.recordTenantEmergencyPerf(0, 3.0);
    metrics.recordTenantEmergencyPerf(2, 5.0);
    metrics.recordTenantEmergencyPerf(0, 4.0);
    const auto &per_tenant = metrics.tenantEmergencyPerf();
    ASSERT_EQ(per_tenant.size(), 3u);
    EXPECT_DOUBLE_EQ(per_tenant[0].mean(), 3.5);
    EXPECT_EQ(per_tenant[1].count(), 0u);
    EXPECT_DOUBLE_EQ(per_tenant[2].mean(), 5.0);
}

} // namespace
} // namespace ecolo::core
