/** @file Unit tests for the operator threat assessment. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hh"
#include "core/threat_assessment.hh"

namespace ecolo::core {
namespace {

TEST(ThreatAssessment, DefaultSiteEmergenciesFeasibleOutagesNot)
{
    const auto config = SimulationConfig::paperDefault();
    const auto a = assessThreat(config);
    // With a 1 kW attack load: repeated emergencies feasible...
    EXPECT_TRUE(a.emergencyFeasible);
    EXPECT_GT(a.minutesToEmergency, 2.0);
    EXPECT_LT(a.minutesToEmergency, 15.0);
    // ...and the required burst fits inside the Table I 0.2 kWh battery.
    EXPECT_LT(a.minBatteryForEmergency.value(),
              config.batterySpec.capacity.value());
    // But the capping protocol arrests a 1 kW one-shot.
    EXPECT_FALSE(a.outageFeasible);
}

TEST(ThreatAssessment, OneShotConfigurationIsFeasible)
{
    auto config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    const auto a = assessThreat(config);
    EXPECT_TRUE(a.outageFeasible);
    EXPECT_GT(a.minutesToShutdown, 2.0);
    EXPECT_LT(a.minutesToShutdown, 30.0);
    // The strike fits in the configured battery.
    EXPECT_LT(a.minBatteryForOutage.value(),
              config.batterySpec.capacity.value());
}

TEST(ThreatAssessment, ExtraCoolingNeutralizes)
{
    auto config = SimulationConfig::paperDefault();
    const auto a = assessThreat(config);
    ASSERT_TRUE(a.emergencyFeasible);
    // Apply the recommended extra capacity: the attack should no longer
    // overload at peak.
    config.cooling.capacity =
        config.cooling.capacity + a.extraCoolingToNeutralize;
    const auto after = assessThreat(config);
    EXPECT_FALSE(after.emergencyFeasible);
}

TEST(ThreatAssessment, LowerPeakLoadWeakensTheThreat)
{
    const auto config = SimulationConfig::paperDefault();
    const auto busy = assessThreat(config, Kilowatts(7.0));
    const auto quiet = assessThreat(config, Kilowatts(5.0));
    EXPECT_TRUE(busy.emergencyFeasible);
    EXPECT_FALSE(quiet.emergencyFeasible);
    EXPECT_GT(quiet.coolingHeadroom.value(),
              busy.coolingHeadroom.value());
}

TEST(ThreatAssessment, MinAttackLoadMatchesHeadroom)
{
    const auto config = SimulationConfig::paperDefault();
    const auto a = assessThreat(config, Kilowatts(6.5));
    // capacity 8 - benign 6.5 - subscription 0.8 + 0.1 margin = 0.8.
    EXPECT_NEAR(a.minEmergencyAttackLoad.value(), 0.8, 1e-9);
}

TEST(ThreatAssessment, AssessmentAgreesWithSimulation)
{
    // The closed-form emergency feasibility must agree with what the
    // engine actually produces under a Myopic campaign.
    const auto config = SimulationConfig::paperDefault();
    const auto a = assessThreat(config);
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.runDays(20.0);
    EXPECT_EQ(a.emergencyFeasible, sim.metrics().emergencies() > 0);
    EXPECT_EQ(a.outageFeasible, sim.metrics().outages() > 0);
}

TEST(ThreatAssessment, PrintsAllSections)
{
    const auto config = SimulationConfig::paperDefault();
    std::ostringstream oss;
    printAssessment(oss, config, assessThreat(config));
    const std::string out = oss.str();
    EXPECT_NE(out.find("cooling headroom"), std::string::npos);
    EXPECT_NE(out.find("minutes of attack per emergency"),
              std::string::npos);
    EXPECT_NE(out.find("one-shot outage"), std::string::npos);
}

} // namespace
} // namespace ecolo::core
