/** @file Unit tests for scenario-file application. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hh"

namespace ecolo::core {
namespace {

KeyValueConfig
parse(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(Scenario, EmptyScenarioKeepsDefaults)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(KeyValueConfig{}, config);
    EXPECT_DOUBLE_EQ(config.capacity.value(), 8.0);
    EXPECT_DOUBLE_EQ(config.batterySpec.capacity.value(), 0.2);
}

TEST(Scenario, OverridesBatteryAndAttack)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("battery.capacityKwh = 0.4\n"
                        "battery.dischargeRateKw = 2.0\n"
                        "attacker.attackLoadKw = 2.0\n"),
                  config);
    EXPECT_DOUBLE_EQ(config.batterySpec.capacity.value(), 0.4);
    EXPECT_DOUBLE_EQ(config.attackLoad.value(), 2.0);
}

TEST(Scenario, OverridesCoolingAndProtocol)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("cooling.capacityKw = 8.8\n"
                        "cooling.setPointC = 20\n"
                        "protocol.cappingMinutes = 10\n"
                        "protocol.outageRestartMinutes = 30\n"),
                  config);
    EXPECT_DOUBLE_EQ(config.cooling.capacity.value(), 8.8);
    EXPECT_DOUBLE_EQ(config.cooling.supplySetPoint.value(), 20.0);
    EXPECT_EQ(config.cappingMinutes, 10);
    EXPECT_EQ(config.outageRestartMinutes, 30);
}

TEST(Scenario, TraceKindParsing)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("traceKind = google\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::GoogleStyle);
    applyScenario(parse("traceKind = diurnal\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::Diurnal);
}

TEST(Scenario, SeedAndUtilization)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("seed = 777\naverageUtilization = 0.8\n"), config);
    EXPECT_EQ(config.seed, 777u);
    EXPECT_DOUBLE_EQ(config.averageUtilization, 0.8);
}

TEST(ScenarioDeathTest, UnknownKeyRejected)
{
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(parse("batery.capacityKwh = 0.4\n"),
                               config),
                 "unknown scenario key");
}

TEST(Scenario, UnknownKeyToleratedWhenAsked)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("custom.key = 1\n"), config,
                  /*allow_unknown=*/true);
    EXPECT_DOUBLE_EQ(config.capacity.value(), 8.0);
}

TEST(ScenarioDeathTest, InvalidResultRejected)
{
    // Overrides that individually parse but produce an invalid config
    // must fail validation.
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(
                     parse("battery.dischargeRateKw = 0.5\n"), config),
                 "discharge rate");
}

TEST(ScenarioDeathTest, BadTraceKind)
{
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(parse("traceKind = sinusoid\n"), config),
                 "unknown traceKind");
}

TEST(Scenario, DescribePrintsKeyFields)
{
    const auto config = SimulationConfig::paperDefault();
    std::ostringstream oss;
    describeConfig(oss, config);
    const std::string out = oss.str();
    EXPECT_NE(out.find("capacity (kW)"), std::string::npos);
    EXPECT_NE(out.find("8.00"), std::string::npos);
    EXPECT_NE(out.find("40 / 4"), std::string::npos);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Scenario, RequestTraceKind)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("traceKind = request\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::RequestLevel);
}

} // namespace
} // namespace ecolo::core
