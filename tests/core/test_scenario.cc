/** @file Unit tests for scenario-file application. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hh"

namespace ecolo::core {
namespace {

KeyValueConfig
parse(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(Scenario, EmptyScenarioKeepsDefaults)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(KeyValueConfig{}, config);
    EXPECT_DOUBLE_EQ(config.capacity.value(), 8.0);
    EXPECT_DOUBLE_EQ(config.batterySpec.capacity.value(), 0.2);
}

TEST(Scenario, OverridesBatteryAndAttack)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("battery.capacityKwh = 0.4\n"
                        "battery.dischargeRateKw = 2.0\n"
                        "attacker.attackLoadKw = 2.0\n"),
                  config);
    EXPECT_DOUBLE_EQ(config.batterySpec.capacity.value(), 0.4);
    EXPECT_DOUBLE_EQ(config.attackLoad.value(), 2.0);
}

TEST(Scenario, OverridesCoolingAndProtocol)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("cooling.capacityKw = 8.8\n"
                        "cooling.setPointC = 20\n"
                        "protocol.cappingMinutes = 10\n"
                        "protocol.outageRestartMinutes = 30\n"),
                  config);
    EXPECT_DOUBLE_EQ(config.cooling.capacity.value(), 8.8);
    EXPECT_DOUBLE_EQ(config.cooling.supplySetPoint.value(), 20.0);
    EXPECT_EQ(config.cappingMinutes, 10);
    EXPECT_EQ(config.outageRestartMinutes, 30);
}

TEST(Scenario, TraceKindParsing)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("traceKind = google\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::GoogleStyle);
    applyScenario(parse("traceKind = diurnal\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::Diurnal);
}

TEST(Scenario, SeedAndUtilization)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("seed = 777\naverageUtilization = 0.8\n"), config);
    EXPECT_EQ(config.seed, 777u);
    EXPECT_DOUBLE_EQ(config.averageUtilization, 0.8);
}

TEST(ScenarioDeathTest, UnknownKeyRejected)
{
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(parse("batery.capacityKwh = 0.4\n"),
                               config),
                 "unknown scenario key");
}

TEST(Scenario, UnknownKeyToleratedWhenAsked)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("custom.key = 1\n"), config,
                  /*allow_unknown=*/true);
    EXPECT_DOUBLE_EQ(config.capacity.value(), 8.0);
}

TEST(ScenarioDeathTest, InvalidResultRejected)
{
    // Overrides that individually parse but produce an invalid config
    // must fail validation.
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(
                     parse("battery.dischargeRateKw = 0.5\n"), config),
                 "discharge rate");
}

TEST(ScenarioDeathTest, BadTraceKind)
{
    auto config = SimulationConfig::paperDefault();
    EXPECT_DEATH(applyScenario(parse("traceKind = sinusoid\n"), config),
                 "unknown traceKind");
}

TEST(Scenario, DescribePrintsKeyFields)
{
    const auto config = SimulationConfig::paperDefault();
    std::ostringstream oss;
    describeConfig(oss, config);
    const std::string out = oss.str();
    EXPECT_NE(out.find("capacity (kW)"), std::string::npos);
    EXPECT_NE(out.find("8.00"), std::string::npos);
    EXPECT_NE(out.find("40 / 4"), std::string::npos);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Scenario, RequestTraceKind)
{
    auto config = SimulationConfig::paperDefault();
    applyScenario(parse("traceKind = request\n"), config);
    EXPECT_EQ(config.traceKind, TraceKind::RequestLevel);
}

TEST(Scenario, FaultKeysBuildTheSchedule)
{
    auto config = SimulationConfig::paperDefault();
    // fault.* keys must be consumed before the unknown-key sweep.
    applyScenario(parse("fault.0.type = crac_capacity_loss\n"
                        "fault.0.startDay = 10\n"
                        "fault.0.durationMinutes = 120\n"
                        "fault.0.magnitude = 0.4\n"),
                  config);
    ASSERT_EQ(config.faultSchedule.size(), 1u);
    EXPECT_EQ(config.faultSchedule.firstStart(), 10 * kMinutesPerDay);
}

TEST(Scenario, TryApplyReportsStructuredErrors)
{
    auto config = SimulationConfig::paperDefault();
    const auto unknown =
        tryApplyScenario(parse("no.such.key = 1\n"), config);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(unknown.error().message.find("no.such.key"),
              std::string::npos);

    auto fresh = SimulationConfig::paperDefault();
    const auto invalid = tryApplyScenario(
        parse("battery.chargeEfficiency = 1.7\n"), fresh);
    ASSERT_FALSE(invalid.ok());
    EXPECT_EQ(invalid.error().code, util::ErrorCode::ValidationError);
    EXPECT_NE(invalid.error().message.find("(0, 1]"), std::string::npos);

    auto fresh2 = SimulationConfig::paperDefault();
    const auto nan_value =
        tryApplyScenario(parse("cooling.airVolumeM3 = nan\n"), fresh2);
    ASSERT_FALSE(nan_value.ok());
    EXPECT_EQ(nan_value.error().code, util::ErrorCode::ValidationError);
    EXPECT_NE(nan_value.error().message.find("finite"),
              std::string::npos);
}

TEST(Scenario, TryLoadMissingFileIsIoError)
{
    const auto result = tryLoadScenarioFile("/nonexistent/site.cfg");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::ErrorCode::IoError);
}

} // namespace
} // namespace ecolo::core
