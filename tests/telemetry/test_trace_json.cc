/**
 * @file
 * Chrome trace-event output: JSON well-formedness (checked with a small
 * recursive-descent parser -- no external JSON library in the image),
 * thread-name metadata, and span attribution.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hh"
#include "util/parallel.hh"

namespace {

using namespace ecolo;
using namespace ecolo::telemetry;

/** Minimal JSON validator: accepts exactly the RFC 8259 grammar. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int k = 1; k <= 4; ++k) {
                        if (pos_ + k >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + k]))) {
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return false;
        }
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

class TraceJsonTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetForTest(); }
    void TearDown() override { resetForTest(); }
};

TEST_F(TraceJsonTest, ValidatorSanity)
{
    std::string good = "{\"a\":[1,2.5,-3e2,\"x\\n\",null,true]}";
    std::string bad1 = "{\"a\":}";
    std::string bad2 = "{\"a\":1,}";
    std::string bad3 = "{\"a\":1} extra";
    EXPECT_TRUE(JsonChecker(good).valid());
    EXPECT_FALSE(JsonChecker(bad1).valid());
    EXPECT_FALSE(JsonChecker(bad2).valid());
    EXPECT_FALSE(JsonChecker(bad3).valid());
}

TEST_F(TraceJsonTest, EmptySessionIsValidJson)
{
    setEnabled(true);
    trace().begin();
    trace().end();
    std::ostringstream os;
    trace().writeChromeJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST_F(TraceJsonTest, SpansProduceValidChromeTrace)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "telemetry compiled out (EDGETHERM_TELEMETRY=0)";
    setEnabled(true);
    trace().begin();
    {
        TraceSpan outer("unit.outer");
        TraceSpan inner(std::string("unit.inner \"quoted\"\n"));
    }
    trace().end();
    ASSERT_EQ(trace().eventCount(), 2u);

    std::ostringstream os;
    trace().writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("unit.outer"), std::string::npos);
    // The hostile span name must arrive escaped, not raw.
    EXPECT_EQ(json.find('\n'), json.size() - 1); // only the final newline
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    // Main thread metadata track.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);

    // Spans also land in the registry histogram even without a session.
    const StatBase *h = registry().find("profile.unit.outer_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind(), StatKind::Histogram);
}

TEST_F(TraceJsonTest, PoolWorkersGetNamedTracks)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "telemetry compiled out (EDGETHERM_TELEMETRY=0)";
    util::ThreadPool::setGlobalThreads(4);
    setEnabled(true);
    trace().begin();
    std::vector<int> sink(64, 0);
    util::parallelFor(0, sink.size(), [&](std::size_t i) {
        TraceSpan span("unit.work");
        // Long enough that the workers (not just the caller) reliably
        // claim tasks, so worker tracks appear in the metadata.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        sink[i] = static_cast<int>(i * i);
    });
    trace().end();

    std::ostringstream os;
    trace().writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("unit.work"), std::string::npos);
    // The pool task hook records per-task spans attributed to workers;
    // worker threads carry their pthread name into the metadata.
    EXPECT_NE(json.find("edgetherm-"), std::string::npos);
    ASSERT_NE(registry().find("profile.pool.task_us"), nullptr);
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());
}

TEST_F(TraceJsonTest, DisabledSpansRecordNothing)
{
    setEnabled(false);
    {
        TraceSpan span("unit.ghost");
    }
    EXPECT_EQ(registry().size(), 0u);
    EXPECT_EQ(trace().eventCount(), 0u);
}

} // namespace
