/**
 * @file
 * The telemetry cost contract's strongest clause: a run with every sink
 * armed is bit-identical to a run with telemetry off. Compared over the
 * complete serialized simulation state, not just summary metrics.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/engine.hh"
#include "telemetry/telemetry.hh"
#include "util/state_io.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

std::string
runAndSerialize(double days)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.2)));
    sim.runDays(days);
    std::ostringstream os;
    util::StateWriter writer(os);
    sim.saveState(writer);
    EXPECT_TRUE(writer.good());
    return os.str();
}

TEST(TelemetryBitIdentity, EnabledRunMatchesDisabledRunExactly)
{
    constexpr double kDays = 2.0;

    telemetry::resetForTest();
    const std::string baseline = runAndSerialize(kDays);
    ASSERT_FALSE(baseline.empty());
    // Off means off: the run must not have registered anything.
    EXPECT_EQ(telemetry::registry().size(), 0u);
    EXPECT_EQ(telemetry::events().size(), 0u);

    telemetry::resetForTest();
    telemetry::setEnabled(true);
    telemetry::trace().begin();
    const std::string instrumented = runAndSerialize(kDays);
    telemetry::trace().end();

    // The instrumented run really collected (unless compiled out): every
    // simulated minute was counted and the profile histograms exist.
    if (telemetry::kCompiledIn) {
        const auto *minutes = telemetry::registry().find("engine.minutes");
        ASSERT_NE(minutes, nullptr);
        EXPECT_EQ(
            static_cast<const telemetry::Counter *>(minutes)->value(),
            static_cast<std::uint64_t>(kDays * kMinutesPerDay));
        EXPECT_NE(
            telemetry::registry().find("profile.engine.thermal_step_us"),
            nullptr);
        EXPECT_GT(telemetry::trace().eventCount(), 0u);
    }

    // And changed nothing: byte-for-byte identical full state.
    EXPECT_EQ(baseline.size(), instrumented.size());
    EXPECT_TRUE(baseline == instrumented)
        << "telemetry perturbed the simulation state";

    telemetry::resetForTest();
}

TEST(TelemetryBitIdentity, TelemetryStateIsNotCheckpointed)
{
    // A checkpoint taken mid-run with telemetry on must restore into a
    // telemetry-off process bit-identically: nothing telemetry-ish may
    // leak into the state stream.
    auto config = SimulationConfig::paperDefault();

    telemetry::resetForTest();
    telemetry::setEnabled(true);
    Simulation instrumented(config,
                            makeMyopicPolicy(config, Kilowatts(7.2)));
    instrumented.runDays(1.0);
    std::ostringstream os_on;
    util::StateWriter writer_on(os_on);
    instrumented.saveState(writer_on);

    telemetry::resetForTest(); // telemetry now off
    Simulation restored(config, makeMyopicPolicy(config, Kilowatts(7.2)));
    std::istringstream is(os_on.str());
    util::StateReader reader(is);
    restored.loadState(reader);
    ASSERT_TRUE(reader.ok());

    // Both continue identically to day 2.
    Simulation reference(config, makeMyopicPolicy(config, Kilowatts(7.2)));
    reference.runDays(2.0);
    restored.runDays(1.0);

    std::ostringstream os_a;
    std::ostringstream os_b;
    util::StateWriter wa(os_a);
    util::StateWriter wb(os_b);
    restored.saveState(wa);
    reference.saveState(wb);
    EXPECT_TRUE(os_a.str() == os_b.str())
        << "restored-and-continued state diverged from the straight run";
}

} // namespace
