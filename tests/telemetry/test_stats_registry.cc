#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "telemetry/stats.hh"

namespace {

using namespace ecolo::telemetry;

TEST(StatName, Validation)
{
    EXPECT_TRUE(Registry::validName("engine.minutes"));
    EXPECT_TRUE(Registry::validName("engine.emergency.declared"));
    EXPECT_TRUE(Registry::validName("profile.pool.task_us"));
    EXPECT_TRUE(Registry::validName("sidechannel.estimate_error_kw"));
    EXPECT_TRUE(Registry::validName("a"));
    EXPECT_TRUE(Registry::validName("a-b.c_d.E9"));

    EXPECT_FALSE(Registry::validName(""));
    EXPECT_FALSE(Registry::validName("."));
    EXPECT_FALSE(Registry::validName(".engine"));
    EXPECT_FALSE(Registry::validName("engine."));
    EXPECT_FALSE(Registry::validName("engine..minutes"));
    EXPECT_FALSE(Registry::validName("engine minutes"));
    EXPECT_FALSE(Registry::validName("engine/minutes"));
    EXPECT_FALSE(Registry::validName("engine:minutes"));
}

TEST(Registry, SameNameSameKindSharesInstance)
{
    Registry reg;
    Counter &a = reg.counter("engine.minutes");
    Counter &b = reg.counter("engine.minutes");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindCollisionPanics)
{
    Registry reg;
    reg.counter("engine.minutes");
    EXPECT_DEATH(reg.gauge("engine.minutes"), "stat name collision");
}

TEST(Registry, InvalidNamePanics)
{
    Registry reg;
    EXPECT_DEATH(reg.counter("not a name"), "");
}

TEST(Registry, FindAndKinds)
{
    Registry reg;
    reg.counter("a.counter");
    reg.gauge("a.gauge");
    reg.scalar("a.scalar");
    reg.histogram("a.histogram");
    EXPECT_EQ(reg.size(), 4u);
    ASSERT_NE(reg.find("a.counter"), nullptr);
    EXPECT_EQ(reg.find("a.counter")->kind(), StatKind::Counter);
    EXPECT_EQ(reg.find("a.gauge")->kind(), StatKind::Gauge);
    EXPECT_EQ(reg.find("a.scalar")->kind(), StatKind::Scalar);
    EXPECT_EQ(reg.find("a.histogram")->kind(), StatKind::Histogram);
    EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(Histogram, BucketEdges)
{
    // Bucket 0 holds [0, 1); bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(TelemetryHistogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(0.5), 0u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(0.999), 0u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(1.0), 1u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(1.999), 1u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(2.0), 2u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(4.0), 3u);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(1024.0), 11u);
    // The top bucket absorbs everything larger, including +inf.
    EXPECT_EQ(TelemetryHistogram::bucketIndex(1e300),
              TelemetryHistogram::kNumBuckets - 1);
    EXPECT_EQ(TelemetryHistogram::bucketIndex(
                  std::numeric_limits<double>::infinity()),
              TelemetryHistogram::kNumBuckets - 1);

    for (std::size_t i = 0; i + 1 < TelemetryHistogram::kNumBuckets; ++i) {
        EXPECT_EQ(TelemetryHistogram::bucketIndex(
                      TelemetryHistogram::bucketLo(i)),
                  i)
            << "bucket " << i;
    }
}

TEST(Histogram, AddAndSummaries)
{
    TelemetryHistogram h("test.h");
    h.add(0.0);
    h.add(1.0);
    h.add(3.0);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.rejected(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 1004.0);
    EXPECT_DOUBLE_EQ(h.mean(), 251.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(10), 1u); // [512, 1024)
}

TEST(Histogram, RejectsNanAndNegative)
{
    TelemetryHistogram h("test.h");
    h.add(std::nan(""));
    h.add(-1.0);
    h.add(5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.rejected(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

TEST(Histogram, InfinityCountedNotSummedAsFinite)
{
    TelemetryHistogram h("test.h");
    h.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.bucketCount(TelemetryHistogram::kNumBuckets - 1), 1u);
}

TEST(Registry, JsonDumpIsWellFormedEnough)
{
    Registry reg;
    reg.counter("engine.minutes").inc(7);
    reg.gauge("battery.soc").set(0.25);
    reg.histogram("profile.x_us").add(12.0);

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\":\"edgetherm-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"engine.minutes\""), std::string::npos);
    EXPECT_NE(json.find("\"battery.soc\""), std::string::npos);
    EXPECT_NE(json.find("\"profile.x_us\""), std::string::npos);

    // Balanced braces/brackets outside strings -> parseable shape.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(Registry, ResetValuesKeepsNames)
{
    Registry reg;
    reg.counter("a.b").inc(9);
    reg.resetValues();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.counter("a.b").value(), 0u);
}

TEST(Registry, TextDumpMentionsEveryStat)
{
    Registry reg;
    reg.counter("zz.count").inc(2);
    reg.gauge("aa.gauge").set(1.5);
    std::ostringstream os;
    reg.dumpText(os);
    EXPECT_NE(os.str().find("zz.count"), std::string::npos);
    EXPECT_NE(os.str().find("aa.gauge"), std::string::npos);
}

} // namespace
