/**
 * @file
 * TailLatency tests: exact nearest-rank quantiles while the raw-sample
 * buffer holds, Welford mean/jitter, input hygiene (NaN/negative
 * rejection), bucket-interpolated quantiles past the sample capacity,
 * and reset semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include "telemetry/latency.hh"

namespace ecolo::telemetry {
namespace {

TEST(TailLatency, EmptySnapshotIsAllZeros)
{
    TailLatency lat;
    const auto s = lat.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.jitter, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 0.0);
    EXPECT_TRUE(s.exact);
}

TEST(TailLatency, ExactQuantilesWhileSamplesFit)
{
    TailLatency lat(1000);
    // 1..100 in a scrambled order; order must not matter.
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(static_cast<double>(i));
    std::mt19937 shuffle(7);
    std::shuffle(values.begin(), values.end(), shuffle);
    for (const double v : values)
        lat.record(v);

    const auto s = lat.snapshot();
    EXPECT_TRUE(s.exact);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    // Nearest-rank on sorted[round(q * (n-1))].
    EXPECT_DOUBLE_EQ(s.p50, 51.0);
    EXPECT_DOUBLE_EQ(s.p95, 95.0);
    EXPECT_DOUBLE_EQ(s.p99, 99.0);
    // Population stddev of 1..100.
    EXPECT_NEAR(s.jitter, 28.866, 0.01);
}

TEST(TailLatency, RejectsNanAndNegativeWithoutPoisoningStats)
{
    TailLatency lat;
    lat.record(10.0);
    lat.record(-1.0);
    lat.record(std::numeric_limits<double>::quiet_NaN());
    lat.record(30.0);
    const auto s = lat.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_DOUBLE_EQ(s.mean, 20.0);
    EXPECT_DOUBLE_EQ(s.min, 10.0);
    EXPECT_DOUBLE_EQ(s.max, 30.0);
}

TEST(TailLatency, BucketedQuantilesBoundTheErrorPastCapacity)
{
    // Tiny capacity forces the log-bucket path quickly.
    TailLatency lat(16);
    std::mt19937_64 gen(99);
    std::uniform_real_distribution<double> dist(100.0, 10000.0);
    std::vector<double> values;
    for (int i = 0; i < 4096; ++i)
        values.push_back(dist(gen));
    for (const double v : values)
        lat.record(v);

    const auto s = lat.snapshot();
    EXPECT_FALSE(s.exact);
    EXPECT_EQ(s.count, 4096u);

    std::sort(values.begin(), values.end());
    const auto exact_at = [&values](double q) {
        return values[static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1) + 0.5)];
    };
    // Base-2 buckets: the interpolated answer lands within the winning
    // bucket, so it is within a factor of 2 of the exact quantile.
    for (const auto &[got, q] :
         {std::pair{s.p50, 0.50}, {s.p95, 0.95}, {s.p99, 0.99}}) {
        const double want = exact_at(q);
        EXPECT_GE(got, want / 2.0) << "q=" << q;
        EXPECT_LE(got, want * 2.0) << "q=" << q;
    }
    // Quantiles stay inside the observed range.
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p99, s.max);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    // Mean/jitter are exact regardless of the sample buffer.
    const double sum =
        std::accumulate(values.begin(), values.end(), 0.0);
    EXPECT_NEAR(s.mean, sum / static_cast<double>(values.size()),
                1e-6 * s.mean);
}

TEST(TailLatency, ResetClearsEverything)
{
    TailLatency lat(4);
    for (int i = 0; i < 10; ++i)
        lat.record(5.0);
    EXPECT_EQ(lat.count(), 10u);
    lat.reset();
    EXPECT_EQ(lat.count(), 0u);
    const auto s = lat.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_TRUE(s.exact);
    lat.record(2.0);
    EXPECT_EQ(lat.snapshot().count, 1u);
    EXPECT_DOUBLE_EQ(lat.snapshot().p50, 2.0);
}

TEST(TailLatency, SingleSampleIsItsOwnTail)
{
    TailLatency lat;
    lat.record(123.0);
    const auto s = lat.snapshot();
    EXPECT_DOUBLE_EQ(s.p50, 123.0);
    EXPECT_DOUBLE_EQ(s.p95, 123.0);
    EXPECT_DOUBLE_EQ(s.p99, 123.0);
    EXPECT_DOUBLE_EQ(s.jitter, 0.0);
    EXPECT_DOUBLE_EQ(s.mean, 123.0);
}

} // namespace
} // namespace ecolo::telemetry
