#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/events.hh"

namespace {

using namespace ecolo::telemetry;

TEST(EventLog, EmitsInOrder)
{
    EventLog log(16);
    log.emit(5, EventKind::EmergencyDeclared, 33.0, "rack0");
    log.emit(7, EventKind::CappingStart, 0.12);
    log.emit(12, EventKind::EmergencyCleared, 31.0);

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].minute, 5);
    EXPECT_EQ(events[0].kind, EventKind::EmergencyDeclared);
    EXPECT_DOUBLE_EQ(events[0].value, 33.0);
    EXPECT_EQ(events[0].detail, "rack0");
    EXPECT_EQ(events[1].kind, EventKind::CappingStart);
    EXPECT_EQ(events[2].minute, 12);
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, WraparoundKeepsNewestOldestFirst)
{
    EventLog log(4);
    for (int m = 0; m < 10; ++m)
        log.emit(m, EventKind::CappingStart, static_cast<double>(m));

    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.dropped(), 6u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The four newest, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].minute, static_cast<long>(6 + i));
}

TEST(EventLog, KindNamesAreSnakeCase)
{
    EXPECT_STREQ(toString(EventKind::EmergencyDeclared),
                 "emergency_declared");
    EXPECT_STREQ(toString(EventKind::EmergencyCleared),
                 "emergency_cleared");
    EXPECT_STREQ(toString(EventKind::CappingStart), "capping_start");
    EXPECT_STREQ(toString(EventKind::CappingEnd), "capping_end");
    EXPECT_STREQ(toString(EventKind::Outage), "outage");
    EXPECT_STREQ(toString(EventKind::OutageEnded), "outage_ended");
    EXPECT_STREQ(toString(EventKind::FaultActivated), "fault_activated");
    EXPECT_STREQ(toString(EventKind::FaultExpired), "fault_expired");
    EXPECT_STREQ(toString(EventKind::DegradedTierChange),
                 "degraded_tier_change");
    EXPECT_STREQ(toString(EventKind::CheckpointSaved), "checkpoint_saved");
    EXPECT_STREQ(toString(EventKind::CheckpointRestored),
                 "checkpoint_restored");
    EXPECT_STREQ(toString(EventKind::BatteryDepleted), "battery_depleted");
}

TEST(EventLog, JsonlOneObjectPerLine)
{
    EventLog log(16);
    log.emit(1, EventKind::EmergencyDeclared, 33.5, "detail \"quoted\"");
    log.emit(2, EventKind::Outage, 45.25);

    std::ostringstream os;
    log.writeJsonl(os);
    const std::string out = os.str();

    std::vector<std::string> lines;
    std::istringstream is(out);
    for (std::string line; std::getline(is, line);)
        if (!line.empty())
            lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"minute\":"), std::string::npos);
        EXPECT_NE(line.find("\"kind\":"), std::string::npos);
        EXPECT_NE(line.find("\"value\":"), std::string::npos);
    }
    EXPECT_NE(lines[0].find("emergency_declared"), std::string::npos);
    // The embedded quote must be escaped, never raw.
    EXPECT_NE(lines[0].find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"kind\":\"outage\""), std::string::npos);
}

TEST(EventLog, SetCapacityDropsRetained)
{
    EventLog log(8);
    log.emit(1, EventKind::CappingStart);
    log.setCapacity(2);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.capacity(), 2u);
    log.emit(2, EventKind::CappingStart);
    log.emit(3, EventKind::CappingStart);
    log.emit(4, EventKind::CappingStart);
    EXPECT_EQ(log.size(), 2u);
    const auto events = log.snapshot();
    EXPECT_EQ(events.front().minute, 3);
    EXPECT_EQ(events.back().minute, 4);
}

TEST(JsonEscape, ControlAndSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

} // namespace
