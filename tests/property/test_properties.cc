/**
 * @file
 * Parameterized property tests: invariants that must hold across whole
 * parameter ranges, not just hand-picked examples.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "battery/battery.hh"
#include "core/engine.hh"
#include "core/operator.hh"
#include "thermal/cooling.hh"
#include "trace/generators.hh"

namespace ecolo {
namespace {

// ---------------------------------------------------------------------
// Battery: energy accounting holds for any (capacity, efficiency) combo.
// ---------------------------------------------------------------------

struct BatteryCase
{
    double capacityKwh;
    double chargeEff;
    double dischargeEff;
};

class BatteryProperty : public ::testing::TestWithParam<BatteryCase>
{
};

TEST_P(BatteryProperty, SocAlwaysInRange)
{
    const auto p = GetParam();
    battery::BatterySpec spec;
    spec.capacity = KilowattHours(p.capacityKwh);
    spec.chargeEfficiency = p.chargeEff;
    spec.dischargeEfficiency = p.dischargeEff;
    battery::Battery b(spec, 0.5);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        if (rng.bernoulli(0.5))
            b.charge(Kilowatts(rng.uniform(0.0, 0.5)), minutes(1));
        else
            b.discharge(Kilowatts(rng.uniform(0.0, 2.0)), minutes(1));
        EXPECT_GE(b.soc(), -1e-12);
        EXPECT_LE(b.soc(), 1.0 + 1e-12);
    }
}

TEST_P(BatteryProperty, RoundTripNeverCreatesEnergy)
{
    const auto p = GetParam();
    battery::BatterySpec spec;
    spec.capacity = KilowattHours(p.capacityKwh);
    spec.chargeEfficiency = p.chargeEff;
    spec.dischargeEfficiency = p.dischargeEff;
    battery::Battery b(spec, 0.0);

    // Charge with a known grid energy, then fully discharge: the energy
    // delivered to the load can never exceed grid energy times the
    // round-trip efficiency.
    double grid_kwh = 0.0;
    for (int m = 0; m < 120 && !b.full(); ++m)
        grid_kwh += b.charge(Kilowatts(0.2), minutes(1)).value() / 60.0;
    double delivered_kwh = 0.0;
    for (int m = 0; m < 600 && !b.empty(); ++m)
        delivered_kwh +=
            b.discharge(Kilowatts(1.0), minutes(1)).value() / 60.0;
    EXPECT_LE(delivered_kwh,
              grid_kwh * p.chargeEff * p.dischargeEff + 1e-9);
    EXPECT_GT(delivered_kwh, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatteryProperty,
    ::testing::Values(BatteryCase{0.1, 1.0, 1.0},
                      BatteryCase{0.2, 0.9, 0.95},
                      BatteryCase{0.2, 0.8, 0.9},
                      BatteryCase{0.4, 0.95, 0.99},
                      BatteryCase{0.05, 0.7, 0.7}));

// ---------------------------------------------------------------------
// Cooling: physical sanity across overload levels.
// ---------------------------------------------------------------------

class CoolingProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(CoolingProperty, NeverDropsBelowSetPoint)
{
    thermal::CoolingSystem cooling(thermal::CoolingParams{});
    Rng rng(11);
    for (int m = 0; m < 2000; ++m) {
        cooling.step(Kilowatts(rng.uniform(0.0, GetParam())), minutes(1));
        EXPECT_GE(cooling.supplyTemperature().value(), 27.0 - 1e-12);
    }
}

TEST_P(CoolingProperty, MoreOverloadIsNeverSlower)
{
    thermal::CoolingSystem cooling(thermal::CoolingParams{});
    const double overload = GetParam();
    const double t1 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(overload), Celsius(27.0))
        .value();
    const double t2 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(overload + 0.5),
                     Celsius(27.0))
        .value();
    EXPECT_LE(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoolingProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

// ---------------------------------------------------------------------
// Traces: any generator parameterization stays within [0, 1] and scales.
// ---------------------------------------------------------------------

class TraceProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(TraceProperty, ScaledMeanHitsTarget)
{
    Rng rng(13);
    const auto t =
        trace::DiurnalTraceGenerator().generate(14 * kMinutesPerDay, rng);
    const double target = GetParam();
    const auto scaled = trace::scaleToMeanUtilization(t, target);
    EXPECT_NEAR(scaled.mean(), target, 0.01);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
        EXPECT_GE(scaled[i], 0.0);
        EXPECT_LE(scaled[i], 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceProperty,
                         ::testing::Values(0.3, 0.5, 0.65, 0.75, 0.85));

// ---------------------------------------------------------------------
// Engine invariants across seeds: the operator's accounting books must
// balance no matter the randomness.
// ---------------------------------------------------------------------

class EngineProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineProperty, MeteringBooksBalance)
{
    auto config = core::SimulationConfig::paperDefault();
    config.seed = GetParam();
    core::Simulation sim(config,
                         core::makeMyopicPolicy(config, Kilowatts(7.3)));
    sim.setMinuteCallback([&](const core::MinuteRecord &r) {
        // Metered power never exceeds the PDU capacity.
        EXPECT_LE(r.meteredTotal.value(),
                  config.capacity.value() + 1e-6);
        // Heat = metered + battery discharge - battery charging draw;
        // during an attack the gap equals the battery power exactly.
        if (r.action == core::AttackAction::Attack) {
            EXPECT_NEAR(r.actualHeat.value(),
                        r.meteredTotal.value() +
                            r.attackBatteryPower.value(),
                        1e-6);
        }
        // SoC bounded.
        EXPECT_GE(r.batterySoc, -1e-9);
        EXPECT_LE(r.batterySoc, 1.0 + 1e-9);
        // Per-server bookkeeping sums to the totals.
        Kilowatts heat_sum(0.0);
        for (Kilowatts h : sim.lastServerHeat())
            heat_sum += h;
        EXPECT_NEAR(heat_sum.value(), r.actualHeat.value(), 1e-6);
    });
    sim.runDays(4.0);
}

TEST_P(EngineProperty, EmergencyAccountingConsistent)
{
    auto config = core::SimulationConfig::paperDefault();
    config.seed = GetParam();
    core::Simulation sim(config,
                         core::makeMyopicPolicy(config, Kilowatts(7.3)));
    long capped_minutes = 0;
    sim.setMinuteCallback([&](const core::MinuteRecord &r) {
        capped_minutes += r.cappingActive;
    });
    sim.runDays(20.0);
    EXPECT_EQ(capped_minutes, sim.metrics().emergencyMinutes());
    // Each emergency caps for at most the configured window.
    if (sim.metrics().emergencies() > 0) {
        EXPECT_LE(sim.metrics().emergencyMinutes(),
                  static_cast<long>(sim.metrics().emergencies()) *
                      config.cappingMinutes);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(1u, 42u, 1337u, 90210u,
                                           0xdeadbeefu));

// ---------------------------------------------------------------------
// Heat matrix: superposition (linearity) for arbitrary power splits.
// ---------------------------------------------------------------------

class MatrixProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MatrixProperty, SuperpositionHolds)
{
    power::DataCenterLayout layout;
    auto matrix = thermal::HeatDistributionMatrix::analyticDefault(layout);
    thermal::MatrixThermalModel sum_model(matrix);
    thermal::MatrixThermalModel a_model(matrix);
    thermal::MatrixThermalModel b_model(matrix);

    Rng rng(GetParam());
    for (int m = 0; m < 12; ++m) {
        std::vector<Kilowatts> a(40), b(40), s(40);
        for (std::size_t j = 0; j < 40; ++j) {
            a[j] = Kilowatts(rng.uniform(0.0, 0.3));
            b[j] = Kilowatts(rng.uniform(0.0, 0.3));
            s[j] = a[j] + b[j];
        }
        a_model.pushPowers(a);
        b_model.pushPowers(b);
        sum_model.pushPowers(s);
    }
    for (std::size_t i = 0; i < 40; ++i) {
        EXPECT_NEAR(sum_model.inletRise(i).value(),
                    a_model.inletRise(i).value() +
                        b_model.inletRise(i).value(),
                    1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixProperty,
                         ::testing::Values(3u, 17u, 99u));

} // namespace
} // namespace ecolo

namespace ecolo {
namespace {

// ---------------------------------------------------------------------
// Operator protocol: structural guarantees for any threshold settings.
// ---------------------------------------------------------------------

struct ProtocolCase
{
    double emergencyC;
    long sustain;
    long capping;
};

class OperatorProperty : public ::testing::TestWithParam<ProtocolCase>
{
};

TEST_P(OperatorProperty, CappingWindowsNeverExceedConfigured)
{
    const auto p = GetParam();
    core::ColoOperator::Params params;
    params.emergencyThreshold = Celsius(p.emergencyC);
    params.sustainMinutes = p.sustain;
    params.cappingMinutes = p.capping;
    core::ColoOperator op(params);

    Rng rng(5);
    long consecutive_capped = 0;
    for (int m = 0; m < 20000; ++m) {
        // Random temperature walk spanning both sides of the threshold.
        const auto cmd = op.observeMinute(
            Celsius(rng.uniform(p.emergencyC - 4.0, p.emergencyC + 6.0)));
        if (cmd.capServers)
            ++consecutive_capped;
        else
            consecutive_capped = 0;
        EXPECT_LE(consecutive_capped, p.capping);
    }
}

TEST_P(OperatorProperty, EmergencyNeedsSustainedViolation)
{
    const auto p = GetParam();
    core::ColoOperator::Params params;
    params.emergencyThreshold = Celsius(p.emergencyC);
    params.sustainMinutes = p.sustain;
    params.cappingMinutes = p.capping;
    core::ColoOperator op(params);

    // Alternate hot/cold: with sustain >= 2 the counter never completes
    // and no emergency is declared; with sustain == 1 every hot minute
    // declares one.
    for (int m = 0; m < 1000; ++m) {
        op.observeMinute(Celsius(m % 2 == 0 ? p.emergencyC + 2.0
                                            : p.emergencyC - 2.0));
    }
    if (p.sustain >= 2)
        EXPECT_EQ(op.emergenciesDeclared(), 0u);
    else
        EXPECT_GT(op.emergenciesDeclared(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperatorProperty,
    ::testing::Values(ProtocolCase{32.0, 2, 5}, ProtocolCase{30.0, 1, 5},
                      ProtocolCase{32.0, 3, 10},
                      ProtocolCase{35.0, 2, 3}));

// ---------------------------------------------------------------------
// Policies: protocol compliance under fuzzed observations.
// ---------------------------------------------------------------------

class PolicyComplianceProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PolicyComplianceProperty, NoRepeatedAttackerAttacksWhileCapped)
{
    const auto config = core::SimulationConfig::paperDefault();
    std::vector<std::unique_ptr<core::AttackPolicy>> policies;
    policies.push_back(std::make_unique<core::StandbyPolicy>());
    policies.push_back(core::makeRandomPolicy(config, 0.5));
    policies.push_back(core::makeMyopicPolicy(config, Kilowatts(6.0)));
    policies.push_back(core::makeForesightedPolicy(config, 14.0));

    Rng rng(GetParam());
    for (auto &policy : policies) {
        for (int i = 0; i < 2000; ++i) {
            core::AttackObservation obs;
            obs.batterySoc = rng.uniform();
            obs.estimatedLoad = Kilowatts(rng.uniform(4.0, 8.5));
            obs.inletTemperature = Celsius(rng.uniform(27.0, 40.0));
            obs.cappingActive = rng.bernoulli(0.3);
            obs.outage = rng.bernoulli(0.05);
            const auto action = policy->decide(obs);
            if (obs.cappingActive || obs.outage)
                EXPECT_NE(action, core::AttackAction::Attack)
                    << policy->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyComplianceProperty,
                         ::testing::Values(2u, 77u, 991u));

} // namespace
} // namespace ecolo
