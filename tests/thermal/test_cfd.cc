/** @file Unit tests for the CFD-lite solver. */

#include <gtest/gtest.h>

#include "power/layout.hh"
#include "thermal/cfd/solver.hh"

namespace ecolo::thermal {
namespace {

power::DataCenterLayout
layout()
{
    return power::DataCenterLayout();
}

CfdParams
fastParams()
{
    CfdParams p;
    p.cellSize = 0.3; // coarse grid for test speed
    p.dt = 0.12;
    return p;
}

TEST(Cfd, StartsAtSetPoint)
{
    CfdSolver solver(layout(), fastParams());
    EXPECT_NEAR(solver.meanTemperature().value(), 27.0, 1e-9);
    EXPECT_NEAR(solver.maxInletTemperature().value(), 27.0, 1e-9);
    EXPECT_EQ(solver.numServers(), 40u);
}

TEST(Cfd, NoHeatStaysAtSetPoint)
{
    CfdSolver solver(layout(), fastParams());
    solver.run(minutes(5));
    EXPECT_NEAR(solver.meanTemperature().value(), 27.0, 0.01);
}

TEST(Cfd, HeatRaisesTemperatures)
{
    CfdSolver solver(layout(), fastParams());
    solver.setAllServerPowers(std::vector<Kilowatts>(40, Kilowatts(0.15)));
    solver.run(minutes(10));
    EXPECT_GT(solver.meanTemperature().value(), 27.0);
}

TEST(Cfd, UnderCapacityInletsStayNearSupply)
{
    CfdSolver solver(layout(), fastParams());
    // 6 kW of the 8 kW capacity: with working cooling, no inlet reaches
    // the 32 C emergency level (the coarse grid runs a few degrees warmer
    // than a real contained aisle, but stays below the trip point).
    solver.setAllServerPowers(std::vector<Kilowatts>(40, Kilowatts(0.15)));
    solver.run(minutes(15));
    EXPECT_LT(solver.maxInletTemperature().value(), 32.0);
}

TEST(Cfd, OverCapacityHeatsTheRoom)
{
    CfdParams p = fastParams();
    p.coolingCapacity = Kilowatts(8.0);
    CfdSolver solver(layout(), p);
    // 10 kW load against 8 kW of cooling: room-wide build-up.
    solver.setAllServerPowers(std::vector<Kilowatts>(40, Kilowatts(0.25)));
    solver.run(minutes(10));
    EXPECT_GT(solver.meanTemperature().value(), 29.0);
    EXPECT_GT(solver.maxInletTemperature().value(), 29.0);
}

TEST(Cfd, SpikeWarmsItsOwnInletMost)
{
    CfdSolver solver(layout(), fastParams());
    std::vector<Kilowatts> powers(40, Kilowatts(0.15));
    solver.setAllServerPowers(powers);
    solver.run(minutes(8));
    CfdSolver reference = solver;

    powers[10] += Kilowatts(1.0);
    solver.setAllServerPowers(powers);
    solver.run(minutes(5));
    reference.run(minutes(5));

    const double self_rise = (solver.inletTemperature(10) -
                              reference.inletTemperature(10)).value();
    const double far_rise = (solver.inletTemperature(35) -
                             reference.inletTemperature(35)).value();
    EXPECT_GT(self_rise, 0.0);
    EXPECT_GE(self_rise, far_rise - 1e-9);
}

TEST(Cfd, EnergyBalanceRoughlyConserved)
{
    // With all cooling off, the mean temperature rise should track the
    // injected energy over the air thermal mass within a factor ~2 (the
    // prescribed velocity field is not exactly conservative).
    CfdParams p = fastParams();
    p.coolingCapacity = Kilowatts(0.0001);
    CfdSolver solver(layout(), p);
    const double power_kw = 4.0;
    solver.setAllServerPowers(
        std::vector<Kilowatts>(40, Kilowatts(power_kw / 40.0)));
    solver.run(minutes(5));
    const double rise = solver.meanTemperature().value() - 27.0;
    // Expected: P*t/C. C = rho*cp*V*factor.
    const auto lay = layout();
    const double volume =
        lay.params().containerLength * lay.params().containerWidth *
        lay.params().containerHeight;
    const double capacitance = 1.18 * 1005.0 * volume * 1.3;
    const double expected = power_kw * 1000.0 * 300.0 / capacitance;
    EXPECT_GT(rise, expected * 0.5);
    EXPECT_LT(rise, expected * 2.0);
}

TEST(Cfd, ResetRestoresInitialState)
{
    CfdSolver solver(layout(), fastParams());
    solver.setAllServerPowers(std::vector<Kilowatts>(40, Kilowatts(0.3)));
    solver.run(minutes(3));
    solver.reset(Celsius(27.0));
    EXPECT_NEAR(solver.meanTemperature().value(), 27.0, 1e-9);
    EXPECT_DOUBLE_EQ(solver.time().value(), 0.0);
}

TEST(Cfd, TimeAdvances)
{
    CfdSolver solver(layout(), fastParams());
    solver.run(minutes(2));
    EXPECT_GE(solver.time().value(), 120.0);
}

TEST(CfdDeathTest, CflViolationRejected)
{
    CfdParams p;
    p.cellSize = 0.1;
    p.dt = 2.0;
    p.loopSpeed = 1.0;
    EXPECT_DEATH(CfdSolver(layout(), p), "CFL");
}

TEST(CfdDeathTest, DiffusionStabilityRejected)
{
    CfdParams p;
    p.cellSize = 0.1;
    p.dt = 0.09;
    p.loopSpeed = 0.35;
    p.effectiveDiffusivity = 0.05;
    EXPECT_DEATH(CfdSolver(layout(), p), "stability");
}

} // namespace
} // namespace ecolo::thermal
