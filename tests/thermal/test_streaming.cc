/**
 * @file
 * Tests for the streaming recurrent thermal kernel: exponential-mode
 * fitting (Prony), year-long equivalence against the dense reference,
 * fallback when the fit misses tolerance, and kernel-aware checkpointing.
 */

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "power/layout.hh"
#include "thermal/factorization.hh"
#include "thermal/heat_matrix.hh"
#include "util/state_io.hh"

namespace {

using namespace ecolo;
using namespace ecolo::thermal;

power::DataCenterLayout
smallLayout()
{
    power::DataCenterLayout::Params params;
    params.numRacks = 2;
    params.serversPerRack = 6;
    return power::DataCenterLayout(params);
}

/** The analytic temporal kernel: increments of 1 - exp(-t/T). */
std::vector<double>
analyticKernel(double rise_minutes, std::size_t horizon)
{
    std::vector<double> kernel(horizon);
    for (std::size_t tau = 0; tau < horizon; ++tau) {
        const double t0 = static_cast<double>(tau);
        kernel[tau] = std::exp(-t0 / rise_minutes) -
                      std::exp(-(t0 + 1.0) / rise_minutes);
    }
    return kernel;
}

/** Rank-1 tensor with the analytic spatial gains and a chosen kernel. */
HeatDistributionMatrix
rankOneMatrix(const std::vector<double> &kernel)
{
    const auto lay = smallLayout();
    const std::size_t n = lay.numServers();
    const auto base = HeatDistributionMatrix::analyticDefault(
        lay, HeatDistributionMatrix::AnalyticParams(), kernel.size());
    HeatDistributionMatrix matrix(n, kernel.size());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t tau = 0; tau < kernel.size(); ++tau)
                matrix.coeff(i, j, tau) = base.steadyGain(i, j) * kernel[tau];
    return matrix;
}

/** Deterministic pseudo-random power schedule (no RNG dependency). */
class ScheduleGenerator
{
  public:
    explicit ScheduleGenerator(std::size_t num_servers)
        : powers_(num_servers, Kilowatts(0.0))
    {
    }

    const std::vector<Kilowatts> &next()
    {
        for (auto &p : powers_) {
            state_ = state_ * 6364136223846793005ULL +
                     1442695040888963407ULL;
            const double u =
                static_cast<double>(state_ >> 11) * 0x1.0p-53;
            // Mostly idle with occasional near-full-power bursts, like an
            // attack campaign riding on a diurnal tenant load.
            p = Kilowatts(u > 0.9 ? 0.45 + 0.3 * u : 0.05 + 0.25 * u);
        }
        return powers_;
    }

  private:
    std::uint64_t state_ = 0x853c49e6748fea9bULL;
    std::vector<Kilowatts> powers_;
};

// ---------------------------------------------------------------------------
// Exponential-mode fitting (Prony).

TEST(ExponentialFit, AnalyticKernelIsOneExactMode)
{
    // k[tau] = e^(-tau/T) - e^(-(tau+1)/T) = (1 - e^(-1/T)) e^(-tau/T):
    // exactly one mode with decay e^(-1/T), so Prony is machine-exact.
    const double rise = 3.0;
    const auto fit = fitExponentialModes(analyticKernel(rise, 10), 3, 1e-12);
    ASSERT_EQ(fit.modes.size(), 1u);
    EXPECT_NEAR(fit.modes[0].decay, std::exp(-1.0 / rise), 1e-12);
    EXPECT_NEAR(fit.modes[0].weight, 1.0 - std::exp(-1.0 / rise), 1e-12);
    EXPECT_LT(fit.relError, 1e-12);
}

TEST(ExponentialFit, TwoModeSumRecoveredExactly)
{
    std::vector<double> values(10);
    for (std::size_t tau = 0; tau < values.size(); ++tau) {
        const auto t = static_cast<double>(tau);
        values[tau] = 0.7 * std::pow(0.9, t) + 0.3 * std::pow(0.45, t);
    }
    const auto fit = fitExponentialModes(values, 3, 1e-12);
    ASSERT_EQ(fit.modes.size(), 2u);
    EXPECT_LT(fit.relError, 1e-10);
    const double lo = std::min(fit.modes[0].decay, fit.modes[1].decay);
    const double hi = std::max(fit.modes[0].decay, fit.modes[1].decay);
    EXPECT_NEAR(lo, 0.45, 1e-9);
    EXPECT_NEAR(hi, 0.90, 1e-9);
}

TEST(ExponentialFit, ZeroVectorFitsWithZeroModes)
{
    const auto fit =
        fitExponentialModes(std::vector<double>(10, 0.0), 3, 1e-12);
    EXPECT_TRUE(fit.modes.empty());
    EXPECT_EQ(fit.relError, 0.0);
}

TEST(ExponentialFit, NonExponentialShapeReportsResidual)
{
    // 1/t is not a short exponential sum: the fit must admit a real
    // residual rather than claim success.
    std::vector<double> values(10);
    for (std::size_t tau = 0; tau < values.size(); ++tau)
        values[tau] = 1.0 / static_cast<double>(tau + 1);
    const auto fit = fitExponentialModes(values, 3, 1e-12);
    EXPECT_GT(fit.relError, 1e-9);
    EXPECT_LT(fit.relError, 1.0);
}

// ---------------------------------------------------------------------------
// Kernel selection.

TEST(StreamingModel, AnalyticAutoSelectsStreamingKernel)
{
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(smallLayout()));
    EXPECT_EQ(model.requestedKernel(), KernelMode::Auto);
    EXPECT_EQ(model.activeKernel(), KernelMode::Streaming);
    EXPECT_TRUE(model.usesFactorizedKernel());
    EXPECT_GE(model.streamingModeCount(), 1u);
}

TEST(StreamingModel, PoorFitFallsBackToFactorized)
{
    // A rank-1 tensor whose temporal kernel is 1/t: factorizes exactly,
    // but no 3-term exponential sum reaches the streaming tolerance.
    std::vector<double> kernel(10);
    for (std::size_t tau = 0; tau < kernel.size(); ++tau)
        kernel[tau] = 1.0 / static_cast<double>(tau + 1);
    auto matrix = rankOneMatrix(kernel);

    MatrixThermalModel forced(matrix, KernelMode::Streaming);
    EXPECT_EQ(forced.requestedKernel(), KernelMode::Streaming);
    EXPECT_EQ(forced.activeKernel(), KernelMode::Factorized);
    EXPECT_EQ(forced.streamingModeCount(), 0u);

    MatrixThermalModel chosen(std::move(matrix), KernelMode::Auto);
    EXPECT_EQ(chosen.activeKernel(), KernelMode::Factorized);
}

TEST(StreamingModel, KernelModeNamesRoundTrip)
{
    for (KernelMode mode : {KernelMode::Auto, KernelMode::Dense,
                            KernelMode::Factorized, KernelMode::Streaming}) {
        KernelMode parsed = KernelMode::Dense;
        ASSERT_TRUE(parseKernelMode(kernelModeName(mode), parsed));
        EXPECT_EQ(parsed, mode);
    }
    KernelMode untouched = KernelMode::Factorized;
    EXPECT_FALSE(parseKernelMode("warp-drive", untouched));
    EXPECT_EQ(untouched, KernelMode::Factorized);
}

// ---------------------------------------------------------------------------
// Numerical equivalence against the dense reference.

TEST(StreamingModel, MatchesDenseOverYearLongRandomSchedule)
{
    // The acceptance bound for the exact-fit case: the analytic kernel is
    // one machine-exact mode, so a full simulated year of the recurrence
    // (525600 pushes) must stay within 1e-9 C of the dense convolution.
    // The tail subtraction uses the exact departing ring slot, so there
    // is no drift term -- only rounding, which the lambda < 1 contraction
    // keeps bounded.
    auto matrix = HeatDistributionMatrix::analyticDefault(smallLayout());
    MatrixThermalModel dense(matrix, KernelMode::Dense);
    MatrixThermalModel stream(std::move(matrix), KernelMode::Streaming);
    ASSERT_EQ(stream.activeKernel(), KernelMode::Streaming);

    ScheduleGenerator schedule(dense.numServers());
    std::vector<double> dense_rises, stream_rises;
    double worst = 0.0;
    const std::size_t year_minutes = 365 * 24 * 60;
    for (std::size_t m = 0; m < year_minutes; ++m) {
        const auto &powers = schedule.next();
        dense.pushPowers(powers);
        stream.pushPowers(powers);
        // The dense walk is the expensive side; sampling it on a stride
        // coprime to the horizon still visits every ring phase.
        if (m % 37 != 0 && m + 1 != year_minutes)
            continue;
        dense.computeAllRises(dense_rises);
        stream.computeAllRises(stream_rises);
        ASSERT_EQ(dense_rises.size(), stream_rises.size());
        for (std::size_t i = 0; i < dense_rises.size(); ++i)
            worst = std::max(worst,
                             std::abs(dense_rises[i] - stream_rises[i]));
    }
    EXPECT_LT(worst, 1e-9);
}

TEST(StreamingModel, InexactFitStaysWithinLooseBound)
{
    // Perturb the analytic kernel so the exponential fit is good but not
    // exact (residual above the default 1e-9 gate). Admitted under a
    // loosened tolerance, the streaming rises must stay within the 1e-6 C
    // acceptance bound of the dense reference.
    auto kernel = analyticKernel(3.0, 10);
    for (std::size_t tau = 0; tau < kernel.size(); ++tau)
        kernel[tau] += 1e-8 * std::sin(static_cast<double>(tau) * 1.7);
    auto matrix = rankOneMatrix(kernel);

    FactorizationOptions loose;
    loose.streamingTolerance = 1e-6;
    MatrixThermalModel dense(matrix, KernelMode::Dense);
    MatrixThermalModel stream(std::move(matrix), KernelMode::Streaming,
                              loose);
    ASSERT_EQ(stream.activeKernel(), KernelMode::Streaming);

    ScheduleGenerator schedule(dense.numServers());
    std::vector<double> dense_rises, stream_rises;
    double worst = 0.0;
    for (std::size_t m = 0; m < 60 * 24 * 30; ++m) {
        const auto &powers = schedule.next();
        dense.pushPowers(powers);
        stream.pushPowers(powers);
        if (m % 13 != 0)
            continue;
        dense.computeAllRises(dense_rises);
        stream.computeAllRises(stream_rises);
        for (std::size_t i = 0; i < dense_rises.size(); ++i)
            worst = std::max(worst,
                             std::abs(dense_rises[i] - stream_rises[i]));
    }
    EXPECT_LT(worst, 1e-6);
}

TEST(StreamingModel, ResetClearsRecurrenceState)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(smallLayout());
    MatrixThermalModel model(std::move(matrix), KernelMode::Streaming);
    ASSERT_EQ(model.activeKernel(), KernelMode::Streaming);

    ScheduleGenerator schedule(model.numServers());
    for (int m = 0; m < 50; ++m)
        model.pushPowers(schedule.next());
    EXPECT_GT(model.maxInletRise().value(), 0.0);

    model.reset();
    std::vector<double> rises;
    model.computeAllRises(rises);
    for (double r : rises)
        EXPECT_EQ(r, 0.0);
    EXPECT_EQ(model.maxInletRise().value(), 0.0);
}

// ---------------------------------------------------------------------------
// Checkpointing under the streaming kernel.

TEST(StreamingCheckpoint, ModelRoundTripContinuesBitIdentically)
{
    const auto matrix =
        HeatDistributionMatrix::analyticDefault(smallLayout());
    MatrixThermalModel original(matrix, KernelMode::Streaming);
    ASSERT_EQ(original.activeKernel(), KernelMode::Streaming);

    ScheduleGenerator warmup(original.numServers());
    for (int m = 0; m < 500; ++m)
        original.pushPowers(warmup.next());

    std::stringstream state;
    util::StateWriter writer(state);
    original.saveState(writer);
    ASSERT_TRUE(writer.good());

    MatrixThermalModel resumed(matrix, KernelMode::Streaming);
    util::StateReader reader(state);
    resumed.loadState(reader);
    ASSERT_TRUE(reader.ok()) << reader.status().error().describe();

    // Continue both with identical inputs: every rise must be the exact
    // same bit pattern (the recurrence never replays history).
    ScheduleGenerator tail_a(original.numServers());
    ScheduleGenerator tail_b(original.numServers());
    std::vector<double> rises_a, rises_b;
    for (int m = 0; m < 100; ++m) {
        original.pushPowers(tail_a.next());
        resumed.pushPowers(tail_b.next());
        original.computeAllRises(rises_a);
        resumed.computeAllRises(rises_b);
        ASSERT_EQ(rises_a, rises_b);
    }
}

TEST(StreamingCheckpoint, KernelModeMismatchRejected)
{
    const auto matrix =
        HeatDistributionMatrix::analyticDefault(smallLayout());
    MatrixThermalModel stream(matrix, KernelMode::Streaming);
    ASSERT_EQ(stream.activeKernel(), KernelMode::Streaming);
    ScheduleGenerator schedule(stream.numServers());
    for (int m = 0; m < 20; ++m)
        stream.pushPowers(schedule.next());

    std::stringstream state;
    util::StateWriter writer(state);
    stream.saveState(writer);
    ASSERT_TRUE(writer.good());

    MatrixThermalModel dense(matrix, KernelMode::Dense);
    util::StateReader reader(state);
    dense.loadState(reader);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error().code, util::ErrorCode::StateError);
    EXPECT_NE(reader.status().error().message.find("kernel mode mismatch"),
              std::string::npos);
}

TEST(StreamingCheckpoint, SimulationResumesBitIdenticallyUnderStreaming)
{
    auto config = core::SimulationConfig::paperDefault();
    config.seed = 4242;
    config.thermalMode = KernelMode::Streaming;
    const auto make_policy = [&] {
        return core::makeMyopicPolicy(config, Kilowatts(7.4));
    };
    const auto tail = [](core::Simulation &sim, MinuteIndex minutes) {
        std::vector<double> values;
        sim.setMinuteCallback([&](const core::MinuteRecord &r) {
            values.push_back(r.maxInlet.value());
            values.push_back(r.meteredTotal.value());
            values.push_back(r.batterySoc);
        });
        sim.run(minutes);
        return values;
    };

    core::Simulation reference(config, make_policy());
    reference.run(600);
    const auto expected = tail(reference, 600);

    std::stringstream checkpoint;
    {
        core::Simulation first(config, make_policy());
        first.run(600);
        util::StateWriter writer(checkpoint);
        writer.header();
        first.saveState(writer);
        ASSERT_TRUE(writer.good());
    }
    core::Simulation resumed(config, make_policy());
    util::StateReader reader(checkpoint);
    reader.header();
    resumed.loadState(reader);
    ASSERT_TRUE(reader.ok()) << reader.status().error().describe();
    EXPECT_EQ(resumed.now(), 600);
    EXPECT_EQ(tail(resumed, 600), expected);
}

TEST(StreamingCheckpoint, CrossKernelSimulationCheckpointRejected)
{
    auto config = core::SimulationConfig::paperDefault();
    config.seed = 4242;
    config.thermalMode = KernelMode::Streaming;

    std::stringstream checkpoint;
    {
        core::Simulation sim(
            config, core::makeMyopicPolicy(config, Kilowatts(7.4)));
        sim.run(100);
        util::StateWriter writer(checkpoint);
        writer.header();
        sim.saveState(writer);
        ASSERT_TRUE(writer.good());
    }

    auto dense_config = config;
    dense_config.thermalMode = KernelMode::Dense;
    core::Simulation resumed(
        dense_config,
        core::makeMyopicPolicy(dense_config, Kilowatts(7.4)));
    util::StateReader reader(checkpoint);
    reader.header();
    resumed.loadState(reader);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error().code, util::ErrorCode::StateError);
    EXPECT_NE(reader.status().error().message.find("kernel"),
              std::string::npos);
}

} // namespace
