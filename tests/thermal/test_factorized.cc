/**
 * @file
 * Equivalence tests for the factorized thermal kernel and bit-identity
 * tests for the parallel CFD matrix extraction.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "power/layout.hh"
#include "thermal/factorization.hh"
#include "thermal/heat_matrix.hh"
#include "util/parallel.hh"

namespace ecolo::thermal {
namespace {

power::DataCenterLayout
layout()
{
    return power::DataCenterLayout();
}

/** A rank-3 tensor: three separable spatial/temporal components. */
HeatDistributionMatrix
rankThreeMatrix(std::size_t horizon = 10)
{
    const auto lay = layout();
    const std::size_t n = lay.numServers();
    auto base = HeatDistributionMatrix::analyticDefault(
        lay, HeatDistributionMatrix::AnalyticParams(), horizon);
    HeatDistributionMatrix matrix(n, horizon);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double g = base.steadyGain(i, j);
            for (std::size_t tau = 0; tau < horizon; ++tau) {
                const double t = static_cast<double>(tau + 1);
                matrix.coeff(i, j, tau) =
                    g * (0.6 / t +
                         0.3 / (t * t) * (1.0 + 0.5 * ((i + j) % 3)) +
                         0.1 * (tau == 0 ? 1.0 : 0.0) * ((j % 2) + 1));
            }
        }
    }
    return matrix;
}

/**
 * A recorded "attack trace": diurnal-ish benign power with an attack
 * burst in the middle, exercising partial fill, steady state and decay.
 */
std::vector<std::vector<Kilowatts>>
attackTrace(std::size_t num_servers, std::size_t num_minutes)
{
    std::vector<std::vector<Kilowatts>> trace;
    trace.reserve(num_minutes);
    for (std::size_t m = 0; m < num_minutes; ++m) {
        std::vector<Kilowatts> powers(num_servers);
        for (std::size_t j = 0; j < num_servers; ++j) {
            double kw = 0.10 +
                        0.05 * std::sin(0.2 * static_cast<double>(m + j));
            if (m >= 10 && m < 20 && j < 4)
                kw += 0.45; // the attacker's burst on its four servers
            powers[j] = Kilowatts(kw);
        }
        trace.push_back(std::move(powers));
    }
    return trace;
}

TEST(Factorization, AnalyticMatrixIsRankOne)
{
    const auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    const auto factors = TemporalFactorization::compute(matrix);
    EXPECT_EQ(factors.rank(), 1u);
    // The eigensolver's residual floor is ~sqrt(eps), not exact zero.
    EXPECT_LT(factors.relError(), 1e-6);
}

TEST(Factorization, RankThreeTensorNeedsThreeTerms)
{
    const auto factors =
        TemporalFactorization::compute(rankThreeMatrix());
    EXPECT_EQ(factors.rank(), 3u);
    EXPECT_LT(factors.relError(), 1e-6);
}

TEST(Factorization, MaxRankCapIsHonored)
{
    FactorizationOptions opts;
    opts.maxRank = 1;
    const auto factors =
        TemporalFactorization::compute(rankThreeMatrix(), opts);
    EXPECT_EQ(factors.rank(), 1u);
    EXPECT_GT(factors.relError(), 1e-6); // truncation is lossy here
    EXPECT_LT(factors.relError(), 1.0);
}

TEST(Factorization, ReconstructsTensorWithinTolerance)
{
    const auto matrix = rankThreeMatrix();
    const auto factors = TemporalFactorization::compute(matrix);
    const std::size_t n = matrix.numServers();
    for (std::size_t i = 0; i < n; i += 7) {
        for (std::size_t j = 0; j < n; j += 5) {
            for (std::size_t tau = 0; tau < matrix.horizon(); ++tau) {
                double rebuilt = 0.0;
                for (std::size_t r = 0; r < factors.rank(); ++r) {
                    rebuilt += factors.spatial(r)[i * n + j] *
                               factors.temporal(r)[tau];
                }
                EXPECT_NEAR(rebuilt, matrix.coeff(i, j, tau), 1e-12);
            }
        }
    }
}

TEST(FactorizedModel, AnalyticModelSelectsFactorizedKernel)
{
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(layout()));
    EXPECT_TRUE(model.usesFactorizedKernel());
    EXPECT_EQ(model.factorizationRank(), 1u);
}

TEST(FactorizedModel, DenseModeDisablesFactorization)
{
    MatrixThermalModel model(
        HeatDistributionMatrix::analyticDefault(layout()),
        ThermalComputeMode::Dense);
    EXPECT_FALSE(model.usesFactorizedKernel());
    EXPECT_EQ(model.factorizationRank(), 0u);
}

TEST(FactorizedModel, RisesMatchDenseOverAttackTrace)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    MatrixThermalModel dense(matrix, ThermalComputeMode::Dense);
    MatrixThermalModel fast(std::move(matrix), ThermalComputeMode::Auto);
    ASSERT_TRUE(fast.usesFactorizedKernel());

    std::vector<double> dense_rises, fast_rises;
    for (const auto &powers : attackTrace(dense.numServers(), 30)) {
        dense.pushPowers(powers);
        fast.pushPowers(powers);
        dense.computeAllRises(dense_rises);
        fast.computeAllRises(fast_rises);
        ASSERT_EQ(dense_rises.size(), fast_rises.size());
        for (std::size_t i = 0; i < dense_rises.size(); ++i)
            EXPECT_NEAR(dense_rises[i], fast_rises[i], 1e-9);
        EXPECT_NEAR(dense.maxInletRise().value(),
                    fast.maxInletRise().value(), 1e-9);
    }
}

TEST(FactorizedModel, LowRankRisesMatchDenseOverAttackTrace)
{
    auto matrix = rankThreeMatrix();
    MatrixThermalModel dense(matrix, ThermalComputeMode::Dense);
    MatrixThermalModel fast(std::move(matrix), ThermalComputeMode::Auto);
    ASSERT_TRUE(fast.usesFactorizedKernel());
    EXPECT_EQ(fast.factorizationRank(), 3u);

    std::vector<double> dense_rises, fast_rises;
    for (const auto &powers : attackTrace(dense.numServers(), 30)) {
        dense.pushPowers(powers);
        fast.pushPowers(powers);
        dense.computeAllRises(dense_rises);
        fast.computeAllRises(fast_rises);
        for (std::size_t i = 0; i < dense_rises.size(); ++i)
            EXPECT_NEAR(dense_rises[i], fast_rises[i], 1e-9);
    }
}

TEST(FactorizedModel, FullRankTensorFallsBackToDense)
{
    // A tensor whose temporal shape differs per (i, j) pair has no
    // low-rank structure: Auto must keep the exact dense kernel.
    const auto lay = layout();
    const std::size_t n = lay.numServers();
    const std::size_t horizon = 10;
    HeatDistributionMatrix matrix(n, horizon);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t tau = 0; tau < horizon; ++tau) {
                matrix.coeff(i, j, tau) =
                    0.01 + 0.001 * std::sin(
                               static_cast<double>(i * 131 + j * 17 +
                                                   tau * (j + 3)));
            }
        }
    }
    MatrixThermalModel model(std::move(matrix), ThermalComputeMode::Auto);
    EXPECT_FALSE(model.usesFactorizedKernel());
}

TEST(FactorizedModel, SteadyGainCacheMatchesDirectSums)
{
    const auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    const std::size_t n = matrix.numServers();
    for (std::size_t i = 0; i < n; i += 3) {
        double total = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t tau = 0; tau < matrix.horizon(); ++tau)
                sum += matrix.coeff(i, j, tau);
            EXPECT_DOUBLE_EQ(matrix.steadyGain(i, j), sum);
            total += sum;
        }
        EXPECT_NEAR(matrix.totalSteadyGain(i), total, 1e-12);
    }
}

TEST(FactorizedModel, GainCacheInvalidatedByCoeffWrite)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    const double before = matrix.steadyGain(0, 0);
    matrix.coeff(0, 0, 0) += 1.0;
    EXPECT_NEAR(matrix.steadyGain(0, 0), before + 1.0, 1e-12);
    EXPECT_NEAR(matrix.totalSteadyGain(0),
                [&] {
                    double total = 0.0;
                    for (std::size_t j = 0; j < matrix.numServers(); ++j)
                        total += matrix.steadyGain(0, j);
                    return total;
                }(),
                1e-12);
}

TEST(ThermalParallel, CfdExtractionBitIdenticalToSerial)
{
    // Small layout + coarse grid keep the two extractions fast.
    power::DataCenterLayout::Params lp;
    lp.numRacks = 1;
    lp.serversPerRack = 6;
    const power::DataCenterLayout lay(lp);
    CfdParams params;
    params.cellSize = 0.3;
    params.dt = 0.12;
    const std::vector<Kilowatts> baseline(lay.numServers(),
                                          Kilowatts(0.15));

    util::ThreadPool::setGlobalThreads(1);
    const auto serial = HeatDistributionMatrix::extractFromCfd(
        lay, params, baseline, Kilowatts(1.0), /*horizon=*/2,
        /*settle=*/minutes(1));
    util::ThreadPool::setGlobalThreads(4);
    const auto parallel = HeatDistributionMatrix::extractFromCfd(
        lay, params, baseline, Kilowatts(1.0), /*horizon=*/2,
        /*settle=*/minutes(1));
    util::ThreadPool::setGlobalThreads(util::ThreadPool::defaultThreads());

    ASSERT_EQ(serial.numServers(), parallel.numServers());
    ASSERT_EQ(serial.horizon(), parallel.horizon());
    for (std::size_t i = 0; i < serial.numServers(); ++i) {
        for (std::size_t j = 0; j < serial.numServers(); ++j) {
            for (std::size_t tau = 0; tau < serial.horizon(); ++tau) {
                EXPECT_EQ(serial.coeff(i, j, tau),
                          parallel.coeff(i, j, tau))
                    << "i=" << i << " j=" << j << " tau=" << tau;
            }
        }
    }
}

} // namespace
} // namespace ecolo::thermal
