/** @file Unit tests for the heat-distribution matrix model. */

#include <gtest/gtest.h>

#include "power/layout.hh"
#include "thermal/heat_matrix.hh"

namespace ecolo::thermal {
namespace {

power::DataCenterLayout
layout()
{
    return power::DataCenterLayout();
}

TEST(HeatMatrix, AnalyticDimensions)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    EXPECT_EQ(m.numServers(), 40u);
    EXPECT_EQ(m.horizon(), 10u);
}

TEST(HeatMatrix, AllCoefficientsNonNegative)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    for (std::size_t i = 0; i < m.numServers(); ++i)
        for (std::size_t j = 0; j < m.numServers(); ++j)
            for (std::size_t tau = 0; tau < m.horizon(); ++tau)
                EXPECT_GE(m.coeff(i, j, tau), 0.0);
}

TEST(HeatMatrix, SelfCouplingDominates)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    for (std::size_t i = 0; i < m.numServers(); ++i)
        for (std::size_t j = 0; j < m.numServers(); ++j)
            if (i != j)
                EXPECT_GT(m.steadyGain(i, i), m.steadyGain(i, j));
}

TEST(HeatMatrix, SameRackCouplingDecaysWithDistance)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    // Server 10 (rack 0): neighbors 11 vs far 19.
    EXPECT_GT(m.steadyGain(10, 11), m.steadyGain(10, 19));
}

TEST(HeatMatrix, CrossRackWeakerThanNeighbor)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    // Server 5 (rack 0): same-rack neighbor 6 vs rack-1 server 25.
    EXPECT_GT(m.steadyGain(5, 6), m.steadyGain(5, 25));
}

TEST(HeatMatrix, TopSlotsCoupleMoreStrongly)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    // Total gain of the top slot exceeds the bottom slot's.
    EXPECT_GT(m.totalSteadyGain(19), m.totalSteadyGain(0));
}

TEST(HeatMatrix, TemporalKernelBuildsUpOverMinutes)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    // Early response is the largest increment (1 - e^{-t/T} kernel).
    EXPECT_GT(m.coeff(0, 0, 0), m.coeff(0, 0, 5));
    EXPECT_GT(m.coeff(0, 0, 5), m.coeff(0, 0, 9));
}

TEST(HeatMatrix, SteadyGainIsModestWithContainment)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    for (std::size_t i = 0; i < m.numServers(); ++i) {
        // At 6 kW total (0.15 kW/server), the matrix contribution should
        // stay well below 2 K -- with containment, inlet ~ supply.
        EXPECT_LT(m.totalSteadyGain(i) * 0.15, 2.0);
    }
}

TEST(MatrixModel, ConstantPowerReachesSteadyGain)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    const double expected = matrix.totalSteadyGain(0) * 0.15;
    MatrixThermalModel model(std::move(matrix));
    const std::vector<Kilowatts> powers(40, Kilowatts(0.15));
    for (int m = 0; m < 15; ++m)
        model.pushPowers(powers);
    EXPECT_NEAR(model.inletRise(0).value(), expected, 1e-9);
}

TEST(MatrixModel, RiseIsLinearInPower)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    MatrixThermalModel model1(matrix);
    MatrixThermalModel model2(std::move(matrix));
    const std::vector<Kilowatts> p1(40, Kilowatts(0.1));
    const std::vector<Kilowatts> p2(40, Kilowatts(0.2));
    for (int m = 0; m < 12; ++m) {
        model1.pushPowers(p1);
        model2.pushPowers(p2);
    }
    EXPECT_NEAR(model2.inletRise(5).value(),
                2.0 * model1.inletRise(5).value(), 1e-9);
}

TEST(MatrixModel, ResponseDecaysAfterHeatRemoved)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    MatrixThermalModel model(std::move(matrix));
    std::vector<Kilowatts> hot(40, Kilowatts(0.2));
    std::vector<Kilowatts> cold(40, Kilowatts(0.0));
    for (int m = 0; m < 10; ++m)
        model.pushPowers(hot);
    const double peak = model.inletRise(0).value();
    for (int m = 0; m < 10; ++m)
        model.pushPowers(cold);
    EXPECT_DOUBLE_EQ(model.inletRise(0).value(), 0.0);
    EXPECT_GT(peak, 0.0);
}

TEST(MatrixModel, MaxRiseAtLeastAnyServer)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    MatrixThermalModel model(std::move(matrix));
    std::vector<Kilowatts> powers(40, Kilowatts(0.1));
    powers[7] = Kilowatts(0.45); // one hot attacker server
    for (int m = 0; m < 10; ++m)
        model.pushPowers(powers);
    const double max_rise = model.maxInletRise().value();
    for (std::size_t i = 0; i < 40; ++i)
        EXPECT_LE(model.inletRise(i).value(), max_rise + 1e-12);
}

TEST(MatrixModel, ResetClearsHistory)
{
    auto matrix = HeatDistributionMatrix::analyticDefault(layout());
    MatrixThermalModel model(std::move(matrix));
    model.pushPowers(std::vector<Kilowatts>(40, Kilowatts(0.2)));
    model.reset();
    EXPECT_DOUBLE_EQ(model.maxInletRise().value(), 0.0);
}

TEST(HeatMatrixDeathTest, IndexOutOfRange)
{
    const auto m = HeatDistributionMatrix::analyticDefault(layout());
    EXPECT_DEATH(m.coeff(40, 0, 0), "out of range");
    EXPECT_DEATH(m.coeff(0, 0, 10), "out of range");
}

} // namespace
} // namespace ecolo::thermal
