/** @file Unit tests for the cooling system / lumped room model. */

#include <gtest/gtest.h>

#include "thermal/cooling.hh"

namespace ecolo::thermal {
namespace {

CoolingParams
defaults()
{
    CoolingParams p;
    p.capacity = Kilowatts(8.0);
    p.supplySetPoint = Celsius(27.0);
    return p;
}

TEST(Cooling, StaysAtSetPointUnderCapacity)
{
    CoolingSystem cooling(defaults());
    for (int m = 0; m < 60; ++m)
        cooling.step(Kilowatts(6.0), minutes(1));
    EXPECT_DOUBLE_EQ(cooling.overloadDelta().value(), 0.0);
    EXPECT_DOUBLE_EQ(cooling.supplyTemperature().value(), 27.0);
    EXPECT_FALSE(cooling.overloaded());
}

TEST(Cooling, OverloadRaisesSupplyTemperature)
{
    CoolingSystem cooling(defaults());
    cooling.step(Kilowatts(9.0), minutes(1));
    EXPECT_TRUE(cooling.overloaded());
    EXPECT_GT(cooling.supplyTemperature().value(), 27.0);
    EXPECT_NEAR(cooling.lastExcessHeat().value(), 1.0, 1e-9);
}

TEST(Cooling, OneKilowattOverloadCrosses32InUnderFourMinutes)
{
    // The paper's headline number (Fig. 11(a)): 27 C -> 32 C in < 4 min
    // with 1 kW of overload.
    CoolingSystem cooling(defaults());
    int minutes_to_cross = 0;
    while (cooling.supplyTemperature() < Celsius(32.0) &&
           minutes_to_cross < 30) {
        cooling.step(Kilowatts(9.0), minutes(1));
        ++minutes_to_cross;
    }
    EXPECT_LE(minutes_to_cross, 4);
    EXPECT_GE(minutes_to_cross, 2); // not instantaneous either
}

TEST(Cooling, TimeToReachMatchesStepping)
{
    CoolingSystem cooling(defaults());
    const Seconds predicted =
        cooling.timeToReach(Celsius(32.0), Kilowatts(1.0), Celsius(27.0));
    // Step with 9 kW total (1 kW above nameplate) at fine resolution.
    CoolingSystem stepped(defaults());
    double t = 0.0;
    while (stepped.supplyTemperature() < Celsius(32.0)) {
        stepped.step(Kilowatts(9.0), Seconds(1.0));
        t += 1.0;
    }
    EXPECT_NEAR(t, predicted.value(), 10.0);
}

TEST(Cooling, HigherOverloadIsFaster)
{
    CoolingSystem cooling(defaults());
    const double t1 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(1.0), Celsius(27.0)).value();
    const double t3 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(3.0), Celsius(27.0)).value();
    EXPECT_LT(t3, t1 / 2.2);
}

TEST(Cooling, HotterStartIsFaster)
{
    CoolingSystem cooling(defaults());
    const double from27 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(1.0), Celsius(27.0)).value();
    const double from29 = cooling
        .timeToReach(Celsius(32.0), Kilowatts(1.0), Celsius(29.0)).value();
    EXPECT_LT(from29, from27);
}

TEST(Cooling, TimeToReachZeroOverloadIsForever)
{
    CoolingSystem cooling(defaults());
    EXPECT_GT(toHours(cooling.timeToReach(Celsius(32.0), Kilowatts(0.0),
                                          Celsius(27.0))),
              1e6);
}

TEST(Cooling, RecoversAfterOverload)
{
    CoolingSystem cooling(defaults());
    for (int m = 0; m < 5; ++m)
        cooling.step(Kilowatts(9.0), minutes(1));
    const double hot = cooling.overloadDelta().value();
    EXPECT_GT(hot, 3.0);
    for (int m = 0; m < 60; ++m)
        cooling.step(Kilowatts(5.0), minutes(1));
    EXPECT_LT(cooling.overloadDelta().value(), 0.5);
}

TEST(Cooling, RecoveryRateLimitedBySpareCapacity)
{
    CoolingSystem cooling(defaults());
    cooling.setOverloadDelta(CelsiusDelta(10.0));
    // With load just barely under effective capacity, pull-down is slow.
    cooling.step(Kilowatts(7.9), minutes(5));
    EXPECT_GT(cooling.overloadDelta().value(), 5.0);
}

TEST(Cooling, CapacityDeratesWhenHot)
{
    CoolingSystem cooling(defaults());
    EXPECT_DOUBLE_EQ(cooling.effectiveCapacity().value(), 8.0);
    cooling.setOverloadDelta(CelsiusDelta(10.0));
    EXPECT_NEAR(cooling.effectiveCapacity().value(), 8.0 * 0.9, 1e-9);
}

TEST(Cooling, DeratingHasFloor)
{
    CoolingParams p = defaults();
    p.maxOverload = CelsiusDelta(40.0);
    CoolingSystem cooling(p);
    cooling.setOverloadDelta(CelsiusDelta(40.0));
    EXPECT_NEAR(cooling.effectiveCapacity().value(), 8.0 * 0.7, 1e-9);
}

TEST(Cooling, DeratingSustainsRunawayDespiteCapping)
{
    // The Fig. 8 mechanism: after capping, the total heat (7.8 kW) is
    // below nameplate (8 kW) but above the derated capacity once the room
    // is hot, so the temperature keeps climbing toward shutdown.
    CoolingSystem cooling(defaults());
    cooling.setOverloadDelta(CelsiusDelta(12.0)); // 39 C, emergency past
    const double before = cooling.overloadDelta().value();
    for (int m = 0; m < 10; ++m)
        cooling.step(Kilowatts(7.8), minutes(1));
    EXPECT_GT(cooling.overloadDelta().value(), before);
}

TEST(Cooling, OverloadCeilingEnforced)
{
    CoolingSystem cooling(defaults());
    for (int m = 0; m < 600; ++m)
        cooling.step(Kilowatts(20.0), minutes(1));
    EXPECT_LE(cooling.overloadDelta().value(),
              cooling.params().maxOverload.value() + 1e-9);
}

TEST(Cooling, ResetClearsState)
{
    CoolingSystem cooling(defaults());
    cooling.step(Kilowatts(12.0), minutes(5));
    cooling.reset();
    EXPECT_DOUBLE_EQ(cooling.overloadDelta().value(), 0.0);
    EXPECT_FALSE(cooling.overloaded());
}

TEST(Cooling, ExtraCapacityDelaysCrossing)
{
    CoolingParams more = defaults();
    more.capacity = Kilowatts(8.8); // +10% cooling capacity
    CoolingSystem base(defaults()), upgraded(more);
    const double t_base = base
        .timeToReach(Celsius(32.0), Kilowatts(1.0), Celsius(27.0)).value();
    // Same 9 kW total load means only 0.2 kW overload for the upgraded
    // system.
    const double t_up = upgraded
        .timeToReach(Celsius(32.0), Kilowatts(0.2), Celsius(27.0)).value();
    EXPECT_GT(t_up, 2.0 * t_base);
}

} // namespace
} // namespace ecolo::thermal
