/** @file Unit tests for the ThermalEnvironment facade. */

#include <gtest/gtest.h>

#include "power/layout.hh"
#include "thermal/environment.hh"

namespace ecolo::thermal {
namespace {

ThermalEnvironment
makeEnv()
{
    power::DataCenterLayout layout;
    CoolingParams cooling;
    cooling.capacity = Kilowatts(8.0);
    return ThermalEnvironment(
        HeatDistributionMatrix::analyticDefault(layout), cooling);
}

TEST(Environment, BaselineInletNearSetPoint)
{
    auto env = makeEnv();
    const std::vector<Kilowatts> heat(40, Kilowatts(0.15)); // 6 kW
    for (int m = 0; m < 20; ++m)
        env.stepMinute(heat);
    EXPECT_LT(env.maxInletTemperature().value(), 29.0);
    EXPECT_GE(env.maxInletTemperature().value(), 27.0);
    EXPECT_DOUBLE_EQ(env.supplyTemperature().value(), 27.0);
}

TEST(Environment, MeanInletBetweenSupplyAndMax)
{
    auto env = makeEnv();
    const std::vector<Kilowatts> heat(40, Kilowatts(0.18));
    for (int m = 0; m < 10; ++m)
        env.stepMinute(heat);
    EXPECT_GE(env.meanInletTemperature(), env.supplyTemperature());
    EXPECT_LE(env.meanInletTemperature(), env.maxInletTemperature());
}

TEST(Environment, OverloadDrivesEmergencyTemperature)
{
    auto env = makeEnv();
    // 9 kW against 8 kW capacity: inlet passes 32 C within a few minutes.
    const std::vector<Kilowatts> heat(40, Kilowatts(0.225));
    int minutes_to_cross = 0;
    while (env.maxInletTemperature() < Celsius(32.0) &&
           minutes_to_cross < 30) {
        env.stepMinute(heat);
        ++minutes_to_cross;
    }
    EXPECT_LE(minutes_to_cross, 5);
}

TEST(Environment, ConcentratedAttackHeatsHotspotFirst)
{
    auto env = makeEnv();
    std::vector<Kilowatts> heat(40, Kilowatts(0.15));
    for (std::size_t i = 0; i < 4; ++i)
        heat[i] = Kilowatts(0.45); // attacker servers at 450 W
    for (int m = 0; m < 10; ++m)
        env.stepMinute(heat);
    // Attacker's own inlets (0..3) are hotter than a far server's.
    EXPECT_GT(env.inletTemperature(1).value(),
              env.inletTemperature(30).value());
}

TEST(Environment, RecoversAfterHeatRemoved)
{
    auto env = makeEnv();
    const std::vector<Kilowatts> hot(40, Kilowatts(0.25));
    for (int m = 0; m < 6; ++m)
        env.stepMinute(hot);
    const double peak = env.maxInletTemperature().value();
    const std::vector<Kilowatts> cool(40, Kilowatts(0.10));
    for (int m = 0; m < 60; ++m)
        env.stepMinute(cool);
    EXPECT_LT(env.maxInletTemperature().value(), peak - 2.0);
}

TEST(Environment, ResetRestoresBaseline)
{
    auto env = makeEnv();
    const std::vector<Kilowatts> hot(40, Kilowatts(0.25));
    for (int m = 0; m < 10; ++m)
        env.stepMinute(hot);
    env.reset();
    EXPECT_DOUBLE_EQ(env.supplyTemperature().value(), 27.0);
    EXPECT_DOUBLE_EQ(env.maxInletTemperature().value(), 27.0);
}

TEST(EnvironmentDeathTest, WrongHeatVectorSize)
{
    auto env = makeEnv();
    EXPECT_DEATH(env.stepMinute(std::vector<Kilowatts>(10)), "mismatch");
}

} // namespace
} // namespace ecolo::thermal

namespace ecolo::thermal {
namespace {

TEST(Environment, OutletAboveInlet)
{
    auto env = makeEnv();
    std::vector<Kilowatts> heat(40, Kilowatts(0.15));
    for (int m = 0; m < 5; ++m)
        env.stepMinute(heat);
    // Paper Eqn. (1): T_inlet < T_outlet. At 150 W and the default
    // 15 W/K server airflow, the rise is 10 K.
    for (std::size_t i = 0; i < 40; ++i) {
        EXPECT_GT(env.outletTemperature(i).value(),
                  env.inletTemperature(i).value());
        EXPECT_NEAR((env.outletTemperature(i) -
                     env.inletTemperature(i)).value(),
                    10.0, 1e-9);
    }
}

TEST(Environment, OutletScalesWithServerHeat)
{
    auto env = makeEnv();
    std::vector<Kilowatts> heat(40, Kilowatts(0.10));
    heat[7] = Kilowatts(0.45); // one attacking server
    env.stepMinute(heat);
    const double hot_rise =
        (env.outletTemperature(7) - env.inletTemperature(7)).value();
    const double cool_rise =
        (env.outletTemperature(8) - env.inletTemperature(8)).value();
    EXPECT_NEAR(hot_rise, 30.0, 1e-9);  // 450 W / 15 W/K
    EXPECT_NEAR(cool_rise, 100.0 / 15.0, 1e-9);
}

TEST(Environment, OutletBeforeAnyStepIsInlet)
{
    auto env = makeEnv();
    EXPECT_DOUBLE_EQ(env.outletTemperature(0).value(),
                     env.inletTemperature(0).value());
}

} // namespace
} // namespace ecolo::thermal
