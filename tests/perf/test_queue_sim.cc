/** @file Unit tests for the M/M/k queue simulator and its agreement with
 * the calibrated latency surface. */

#include <gtest/gtest.h>

#include "perf/latency_model.hh"
#include "perf/queue_sim.hh"

namespace ecolo::perf {
namespace {

QueueSimParams
base()
{
    QueueSimParams p;
    p.numServers = 12;
    p.baseServiceRatePerServer = 50.0;
    p.simulatedSeconds = 400.0;
    p.warmupSeconds = 40.0;
    return p;
}

TEST(QueueSim, DeterministicForSameSeed)
{
    const auto a = simulateQueue(base(), Rng(3));
    const auto b = simulateQueue(base(), Rng(3));
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_DOUBLE_EQ(a.p95Ms, b.p95Ms);
}

TEST(QueueSim, LightLoadSojournNearServiceTime)
{
    auto p = base();
    p.offeredUtilization = 0.1;
    const auto r = simulateQueue(p, Rng(5));
    ASSERT_GT(r.completedRequests, 1000u);
    // Mean service time is 20 ms; with rho = 0.1 queueing is negligible.
    EXPECT_NEAR(r.meanMs, 20.0, 2.0);
    EXPECT_EQ(r.backlog, 0u);
}

TEST(QueueSim, TailGrowsWithLoad)
{
    double previous = 0.0;
    for (double util : {0.3, 0.6, 0.8, 0.92}) {
        auto p = base();
        p.offeredUtilization = util;
        const auto r = simulateQueue(p, Rng(7));
        EXPECT_GT(r.p95Ms, previous);
        previous = r.p95Ms;
    }
}

TEST(QueueSim, PowerCapInflatesTail)
{
    // The paper's emergency capping scenario: the same workload on a
    // cluster whose power (and so service rate) is cut to 60%.
    auto p = base();
    p.offeredUtilization = 0.55;
    const auto full = simulateQueue(p, Rng(9));
    p.powerFraction = 0.6;
    const auto capped = simulateQueue(p, Rng(9));
    EXPECT_GT(capped.p95Ms, 2.0 * full.p95Ms);
}

TEST(QueueSim, OverloadBuildsBacklog)
{
    auto p = base();
    p.offeredUtilization = 0.9;
    p.powerFraction = 0.6; // capacity 0.6 < offered 0.9: overloaded
    const auto r = simulateQueue(p, Rng(11));
    EXPECT_GT(r.backlog, 0u);
    EXPECT_GT(r.p95Ms, 100.0); // tail blows up within the window
}

TEST(QueueSim, AgreesWithLatencySurfaceQualitatively)
{
    // Both models must rank (utilization, power fraction) configurations
    // the same way -- the property the year-long simulations depend on.
    const LatencyModel surface;
    struct Config { double util, fraction; };
    const Config configs[] = {{0.4, 1.0}, {0.4, 0.7}, {0.7, 0.7}};
    double prev_sim = 0.0, prev_surface = 0.0;
    for (const auto &c : configs) {
        auto p = base();
        p.offeredUtilization = c.util;
        p.powerFraction = c.fraction;
        const auto r = simulateQueue(p, Rng(13));
        const double s = surface.normalizedP95(c.util, c.fraction);
        EXPECT_GT(r.p95Ms, prev_sim);
        EXPECT_GE(s, prev_surface);
        prev_sim = r.p95Ms;
        prev_surface = s;
    }
}

TEST(QueueSim, ZeroLoadIsEmpty)
{
    auto p = base();
    p.offeredUtilization = 0.0;
    const auto r = simulateQueue(p, Rng(15));
    EXPECT_EQ(r.completedRequests, 0u);
    EXPECT_DOUBLE_EQ(r.p95Ms, 0.0);
}

TEST(QueueSimDeathTest, InvalidParamsRejected)
{
    auto p = base();
    p.powerFraction = 0.0;
    EXPECT_DEATH(simulateQueue(p, Rng(1)), "power fraction");
    p = base();
    p.warmupSeconds = p.simulatedSeconds + 1.0;
    EXPECT_DEATH(simulateQueue(p, Rng(1)), "warm-up");
}

} // namespace
} // namespace ecolo::perf
