/** @file Unit tests for the latency model (paper Figs. 14(b) and 15). */

#include <gtest/gtest.h>

#include "perf/latency_model.hh"

namespace ecolo::perf {
namespace {

TEST(LatencyModel, NoCapNoDegradation)
{
    LatencyModel model;
    EXPECT_DOUBLE_EQ(model.normalizedP95(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(model.normalizedP95(0.9, 1.0), 1.0);
}

TEST(LatencyModel, SixtyPercentCapRoughlyQuadruplesLatency)
{
    // Fig. 14(b): capping to 60% of peak under a busy workload takes the
    // 95th-percentile response time to ~4x.
    LatencyModel model;
    const double factor = model.normalizedP95(0.6, 0.6);
    EXPECT_GT(factor, 3.0);
    EXPECT_LT(factor, 5.5);
}

TEST(LatencyModel, MonotoneInPowerReduction)
{
    LatencyModel model;
    double previous = model.normalizedP95(0.7, 1.0);
    for (double f = 0.95; f >= 0.4; f -= 0.05) {
        const double factor = model.normalizedP95(0.7, f);
        EXPECT_GE(factor, previous);
        previous = factor;
    }
}

TEST(LatencyModel, HigherWorkloadDegradesMore)
{
    // Fig. 15: at the same power cap, the busier configuration suffers a
    // larger relative latency hit.
    LatencyModel model;
    EXPECT_GT(model.normalizedP95(0.9, 0.6), model.normalizedP95(0.5, 0.6));
}

TEST(LatencyModel, UncappedLatencyGrowsWithLoad)
{
    LatencyModel model;
    EXPECT_GT(model.uncappedP95Ms(0.9), model.uncappedP95Ms(0.3));
}

TEST(LatencyModel, AbsoluteLatencyComposes)
{
    LatencyModel model;
    const double base = model.uncappedP95Ms(0.6);
    const double capped = model.p95Ms(0.6, 0.6);
    EXPECT_NEAR(capped / base, model.normalizedP95(0.6, 0.6), 1e-12);
}

TEST(LatencyModel, SlaRatioUsesConfiguredSla)
{
    LatencyModelParams params;
    params.slaLatencyMs = 100.0;
    LatencyModel model(params);
    EXPECT_NEAR(model.p95OverSla(0.6, 1.0),
                model.uncappedP95Ms(0.6) / 100.0, 1e-12);
}

TEST(LatencyModel, IdleWorkloadBarelyAffected)
{
    LatencyModel model;
    const double idle_hit = model.normalizedP95(0.05, 0.6);
    const double busy_hit = model.normalizedP95(0.9, 0.6);
    EXPECT_LT(idle_hit, busy_hit);
}

TEST(LatencyModelDeathTest, RejectsBadInputs)
{
    LatencyModel model;
    EXPECT_DEATH(model.normalizedP95(1.5, 0.6), "out of");
    EXPECT_DEATH(model.normalizedP95(0.5, 0.0), "out of");
    EXPECT_DEATH(model.normalizedP95(0.5, -0.1), "out of");
}

} // namespace
} // namespace ecolo::perf
