/** @file Integration tests for the simulation engine as a whole. */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hh"

namespace ecolo::core {
namespace {

TEST(Engine, NoAttackMeansNoEmergencies)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    sim.runDays(7.0);
    EXPECT_EQ(sim.metrics().emergencies(), 0u);
    EXPECT_EQ(sim.metrics().outages(), 0u);
    EXPECT_LT(sim.metrics().maxInlet().max(), 32.0);
}

TEST(Engine, AverageUtilizationNearTarget)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    OnlineStats metered;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        metered.add(r.meteredTotal.value());
    });
    sim.runDays(14.0);
    // 75% of 8 kW = 6 kW (two weeks of a year-long trace; allow slack for
    // seasonal variation within the trace).
    EXPECT_NEAR(metered.mean(), 6.0, 0.5);
}

TEST(Engine, MeteredPowerNeverExceedsCapacity)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config,
                   makeMyopicPolicy(config, Kilowatts(7.4)));
    double max_metered = 0.0;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        max_metered = std::max(max_metered, r.meteredTotal.value());
    });
    sim.runDays(10.0);
    EXPECT_LE(max_metered, config.capacity.value() + 1e-6);
}

TEST(Engine, AttackIsBehindTheMeter)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config,
                   makeMyopicPolicy(config, Kilowatts(7.2)));
    bool saw_attack = false;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.action == AttackAction::Attack &&
            r.attackBatteryPower.value() > 0.5) {
            saw_attack = true;
            // True heat exceeds what the meter reports by the battery
            // injection.
            EXPECT_NEAR(r.actualHeat.value(),
                        r.meteredTotal.value() +
                            r.attackBatteryPower.value(),
                        1e-6);
        }
    });
    sim.runDays(10.0);
    EXPECT_TRUE(saw_attack);
}

TEST(Engine, ChargingShowsActualBelowMetered)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    // Deplete the battery first so the standby policy recharges.
    bool saw_charge_gap = false;
    Simulation sim2(config, makeMyopicPolicy(config, Kilowatts(7.2)));
    sim2.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.action == AttackAction::Charge &&
            r.meteredTotal.value() > r.actualHeat.value() + 0.05) {
            saw_charge_gap = true;
        }
    });
    sim2.runDays(10.0);
    EXPECT_TRUE(saw_charge_gap);
}

TEST(Engine, DeterministicForSameSeed)
{
    auto config = SimulationConfig::paperDefault();
    Simulation a(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    Simulation b(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    std::vector<double> trace_a, trace_b;
    a.setMinuteCallback([&](const MinuteRecord &r) {
        trace_a.push_back(r.actualHeat.value());
    });
    b.setMinuteCallback([&](const MinuteRecord &r) {
        trace_b.push_back(r.actualHeat.value());
    });
    a.runDays(3.0);
    b.runDays(3.0);
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (std::size_t i = 0; i < trace_a.size(); ++i)
        EXPECT_DOUBLE_EQ(trace_a[i], trace_b[i]);
}

TEST(Engine, FactorizedThermalModeMatchesDense)
{
    // The paper-default analytic matrix is exactly separable, so Auto
    // runs the factorized kernel; the campaign trajectory must match the
    // dense reference to rounding error (no behavioral drift).
    auto dense_config = SimulationConfig::paperDefault();
    dense_config.thermalMode = thermal::ThermalComputeMode::Dense;
    auto auto_config = SimulationConfig::paperDefault();
    Simulation dense(dense_config,
                     makeMyopicPolicy(dense_config, Kilowatts(7.3)));
    Simulation fast(auto_config,
                    makeMyopicPolicy(auto_config, Kilowatts(7.3)));
    EXPECT_FALSE(
        dense.thermalEnvironment().matrixModel().usesFactorizedKernel());
    EXPECT_TRUE(
        fast.thermalEnvironment().matrixModel().usesFactorizedKernel());

    std::vector<double> inlet_dense, inlet_fast;
    dense.setMinuteCallback([&](const MinuteRecord &r) {
        inlet_dense.push_back(r.maxInlet.value());
    });
    fast.setMinuteCallback([&](const MinuteRecord &r) {
        inlet_fast.push_back(r.maxInlet.value());
    });
    dense.runDays(3.0);
    fast.runDays(3.0);
    ASSERT_EQ(inlet_dense.size(), inlet_fast.size());
    for (std::size_t i = 0; i < inlet_dense.size(); ++i)
        EXPECT_NEAR(inlet_dense[i], inlet_fast[i], 1e-9);
    EXPECT_EQ(dense.metrics().emergencies(), fast.metrics().emergencies());
    EXPECT_EQ(dense.metrics().outages(), fast.metrics().outages());
}

TEST(Engine, DifferentSeedsDiffer)
{
    auto config_a = SimulationConfig::paperDefault();
    auto config_b = config_a;
    config_b.seed = 777;
    Simulation a(config_a, std::make_unique<StandbyPolicy>());
    Simulation b(config_b, std::make_unique<StandbyPolicy>());
    OnlineStats pa, pb;
    a.setMinuteCallback([&](const MinuteRecord &r) {
        pa.add(r.benignPower.value());
    });
    b.setMinuteCallback([&](const MinuteRecord &r) {
        pb.add(r.benignPower.value());
    });
    a.run(600);
    b.run(600);
    EXPECT_NE(pa.mean(), pb.mean());
}

TEST(Engine, SubscriptionsNeverViolated)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.2)));
    sim.setMinuteCallback([&](const MinuteRecord &) {
        const auto &pdu = sim.pdu();
        for (std::size_t c = 0; c < pdu.numCircuits(); ++c)
            EXPECT_FALSE(pdu.circuitOverSubscription(c, 1e-6));
    });
    sim.runDays(5.0);
}

TEST(Engine, BatterySocStaysInRange)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.0)));
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        EXPECT_GE(r.batterySoc, -1e-9);
        EXPECT_LE(r.batterySoc, 1.0 + 1e-9);
    });
    sim.runDays(7.0);
}

TEST(Engine, MinuteCallbackSeesMonotonicTime)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    MinuteIndex last = -1;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        EXPECT_EQ(r.time, last + 1);
        last = r.time;
    });
    sim.run(500);
    EXPECT_EQ(last, 499);
    EXPECT_EQ(sim.now(), 500);
}

TEST(Engine, GoogleStyleTraceRuns)
{
    auto config = SimulationConfig::paperDefault();
    config.traceKind = TraceKind::GoogleStyle;
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    OnlineStats metered;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        metered.add(r.meteredTotal.value());
    });
    sim.runDays(14.0);
    EXPECT_NEAR(metered.mean(), 6.0, 0.6);
    EXPECT_EQ(sim.metrics().emergencies(), 0u);
}

TEST(Engine, PrototypeScaleRuns)
{
    auto config = SimulationConfig::prototypeScale();
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    sim.runDays(2.0);
    EXPECT_EQ(sim.metrics().emergencies(), 0u);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Engine, ExternalTracesAreUsed)
{
    auto config = SimulationConfig::paperDefault();
    // Flat external traces: total benign power should be constant.
    config.externalBenignTraces.assign(
        3, trace::UtilizationTrace(
               std::vector<double>(kMinutesPerDay, 0.5)));
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    OnlineStats benign;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        benign.add(r.benignPower.value());
    });
    sim.run(600);
    // Constant utilization -> zero variance in benign power.
    EXPECT_LT(benign.stddev(), 1e-9);
}

TEST(Engine, ExternalTracesStillScaledToTarget)
{
    auto config = SimulationConfig::paperDefault();
    config.externalBenignTraces.assign(
        3, trace::UtilizationTrace(
               std::vector<double>(kMinutesPerDay, 0.9)));
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    OnlineStats metered;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        metered.add(r.meteredTotal.value());
    });
    sim.runDays(1.0);
    EXPECT_NEAR(metered.mean(), 6.0, 0.1); // 75% of 8 kW
}

TEST(EngineDeathTest, WrongExternalTraceCountRejected)
{
    auto config = SimulationConfig::paperDefault();
    config.externalBenignTraces.assign(
        2, trace::UtilizationTrace(std::vector<double>(100, 0.5)));
    EXPECT_DEATH(
        Simulation(config, std::make_unique<StandbyPolicy>()),
        "externalBenignTraces");
}

TEST(Engine, OutageLifecycleRestoresService)
{
    auto config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    Simulation sim(config, makeOneShotPolicy(config, Kilowatts(7.0), 0));

    MinuteIndex first_outage = -1, restored = -1;
    bool was_down = false;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.outage) {
            if (first_outage < 0)
                first_outage = r.time;
            was_down = true;
            EXPECT_DOUBLE_EQ(r.meteredTotal.value(), 0.0);
            EXPECT_DOUBLE_EQ(r.actualHeat.value(), 0.0);
        } else if (was_down && restored < 0) {
            restored = r.time;
        }
    });
    sim.runDays(3.0);
    ASSERT_GE(first_outage, 0) << "one-shot never fired";
    ASSERT_GE(restored, 0) << "service never restored";
    // Down for (about) the configured restart window.
    EXPECT_NEAR(static_cast<double>(restored - first_outage),
                static_cast<double>(config.outageRestartMinutes), 2.0);
}

TEST(Engine, AdaptiveCappingKeepsEmergenciesBounded)
{
    auto fixed_config = SimulationConfig::paperDefault();
    auto adaptive_config = SimulationConfig::paperDefault();
    adaptive_config.adaptiveCapping = true;
    Simulation fixed_sim(fixed_config,
                         makeMyopicPolicy(fixed_config, Kilowatts(7.4)));
    Simulation adaptive_sim(
        adaptive_config, makeMyopicPolicy(adaptive_config, Kilowatts(7.4)));
    fixed_sim.runDays(20.0);
    adaptive_sim.runDays(20.0);
    EXPECT_EQ(adaptive_sim.metrics().outages(), 0u);
    // Gentler caps -> lower latency impact during emergencies.
    if (adaptive_sim.metrics().emergencyPerf().count() > 0 &&
        fixed_sim.metrics().emergencyPerf().count() > 0) {
        EXPECT_LE(adaptive_sim.metrics().emergencyPerf().mean(),
                  fixed_sim.metrics().emergencyPerf().mean() + 0.1);
    }
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Engine, PerTenantPerfPopulatedDuringEmergencies)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    sim.runDays(20.0);
    ASSERT_GT(sim.metrics().emergencyMinutes(), 0);
    const auto &per_tenant = sim.metrics().tenantEmergencyPerf();
    ASSERT_EQ(per_tenant.size(), config.numBenignTenants);
    for (const auto &stats : per_tenant) {
        EXPECT_GT(stats.count(), 0u);
        EXPECT_GT(stats.mean(), 1.0); // everyone degrades under capping
    }
}

TEST(Engine, SensorNoiseCausesBaselineEmergencies)
{
    // With noisy operator sensing, occasional spurious emergencies occur
    // even with no attacker (Section VII-B's hiding statistics); the
    // idealized protocol (zero noise) has none.
    auto clean = SimulationConfig::paperDefault();
    auto noisy = SimulationConfig::paperDefault();
    noisy.operatorSensorNoise = 2.5;
    Simulation clean_sim(clean, std::make_unique<StandbyPolicy>());
    Simulation noisy_sim(noisy, std::make_unique<StandbyPolicy>());
    clean_sim.runDays(30.0);
    noisy_sim.runDays(30.0);
    EXPECT_EQ(clean_sim.metrics().emergencies(), 0u);
    EXPECT_GT(noisy_sim.metrics().emergencies(), 0u);
    // Still rare: a background rate, not a thermal runaway.
    EXPECT_LT(noisy_sim.metrics().emergencyFraction(), 0.02);
}

} // namespace
} // namespace ecolo::core

namespace ecolo::core {
namespace {

TEST(Engine, RequestLevelTraceRuns)
{
    auto config = SimulationConfig::paperDefault();
    config.traceKind = TraceKind::RequestLevel;
    Simulation sim(config, std::make_unique<StandbyPolicy>());
    OnlineStats metered;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        metered.add(r.meteredTotal.value());
    });
    sim.runDays(14.0);
    EXPECT_NEAR(metered.mean(), 6.0, 0.6);
    EXPECT_EQ(sim.metrics().emergencies(), 0u);
}

} // namespace
} // namespace ecolo::core
