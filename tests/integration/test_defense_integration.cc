/** @file Integration tests wiring the defenses to live attack runs. */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "defense/detectors.hh"

namespace ecolo::core {
namespace {

TEST(DefenseIntegration, ResidualDetectorCatchesRepeatedAttacks)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.2)));

    defense::ThermalResidualDetector detector({}, config.cooling);
    Rng rng(99);
    bool alarmed = false;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (!alarmed) {
            alarmed = detector.observeMinute(r.meteredTotal, r.supply, rng);
        }
    });
    sim.runDays(30.0);
    EXPECT_TRUE(alarmed);
}

TEST(DefenseIntegration, ResidualDetectorQuietWithoutAttack)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, std::make_unique<StandbyPolicy>());

    defense::ThermalResidualDetector detector({}, config.cooling);
    Rng rng(100);
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        detector.observeMinute(r.meteredTotal, r.supply, rng);
    });
    sim.runDays(30.0);
    EXPECT_FALSE(detector.alarmed());
}

TEST(DefenseIntegration, AirflowAuditPinpointsAttackerServers)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.2)));

    defense::AirflowAudit audit({}, config.numServers());
    Rng rng(101);
    sim.setMinuteCallback([&](const MinuteRecord &) {
        audit.observeMinute(sim.lastServerHeat(), sim.lastServerMetered(),
                            rng);
    });
    sim.runDays(30.0);
    const auto flagged = audit.flaggedServers();
    // Whatever is flagged must be attacker-owned (global indices
    // 0..attackerNumServers-1).
    for (std::size_t s : flagged)
        EXPECT_LT(s, config.attackerNumServers);
}

TEST(DefenseIntegration, SlaMonitorSeesRepeatedAttackCampaign)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.2)));

    defense::SlaMonitor::Params params;
    params.slaTemperature = Celsius(27.5);
    params.slaBudget = 0.005;
    defense::SlaMonitor monitor(params);
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        monitor.observeMinute(r.maxInlet);
    });
    sim.runDays(45.0);
    EXPECT_TRUE(monitor.alarmed());
}

TEST(DefenseIntegration, JammingReducesAttackEffectiveness)
{
    auto clean = SimulationConfig::paperDefault();
    auto jammed = SimulationConfig::paperDefault();
    jammed.sideChannel.extraRelativeNoise = 0.15;

    Simulation sim_clean(clean, makeMyopicPolicy(clean, Kilowatts(7.3)));
    Simulation sim_jammed(jammed,
                          makeMyopicPolicy(jammed, Kilowatts(7.3)));
    sim_clean.runDays(40.0);
    sim_jammed.runDays(40.0);
    EXPECT_GE(sim_clean.metrics().emergencyMinutes(),
              sim_jammed.metrics().emergencyMinutes());
}

TEST(DefenseIntegration, LowerSetPointBuysTime)
{
    // Prevention knob from Section VII-A: a 20 C set point gives more
    // margin before 32 C than the efficiency-friendly 27 C.
    auto cool = SimulationConfig::paperDefault();
    cool.cooling.supplySetPoint = Celsius(20.0);
    auto warm = SimulationConfig::paperDefault();

    Simulation sim_cool(cool, makeMyopicPolicy(cool, Kilowatts(7.3)));
    Simulation sim_warm(warm, makeMyopicPolicy(warm, Kilowatts(7.3)));
    sim_cool.runDays(30.0);
    sim_warm.runDays(30.0);
    EXPECT_LT(sim_cool.metrics().emergencyMinutes(),
              sim_warm.metrics().emergencyMinutes());
}

} // namespace
} // namespace ecolo::core
