/** @file Integration tests of the attack strategies end to end. */

#include <gtest/gtest.h>

#include "core/engine.hh"

namespace ecolo::core {
namespace {

/** One-shot configuration: 3 kW battery strike (Section V-A). */
SimulationConfig
oneShotConfig()
{
    auto config = SimulationConfig::paperDefault();
    config.attackLoad = Kilowatts(3.0);
    config.batterySpec.maxDischargeRate = Kilowatts(3.0);
    config.batterySpec.capacity = KilowattHours(0.5);
    return config;
}

TEST(Attacks, MyopicCreatesEmergencies)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    sim.runDays(30.0);
    EXPECT_GT(sim.metrics().emergencies(), 0u);
    EXPECT_GT(sim.metrics().attackMinutes(), 0);
    EXPECT_EQ(sim.metrics().outages(), 0u); // repeated, not one-shot
}

TEST(Attacks, RandomIsIneffective)
{
    // The paper's consistent observation: load-oblivious attacks fail to
    // create thermal emergencies. Our thermal model leaves a tiny
    // residual (lucky streaks of random attack minutes at the daily
    // peak), so assert Random is at least an order of magnitude below
    // Myopic at the same attack intensity rather than exactly zero.
    auto config = SimulationConfig::paperDefault();
    Simulation random_sim(config, makeRandomPolicy(config, 0.08));
    random_sim.runDays(30.0);
    Simulation myopic_sim(config, makeMyopicPolicy(config, Kilowatts(7.4)));
    myopic_sim.runDays(30.0);
    EXPECT_GT(random_sim.metrics().attackMinutes(), 0);
    EXPECT_GT(myopic_sim.metrics().emergencyMinutes(), 0);
    EXPECT_LT(random_sim.metrics().emergencyMinutes(),
              myopic_sim.metrics().emergencyMinutes() / 10);
}

TEST(Attacks, ForesightedCreatesEmergenciesAfterLearning)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeForesightedPolicy(config, 14.0));
    sim.runDays(45.0);
    EXPECT_GT(sim.metrics().emergencies(), 0u);
}

TEST(Attacks, OneShotForcesOutage)
{
    auto config = oneShotConfig();
    Simulation sim(config,
                   makeOneShotPolicy(config, Kilowatts(7.2), 0));
    sim.runDays(7.0);
    EXPECT_GE(sim.metrics().outages(), 1u);
}

TEST(Attacks, OneShotReachesShutdownTemperature)
{
    auto config = oneShotConfig();
    Simulation sim(config,
                   makeOneShotPolicy(config, Kilowatts(7.2), 0));
    double hottest = 0.0;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        hottest = std::max(hottest, r.maxInlet.value());
    });
    sim.runDays(7.0);
    EXPECT_GE(hottest, config.shutdownThreshold.value());
}

TEST(Attacks, EmergencyCappingLimitsMeteredPower)
{
    // During capping the total metered load drops below 5 kW (Fig. 8/9).
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    bool saw_capped_minute = false;
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.cappingActive && !r.outage) {
            saw_capped_minute = true;
            EXPECT_LT(r.meteredTotal.value(), 5.0);
        }
    });
    sim.runDays(30.0);
    EXPECT_TRUE(saw_capped_minute);
}

TEST(Attacks, EmergenciesDegradePerformance)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    sim.runDays(30.0);
    ASSERT_GT(sim.metrics().emergencyPerf().count(), 0u);
    // Normalized p95 well above 1 during emergencies (Fig. 11(d): 2-4x).
    EXPECT_GT(sim.metrics().emergencyPerf().mean(), 1.5);
    EXPECT_LT(sim.metrics().emergencyPerf().mean(), 8.0);
}

TEST(Attacks, AttackerStopsDuringCapping)
{
    auto config = SimulationConfig::paperDefault();
    Simulation sim(config, makeMyopicPolicy(config, Kilowatts(7.3)));
    sim.setMinuteCallback([&](const MinuteRecord &r) {
        if (r.cappingActive) {
            // Repeated attackers comply: no battery injection while
            // capped.
            EXPECT_LT(r.attackBatteryPower.value(), 1e-9);
        }
    });
    sim.runDays(30.0);
}

TEST(Attacks, BiggerBatteryMoreEmergencies)
{
    auto small = SimulationConfig::paperDefault();
    small.batterySpec.capacity = KilowattHours(0.1);
    auto large = SimulationConfig::paperDefault();
    large.batterySpec.capacity = KilowattHours(0.4);

    Simulation sim_small(small, makeMyopicPolicy(small, Kilowatts(7.3)));
    Simulation sim_large(large, makeMyopicPolicy(large, Kilowatts(7.3)));
    sim_small.runDays(40.0);
    sim_large.runDays(40.0);
    EXPECT_GE(sim_large.metrics().emergencyMinutes(),
              sim_small.metrics().emergencyMinutes());
}

TEST(Attacks, HigherAttackLoadMoreEffective)
{
    auto weak = SimulationConfig::paperDefault();
    weak.attackLoad = Kilowatts(0.5);
    auto strong = SimulationConfig::paperDefault();
    strong.attackLoad = Kilowatts(2.0);
    strong.batterySpec.maxDischargeRate = Kilowatts(2.0);

    Simulation sim_weak(weak, makeMyopicPolicy(weak, Kilowatts(7.3)));
    Simulation sim_strong(strong,
                          makeMyopicPolicy(strong, Kilowatts(7.3)));
    sim_weak.runDays(40.0);
    sim_strong.runDays(40.0);
    EXPECT_GT(sim_strong.metrics().emergencyMinutes(),
              sim_weak.metrics().emergencyMinutes());
}

TEST(Attacks, ExtraCoolingCapacityBluntsAttack)
{
    auto base = SimulationConfig::paperDefault();
    auto upgraded = SimulationConfig::paperDefault();
    upgraded.cooling.capacity = Kilowatts(8.8); // +10%

    Simulation sim_base(base, makeMyopicPolicy(base, Kilowatts(7.3)));
    Simulation sim_up(upgraded,
                      makeMyopicPolicy(upgraded, Kilowatts(7.3)));
    sim_base.runDays(40.0);
    sim_up.runDays(40.0);
    EXPECT_GT(sim_base.metrics().emergencyMinutes(),
              sim_up.metrics().emergencyMinutes());
}

} // namespace
} // namespace ecolo::core
