/** @file Unit tests for trace serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.hh"
#include "trace/trace_io.hh"

namespace ecolo::trace {
namespace {

TEST(TraceIo, RoundTrip)
{
    Rng rng(21);
    const auto original = DiurnalTraceGenerator().generate(500, rng);
    std::stringstream buffer;
    writeCsv(buffer, original);
    const auto restored = readCsv(buffer);
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(restored[i], original[i], 1e-9);
}

TEST(TraceIo, ReadsBareValues)
{
    std::stringstream buffer("0.25\n0.5\n0.75\n");
    const auto t = readCsv(buffer);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t[0], 0.25);
    EXPECT_DOUBLE_EQ(t[2], 0.75);
}

TEST(TraceIo, SkipsHeaderRow)
{
    std::stringstream buffer("minute,utilization\n0,0.3\n1,0.4\n");
    const auto t = readCsv(buffer);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0], 0.3);
    EXPECT_DOUBLE_EQ(t[1], 0.4);
}

TEST(TraceIo, ClampsOutOfRangeInput)
{
    std::stringstream buffer("0,1.7\n1,-0.2\n");
    const auto t = readCsv(buffer);
    EXPECT_DOUBLE_EQ(t[0], 1.0);
    EXPECT_DOUBLE_EQ(t[1], 0.0);
}

TEST(TraceIo, IgnoresBlankLines)
{
    std::stringstream buffer("0,0.1\n\n1,0.2\n\n");
    const auto t = readCsv(buffer);
    EXPECT_EQ(t.size(), 2u);
}

} // namespace
} // namespace ecolo::trace

namespace ecolo::trace {
namespace {

TEST(TraceIo, FileRoundTrip)
{
    Rng rng(31);
    const auto original = DiurnalTraceGenerator().generate(300, rng);
    const std::string path =
        ::testing::TempDir() + "/edgetherm_trace_roundtrip.csv";
    saveTrace(path, original);
    const auto restored = loadTrace(path);
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(restored[i], original[i], 1e-9);
}

TEST(TraceIoDeathTest, MissingFileFatal)
{
    EXPECT_DEATH(loadTrace("/nonexistent/trace.csv"), "cannot open");
}

} // namespace
} // namespace ecolo::trace
