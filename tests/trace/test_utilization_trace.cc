/** @file Unit tests for trace containers. */

#include <gtest/gtest.h>

#include "trace/utilization_trace.hh"

namespace ecolo::trace {
namespace {

TEST(UtilizationTrace, WrapsAroundTheEnd)
{
    UtilizationTrace t({0.1, 0.2, 0.3});
    EXPECT_DOUBLE_EQ(t.at(0), 0.1);
    EXPECT_DOUBLE_EQ(t.at(2), 0.3);
    EXPECT_DOUBLE_EQ(t.at(3), 0.1);
    EXPECT_DOUBLE_EQ(t.at(7), 0.2);
}

TEST(UtilizationTrace, NegativeIndexWraps)
{
    UtilizationTrace t({0.1, 0.2, 0.3});
    EXPECT_DOUBLE_EQ(t.at(-1), 0.3);
    EXPECT_DOUBLE_EQ(t.at(-3), 0.1);
}

TEST(UtilizationTrace, MeanAndPeak)
{
    UtilizationTrace t({0.0, 0.5, 1.0});
    EXPECT_DOUBLE_EQ(t.mean(), 0.5);
    EXPECT_DOUBLE_EQ(t.peak(), 1.0);
}

TEST(UtilizationTrace, ScaleClampsToOne)
{
    UtilizationTrace t({0.4, 0.8});
    t.scale(2.0);
    EXPECT_DOUBLE_EQ(t[0], 0.8);
    EXPECT_DOUBLE_EQ(t[1], 1.0);
}

TEST(UtilizationTrace, ClampAll)
{
    UtilizationTrace t({0.1, 0.5, 0.9});
    t.clampAll(0.2, 0.8);
    EXPECT_DOUBLE_EQ(t[0], 0.2);
    EXPECT_DOUBLE_EQ(t[1], 0.5);
    EXPECT_DOUBLE_EQ(t[2], 0.8);
}

TEST(UtilizationTrace, EmptyProperties)
{
    UtilizationTrace t;
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.peak(), 0.0);
}

TEST(PowerTrace, WrapsAndAggregates)
{
    PowerTrace t({Kilowatts(1.0), Kilowatts(3.0)});
    EXPECT_DOUBLE_EQ(t.at(0).value(), 1.0);
    EXPECT_DOUBLE_EQ(t.at(3).value(), 3.0);
    EXPECT_DOUBLE_EQ(t.mean().value(), 2.0);
    EXPECT_DOUBLE_EQ(t.peak().value(), 3.0);
}

TEST(PowerTrace, ElementwiseSum)
{
    PowerTrace a({Kilowatts(1.0), Kilowatts(2.0)});
    PowerTrace b({Kilowatts(0.5), Kilowatts(0.5)});
    a += b;
    EXPECT_DOUBLE_EQ(a[0].value(), 1.5);
    EXPECT_DOUBLE_EQ(a[1].value(), 2.5);
}

TEST(PowerTraceDeathTest, MismatchedSumPanics)
{
    PowerTrace a({Kilowatts(1.0)});
    PowerTrace b({Kilowatts(1.0), Kilowatts(2.0)});
    EXPECT_DEATH(a += b, "different lengths");
}

TEST(UtilizationTraceDeathTest, RejectsOutOfRangeSamples)
{
    EXPECT_DEATH(UtilizationTrace({1.5}), "out of");
}

} // namespace
} // namespace ecolo::trace
