/** @file Unit tests for the synthetic workload generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generators.hh"
#include "util/sim_time.hh"
#include "util/stats.hh"

namespace ecolo::trace {
namespace {

TEST(DiurnalGenerator, ProducesRequestedLength)
{
    Rng rng(1);
    DiurnalTraceGenerator gen;
    const auto t = gen.generate(kMinutesPerDay, rng);
    EXPECT_EQ(t.size(), static_cast<std::size_t>(kMinutesPerDay));
}

TEST(DiurnalGenerator, SamplesInUnitRange)
{
    Rng rng(2);
    DiurnalTraceGenerator gen;
    const auto t = gen.generate(7 * kMinutesPerDay, rng);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], 0.0);
        EXPECT_LE(t[i], 1.0);
    }
}

TEST(DiurnalGenerator, PeakHourIsHotterThanTrough)
{
    Rng rng(3);
    DiurnalTraceGenerator::Params params;
    params.noiseSigma = 0.0;
    params.burstsPerDay = 0.0;
    DiurnalTraceGenerator gen(params);
    const auto t = gen.generate(kMinutesPerDay, rng);
    const double peak = t[static_cast<std::size_t>(params.peakHour * 60)];
    const double trough =
        t[static_cast<std::size_t>(std::fmod(params.peakHour + 12.0, 24.0) *
                                   60)];
    EXPECT_GT(peak, trough + 0.2);
}

TEST(DiurnalGenerator, WeekendsAreLighter)
{
    Rng rng(4);
    DiurnalTraceGenerator::Params params;
    params.noiseSigma = 0.0;
    params.burstsPerDay = 0.0;
    params.weekendFactor = 0.7;
    DiurnalTraceGenerator gen(params);
    const auto t = gen.generate(7 * kMinutesPerDay, rng);
    // Compare the same minute on Friday (day 4) and Saturday (day 5).
    const std::size_t noon_friday = 4 * kMinutesPerDay + 720;
    const std::size_t noon_saturday = 5 * kMinutesPerDay + 720;
    EXPECT_GT(t[noon_friday], t[noon_saturday]);
}

TEST(DiurnalGenerator, DeterministicForSameSeed)
{
    DiurnalTraceGenerator gen;
    Rng rng1(9), rng2(9);
    const auto a = gen.generate(kMinutesPerDay, rng1);
    const auto b = gen.generate(kMinutesPerDay, rng2);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(DiurnalGenerator, BurstsRaiseTheMean)
{
    DiurnalTraceGenerator::Params quiet;
    quiet.burstsPerDay = 0.0;
    quiet.noiseSigma = 0.0;
    DiurnalTraceGenerator::Params bursty = quiet;
    bursty.burstsPerDay = 40.0;
    bursty.burstMagnitude = 0.2;
    Rng rng1(11), rng2(11);
    const auto a = DiurnalTraceGenerator(quiet).generate(
        7 * kMinutesPerDay, rng1);
    const auto b = DiurnalTraceGenerator(bursty).generate(
        7 * kMinutesPerDay, rng2);
    EXPECT_GT(b.mean(), a.mean() + 0.01);
}

TEST(GoogleStyleGenerator, SamplesInUnitRange)
{
    Rng rng(5);
    GoogleStyleTraceGenerator gen;
    const auto t = gen.generate(3 * kMinutesPerDay, rng);
    EXPECT_EQ(t.size(), static_cast<std::size_t>(3 * kMinutesPerDay));
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], 0.0);
        EXPECT_LE(t[i], 1.0);
    }
}

TEST(GoogleStyleGenerator, VisitsMultiplePlateaus)
{
    Rng rng(6);
    GoogleStyleTraceGenerator::Params params;
    params.noiseSigma = 0.0;
    params.burstsPerDay = 0.0;
    params.diurnalAmplitude = 0.0;
    params.meanDwellMinutes = 60.0;
    GoogleStyleTraceGenerator gen(params);
    const auto t = gen.generate(2 * kMinutesPerDay, rng);
    EXPECT_GT(t.peak() - [&] {
        double lo = 1.0;
        for (std::size_t i = 0; i < t.size(); ++i)
            lo = std::min(lo, t[i]);
        return lo;
    }(), 0.15); // spans distinct levels
}

TEST(GoogleStyleGenerator, WeakerDiurnalThanDefault)
{
    Rng rng1(7), rng2(7);
    const auto diurnal =
        DiurnalTraceGenerator().generate(14 * kMinutesPerDay, rng1);
    const auto google =
        GoogleStyleTraceGenerator().generate(14 * kMinutesPerDay, rng2);

    // Correlate each trace with a 24h sinusoid; the diurnal one should
    // show much stronger daily periodicity.
    auto daily_correlation = [](const UtilizationTrace &t) {
        double num = 0.0;
        for (std::size_t i = 0; i < t.size(); ++i) {
            const double phase = 2.0 * M_PI *
                                 static_cast<double>(i % kMinutesPerDay) /
                                 static_cast<double>(kMinutesPerDay);
            num += (t[i] - 0.5) * std::cos(phase - M_PI);
        }
        return std::abs(num) / static_cast<double>(t.size());
    };
    EXPECT_GT(daily_correlation(diurnal), daily_correlation(google));
}

TEST(ConstantGenerator, FlatAtLevel)
{
    Rng rng(8);
    ConstantTraceGenerator gen(0.42);
    const auto t = gen.generate(100, rng);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_DOUBLE_EQ(t[i], 0.42);
}

TEST(ScaleToMean, HitsTarget)
{
    Rng rng(10);
    const auto t = DiurnalTraceGenerator().generate(7 * kMinutesPerDay, rng);
    const auto scaled = scaleToMeanUtilization(t, 0.6);
    EXPECT_NEAR(scaled.mean(), 0.6, 0.002);
}

TEST(ScaleToMean, WorksWhenClampingBites)
{
    Rng rng(12);
    const auto t = DiurnalTraceGenerator().generate(7 * kMinutesPerDay, rng);
    const auto scaled = scaleToMeanUtilization(t, 0.9);
    EXPECT_NEAR(scaled.mean(), 0.9, 0.01);
    EXPECT_LE(scaled.peak(), 1.0);
}

TEST(ScaleToMean, PreservesShapeOrdering)
{
    Rng rng(13);
    DiurnalTraceGenerator::Params params;
    params.noiseSigma = 0.0;
    params.burstsPerDay = 0.0;
    const auto t =
        DiurnalTraceGenerator(params).generate(kMinutesPerDay, rng);
    const auto scaled = scaleToMeanUtilization(t, 0.5);
    // Scaling is monotone: if a < b before, then a <= b after.
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i - 1] < t[i])
            EXPECT_LE(scaled[i - 1], scaled[i] + 1e-12);
    }
}

} // namespace
} // namespace ecolo::trace

namespace ecolo::trace {
namespace {

TEST(RequestGenerator, SamplesInUnitRange)
{
    Rng rng(41);
    RequestTraceGenerator gen;
    const auto t = gen.generate(3 * kMinutesPerDay, rng);
    ASSERT_EQ(t.size(), static_cast<std::size_t>(3 * kMinutesPerDay));
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], 0.0);
        EXPECT_LE(t[i], 1.0);
    }
}

TEST(RequestGenerator, DiurnalShape)
{
    Rng rng(43);
    RequestTraceGenerator::Params params;
    params.flashCrowdsPerDay = 0.0;
    RequestTraceGenerator gen(params);
    const auto t = gen.generate(kMinutesPerDay, rng);
    // Average around the 14:00 peak vs. the 02:00 trough.
    double peak = 0.0, trough = 0.0;
    for (int m = 0; m < 60; ++m) {
        peak += t[14 * 60 + m];
        trough += t[2 * 60 + m];
    }
    EXPECT_GT(peak, 1.8 * trough);
}

TEST(RequestGenerator, PoissonShotNoisePresent)
{
    // Unlike the constant generator, consecutive minutes at the same
    // diurnal phase differ because arrivals are Poisson.
    Rng rng(47);
    RequestTraceGenerator::Params params;
    params.flashCrowdsPerDay = 0.0;
    RequestTraceGenerator gen(params);
    const auto t = gen.generate(kMinutesPerDay, rng);
    ecolo::OnlineStats noon;
    for (int m = 0; m < 30; ++m)
        noon.add(t[12 * 60 + m]);
    EXPECT_GT(noon.stddev(), 0.0005);
    EXPECT_LT(noon.stddev(), 0.05); // shot noise, not chaos
}

TEST(RequestGenerator, FlashCrowdsRaiseLoad)
{
    Rng rng1(49), rng2(49);
    RequestTraceGenerator::Params quiet;
    quiet.flashCrowdsPerDay = 0.0;
    RequestTraceGenerator::Params crowded = quiet;
    crowded.flashCrowdsPerDay = 20.0;
    crowded.flashCrowdBoost = 0.5;
    const auto a =
        RequestTraceGenerator(quiet).generate(7 * kMinutesPerDay, rng1);
    const auto b =
        RequestTraceGenerator(crowded).generate(7 * kMinutesPerDay, rng2);
    EXPECT_GT(b.mean(), a.mean() * 1.05);
}

TEST(RequestGenerator, WorksAsEngineExternalTrace)
{
    Rng rng(51);
    RequestTraceGenerator gen;
    auto t = gen.generate(kMinutesPerDay, rng);
    // Usable wherever UtilizationTrace is accepted.
    const auto scaled = scaleToMeanUtilization(t, 0.6);
    EXPECT_NEAR(scaled.mean(), 0.6, 0.01);
}

} // namespace
} // namespace ecolo::trace
