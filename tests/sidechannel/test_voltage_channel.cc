/** @file Unit tests for the voltage side channel. */

#include <gtest/gtest.h>

#include <cmath>

#include "sidechannel/voltage_channel.hh"
#include "util/stats.hh"

namespace ecolo::sidechannel {
namespace {

TEST(SideChannel, EstimatesAreUnbiasedAndTight)
{
    VoltageSideChannel channel(SideChannelParams{}, Rng(1));
    OnlineStats errors;
    for (int i = 0; i < 20000; ++i) {
        channel.estimateTotalLoad(Kilowatts(6.0));
        errors.add(channel.lastRelativeError());
    }
    // Fig. 5(b): error distribution centered near zero, few-percent wide.
    EXPECT_NEAR(errors.mean(), 0.0, 0.02);
    EXPECT_LT(errors.stddev(), 0.05);
    EXPECT_GT(errors.stddev(), 0.001);
}

TEST(SideChannel, MostErrorsWithinTwoPercent)
{
    VoltageSideChannel channel(SideChannelParams{}, Rng(2));
    int within = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        channel.estimateTotalLoad(Kilowatts(6.0));
        if (std::abs(channel.lastRelativeError()) < 0.05)
            ++within;
    }
    EXPECT_GT(static_cast<double>(within) / n, 0.95);
}

TEST(SideChannel, DeterministicForSameSeed)
{
    VoltageSideChannel a(SideChannelParams{}, Rng(7));
    VoltageSideChannel b(SideChannelParams{}, Rng(7));
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.estimateTotalLoad(Kilowatts(5.0)).value(),
                         b.estimateTotalLoad(Kilowatts(5.0)).value());
}

TEST(SideChannel, JammingWidensErrors)
{
    SideChannelParams quiet;
    SideChannelParams jammed = quiet;
    jammed.jammingNoiseVolts = 0.02;
    VoltageSideChannel c1(quiet, Rng(3)), c2(jammed, Rng(3));
    OnlineStats e1, e2;
    for (int i = 0; i < 10000; ++i) {
        c1.estimateTotalLoad(Kilowatts(6.0));
        e1.add(c1.lastRelativeError());
        c2.estimateTotalLoad(Kilowatts(6.0));
        e2.add(c2.lastRelativeError());
    }
    EXPECT_GT(e2.stddev(), 2.0 * e1.stddev());
}

TEST(SideChannel, ExtraRelativeNoiseKnob)
{
    SideChannelParams noisy;
    noisy.extraRelativeNoise = 0.10;
    VoltageSideChannel channel(noisy, Rng(4));
    OnlineStats errors;
    for (int i = 0; i < 10000; ++i) {
        channel.estimateTotalLoad(Kilowatts(6.0));
        errors.add(channel.lastRelativeError());
    }
    EXPECT_GT(errors.stddev(), 0.08);
}

TEST(SideChannel, EstimatesNeverNegative)
{
    SideChannelParams params;
    params.jammingNoiseVolts = 0.5; // extreme noise
    VoltageSideChannel channel(params, Rng(5));
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(channel.estimateTotalLoad(Kilowatts(0.1)).value(), 0.0);
}

TEST(SideChannel, ZeroLoadHandled)
{
    VoltageSideChannel channel(SideChannelParams{}, Rng(6));
    const Kilowatts est = channel.estimateTotalLoad(Kilowatts(0.0));
    EXPECT_GE(est.value(), 0.0);
    EXPECT_DOUBLE_EQ(channel.lastRelativeError(), 0.0);
}

TEST(SideChannel, TracksLoadAcrossRange)
{
    VoltageSideChannel channel(SideChannelParams{}, Rng(8));
    for (double load = 2.0; load <= 8.0; load += 1.0) {
        OnlineStats est;
        for (int i = 0; i < 2000; ++i)
            est.add(channel.estimateTotalLoad(Kilowatts(load)).value());
        EXPECT_NEAR(est.mean(), load, 0.15);
    }
}

TEST(SideChannel, AveragedMatchesManualSampleLoop)
{
    // estimateAveraged must consume exactly one estimateTotalLoad draw
    // sequence per sample: a same-seeded channel driven by hand stays in
    // lockstep, and so does everything sampled afterwards.
    const int samples = 5;
    VoltageSideChannel averaged(SideChannelParams{}, Rng(11));
    VoltageSideChannel manual(SideChannelParams{}, Rng(11));
    for (int round = 0; round < 20; ++round) {
        const Kilowatts load(4.0 + 0.1 * round);
        const Kilowatts est = averaged.estimateAveraged(load, samples);
        double sum_kw = 0.0;
        for (int k = 0; k < samples; ++k)
            sum_kw += manual.estimateTotalLoad(load).value();
        EXPECT_DOUBLE_EQ(est.value(), sum_kw / samples);
        EXPECT_DOUBLE_EQ(averaged.lastRelativeError(),
                         (sum_kw / samples - load.value()) / load.value());
    }
    // Post-condition: both RNG streams are still aligned.
    EXPECT_DOUBLE_EQ(averaged.estimateTotalLoad(Kilowatts(6.0)).value(),
                     manual.estimateTotalLoad(Kilowatts(6.0)).value());
}

TEST(SideChannel, AveragedReducesVariance)
{
    VoltageSideChannel single(SideChannelParams{}, Rng(12));
    VoltageSideChannel averaged(SideChannelParams{}, Rng(13));
    OnlineStats e1, e15;
    for (int i = 0; i < 5000; ++i) {
        single.estimateAveraged(Kilowatts(6.0), 1);
        e1.add(single.lastRelativeError());
        averaged.estimateAveraged(Kilowatts(6.0), 15);
        e15.add(averaged.lastRelativeError());
    }
    // 15-sample mean should cut the noise roughly by sqrt(15) ~ 3.9x.
    EXPECT_LT(e15.stddev(), 0.5 * e1.stddev());
}

TEST(SideChannel, AveragedClampsSampleCount)
{
    VoltageSideChannel a(SideChannelParams{}, Rng(14));
    VoltageSideChannel b(SideChannelParams{}, Rng(14));
    EXPECT_DOUBLE_EQ(a.estimateAveraged(Kilowatts(6.0), 0).value(),
                     b.estimateTotalLoad(Kilowatts(6.0)).value());
}

TEST(SideChannel, CalibrationBiasWithinSpec)
{
    SideChannelParams params;
    params.calibrationErrorStd = 0.01;
    // Across many channel instances, the realized bias is ~N(0, 0.01).
    OnlineStats biases;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        VoltageSideChannel channel(params, Rng(seed));
        biases.add(channel.calibrationBias());
    }
    EXPECT_NEAR(biases.mean(), 0.0, 0.003);
    EXPECT_NEAR(biases.stddev(), 0.01, 0.004);
}

} // namespace
} // namespace ecolo::sidechannel
