/** @file Unit tests for the dual-source power supply. */

#include <gtest/gtest.h>

#include "battery/power_supply.hh"

namespace ecolo::battery {
namespace {

BatterySpec
spec()
{
    BatterySpec s;
    s.capacity = KilowattHours(0.2);
    s.maxChargeRate = Kilowatts(0.2);
    s.maxDischargeRate = Kilowatts(1.0);
    s.chargeEfficiency = 1.0;
    s.dischargeEfficiency = 1.0;
    return s;
}

constexpr Kilowatts kGridCap{0.8};

TEST(DualSourceSupply, GridOnlyServesUpToCap)
{
    DualSourcePowerSupply supply(spec(), kGridCap);
    const auto r =
        supply.step(Kilowatts(0.5), SupplyMode::GridOnly, minutes(1));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.5);
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 0.5);
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 0.0);
}

TEST(DualSourceSupply, GridOnlyClampsAtCap)
{
    DualSourcePowerSupply supply(spec(), kGridCap);
    const auto r =
        supply.step(Kilowatts(1.5), SupplyMode::GridOnly, minutes(1));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.8);
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 0.8);
}

TEST(DualSourceSupply, DischargeConcealsLoadBehindTheMeter)
{
    // The paper's core mechanism: servers consume 1.8 kW while the meter
    // sees only the 0.8 kW subscription.
    DualSourcePowerSupply supply(spec(), kGridCap, 1.0);
    const auto r = supply.step(Kilowatts(1.8),
                               SupplyMode::DischargeBattery, minutes(1));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.8);
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 1.0);
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 1.8);
}

TEST(DualSourceSupply, DischargeLimitedByBatteryRate)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 1.0);
    const auto r = supply.step(Kilowatts(3.0),
                               SupplyMode::DischargeBattery, minutes(1));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.8);
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 1.0); // rate limit
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 1.8);
}

TEST(DualSourceSupply, DischargeStopsWhenEmpty)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 0.0);
    const auto r = supply.step(Kilowatts(1.8),
                               SupplyMode::DischargeBattery, minutes(1));
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 0.0);
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 0.8);
}

TEST(DualSourceSupply, ChargeUsesHeadroomOnly)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 0.0);
    const auto r = supply.step(Kilowatts(0.7), SupplyMode::ChargeBattery,
                               minutes(1));
    // Headroom is 0.1 kW, below the 0.2 kW max charge rate.
    EXPECT_NEAR(r.gridPower.value(), 0.8, 1e-12);
    EXPECT_NEAR(r.batteryPower.value(), -0.1, 1e-12);
    EXPECT_DOUBLE_EQ(r.serverPower.value(), 0.7);
}

TEST(DualSourceSupply, ChargeRespectsChargeRate)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 0.0);
    const auto r = supply.step(Kilowatts(0.2), SupplyMode::ChargeBattery,
                               minutes(1));
    EXPECT_NEAR(r.batteryPower.value(), -0.2, 1e-12); // rate-limited
    EXPECT_NEAR(r.gridPower.value(), 0.4, 1e-12);
}

TEST(DualSourceSupply, ChargeWhenFullDrawsNothingExtra)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 1.0);
    const auto r = supply.step(Kilowatts(0.3), SupplyMode::ChargeBattery,
                               minutes(1));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.3);
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 0.0);
}

TEST(DualSourceSupply, GridLimitTightensCap)
{
    // Emergency capping: grid limited to 0.48 kW, battery keeps injecting
    // (the one-shot attacker's behaviour in Fig. 8).
    DualSourcePowerSupply supply(spec(), kGridCap, 1.0);
    const auto r =
        supply.step(Kilowatts(1.8), SupplyMode::DischargeBattery,
                    minutes(1), Kilowatts(0.48));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.48);
    EXPECT_DOUBLE_EQ(r.batteryPower.value(), 1.0);
    EXPECT_NEAR(r.serverPower.value(), 1.48, 1e-12);
}

TEST(DualSourceSupply, GridLimitNeverRaisesCap)
{
    DualSourcePowerSupply supply(spec(), kGridCap);
    const auto r = supply.step(Kilowatts(2.0), SupplyMode::GridOnly,
                               minutes(1), Kilowatts(5.0));
    EXPECT_DOUBLE_EQ(r.gridPower.value(), 0.8); // subscription still binds
}

TEST(DualSourceSupply, EnergyConservationOverCycle)
{
    DualSourcePowerSupply supply(spec(), kGridCap, 1.0);
    // Discharge 6 minutes at 1 kW, recharge until full; stored energy
    // returns to capacity.
    supply.step(Kilowatts(1.8), SupplyMode::DischargeBattery, minutes(6));
    EXPECT_NEAR(supply.battery().soc(), 0.5, 1e-9);
    for (int i = 0; i < 60; ++i)
        supply.step(Kilowatts(0.2), SupplyMode::ChargeBattery, minutes(1));
    EXPECT_NEAR(supply.battery().soc(), 1.0, 1e-9);
}

} // namespace
} // namespace ecolo::battery
