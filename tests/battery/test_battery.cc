/** @file Unit tests for the linear battery model (paper Fig. 7(b)). */

#include <gtest/gtest.h>

#include "battery/battery.hh"

namespace ecolo::battery {
namespace {

BatterySpec
idealSpec()
{
    BatterySpec spec;
    spec.capacity = KilowattHours(0.2);
    spec.maxChargeRate = Kilowatts(0.2);
    spec.maxDischargeRate = Kilowatts(1.0);
    spec.chargeEfficiency = 1.0;
    spec.dischargeEfficiency = 1.0;
    return spec;
}

TEST(Battery, StartsAtRequestedSoc)
{
    Battery full(idealSpec(), 1.0);
    EXPECT_DOUBLE_EQ(full.soc(), 1.0);
    EXPECT_TRUE(full.full());
    Battery half(idealSpec(), 0.5);
    EXPECT_DOUBLE_EQ(half.soc(), 0.5);
    Battery empty(idealSpec(), 0.0);
    EXPECT_TRUE(empty.empty());
}

TEST(Battery, LinearDischarge)
{
    Battery b(idealSpec(), 1.0);
    // 1 kW for 6 minutes = 0.1 kWh of the 0.2 kWh capacity.
    const Kilowatts delivered = b.discharge(Kilowatts(1.0), minutes(6));
    EXPECT_DOUBLE_EQ(delivered.value(), 1.0);
    EXPECT_NEAR(b.soc(), 0.5, 1e-12);
}

TEST(Battery, DischargeRateClamped)
{
    Battery b(idealSpec(), 1.0);
    const Kilowatts delivered = b.discharge(Kilowatts(5.0), minutes(1));
    EXPECT_DOUBLE_EQ(delivered.value(), 1.0); // clamped to max rate
}

TEST(Battery, DischargeDegradesWhenEnergyRunsOut)
{
    Battery b(idealSpec(), 0.05); // 0.01 kWh stored
    // Asking for 1 kW over 6 minutes (0.1 kWh) only yields the stored
    // 0.01 kWh: average delivered power is 0.1 kW.
    const Kilowatts delivered = b.discharge(Kilowatts(1.0), minutes(6));
    EXPECT_NEAR(delivered.value(), 0.1, 1e-12);
    EXPECT_TRUE(b.empty());
}

TEST(Battery, LinearCharge)
{
    Battery b(idealSpec(), 0.0);
    // 0.2 kW for 30 minutes = 0.1 kWh.
    const Kilowatts drawn = b.charge(Kilowatts(0.2), minutes(30));
    EXPECT_DOUBLE_EQ(drawn.value(), 0.2);
    EXPECT_NEAR(b.soc(), 0.5, 1e-12);
}

TEST(Battery, ChargeRateClamped)
{
    Battery b(idealSpec(), 0.0);
    const Kilowatts drawn = b.charge(Kilowatts(5.0), minutes(1));
    EXPECT_DOUBLE_EQ(drawn.value(), 0.2);
}

TEST(Battery, ChargeStopsAtFull)
{
    Battery b(idealSpec(), 0.99);
    b.charge(Kilowatts(0.2), hours(10.0));
    EXPECT_TRUE(b.full());
    EXPECT_DOUBLE_EQ(b.soc(), 1.0);
    // Another charge draws nothing.
    EXPECT_DOUBLE_EQ(b.charge(Kilowatts(0.2), minutes(1)).value(), 0.0);
}

TEST(Battery, ChargeEfficiencyLoss)
{
    BatterySpec spec = idealSpec();
    spec.chargeEfficiency = 0.9;
    Battery b(spec, 0.0);
    b.charge(Kilowatts(0.2), hours(0.5)); // 0.1 kWh grid -> 0.09 stored
    EXPECT_NEAR(b.energy().value(), 0.09, 1e-12);
}

TEST(Battery, DischargeEfficiencyLoss)
{
    BatterySpec spec = idealSpec();
    spec.dischargeEfficiency = 0.95;
    Battery b(spec, 1.0);
    const Kilowatts delivered = b.discharge(Kilowatts(1.0), minutes(6));
    EXPECT_DOUBLE_EQ(delivered.value(), 1.0);
    // 0.1 kWh delivered costs 0.1/0.95 stored.
    EXPECT_NEAR(b.energy().value(), 0.2 - 0.1 / 0.95, 1e-12);
}

TEST(Battery, ChargingSlowerThanDischarging)
{
    // The asymmetry observed in the paper's prototype (Fig. 7(b)): losses
    // make effective charging slower than discharging.
    BatterySpec spec = idealSpec();
    spec.chargeEfficiency = 0.9;
    Battery b(spec, 1.0);
    b.discharge(Kilowatts(0.2), minutes(10));
    const double discharged = 1.0 - b.soc();
    const double soc_after_discharge = b.soc();
    b.charge(Kilowatts(0.2), minutes(10));
    const double charged = b.soc() - soc_after_discharge;
    EXPECT_LT(charged, discharged);
}

TEST(Battery, SustainableForMatchesEnergy)
{
    Battery b(idealSpec(), 1.0);
    const Seconds t = b.sustainableFor(Kilowatts(1.0));
    EXPECT_NEAR(toMinutes(t), 12.0, 1e-9); // 0.2 kWh / 1 kW
}

TEST(Battery, SustainableForZeroPowerIsForever)
{
    Battery b(idealSpec(), 0.5);
    EXPECT_GT(toHours(b.sustainableFor(Kilowatts(0.0))), 1e6);
}

TEST(Battery, SetSoc)
{
    Battery b(idealSpec(), 1.0);
    b.setSoc(0.25);
    EXPECT_DOUBLE_EQ(b.soc(), 0.25);
}

TEST(BatteryDeathTest, InvalidSpecRejected)
{
    BatterySpec spec = idealSpec();
    spec.capacity = KilowattHours(0.0);
    EXPECT_DEATH(Battery(spec, 1.0), "capacity");
}

} // namespace
} // namespace ecolo::battery

namespace ecolo::battery {
namespace {

BatterySpec
thermalSpec()
{
    BatterySpec spec;
    spec.capacity = KilowattHours(0.2);
    spec.maxChargeRate = Kilowatts(0.2);
    spec.maxDischargeRate = Kilowatts(1.0);
    spec.chargeEfficiency = 1.0;
    spec.dischargeEfficiency = 1.0;
    spec.capacityLossPerKelvin = 0.01;
    spec.thermalReference = Celsius(25.0);
    return spec;
}

TEST(ThermalBattery, NoDeratingAtOrBelowReference)
{
    Battery b(thermalSpec(), 1.0);
    b.setAmbient(Celsius(25.0));
    EXPECT_DOUBLE_EQ(b.usableCapacity().value(), 0.2);
    b.setAmbient(Celsius(20.0));
    EXPECT_DOUBLE_EQ(b.usableCapacity().value(), 0.2);
}

TEST(ThermalBattery, CapacityShrinksWhenHot)
{
    Battery b(thermalSpec(), 1.0);
    b.setAmbient(Celsius(35.0)); // +10 K -> -10%
    EXPECT_NEAR(b.usableCapacity().value(), 0.18, 1e-12);
    // Stored energy is curtailed to the usable capacity.
    EXPECT_NEAR(b.energy().value(), 0.18, 1e-12);
}

TEST(ThermalBattery, DeratingHasFloor)
{
    Battery b(thermalSpec(), 1.0);
    b.setAmbient(Celsius(200.0));
    EXPECT_NEAR(b.usableCapacity().value(), 0.1, 1e-12); // 50% floor
}

TEST(ThermalBattery, ChargeStopsAtDeratedCapacity)
{
    Battery b(thermalSpec(), 0.0);
    b.setAmbient(Celsius(35.0));
    b.charge(Kilowatts(0.2), hours(10.0));
    EXPECT_NEAR(b.energy().value(), 0.18, 1e-12);
    EXPECT_TRUE(b.full());
}

TEST(ThermalBattery, DefaultSpecUnaffectedByAmbient)
{
    BatterySpec spec = thermalSpec();
    spec.capacityLossPerKelvin = 0.0;
    Battery b(spec, 1.0);
    b.setAmbient(Celsius(45.0));
    EXPECT_DOUBLE_EQ(b.usableCapacity().value(), 0.2);
    EXPECT_DOUBLE_EQ(b.energy().value(), 0.2);
}

} // namespace
} // namespace ecolo::battery
