/**
 * @file
 * Fuzz-style corpus for the gateway's incremental HTTP/1.1 request
 * parser, plus the response builders and the client-side response
 * parser. The invariant under test: for EVERY input -- torn at
 * arbitrary byte boundaries, pipelined, oversized, or outright
 * malformed -- the parser lands in a well-formed terminal state (a
 * valid parse or a concrete 4xx/5xx error) without hanging, crashing,
 * or growing its buffers past the configured limits. The byte-by-byte
 * re-feeds are what make this meaningful under ASan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gateway/http.hh"
#include "util/rng.hh"

namespace ecolo::gateway {
namespace {

/** Feed the whole input in one call; returns bytes consumed. */
std::size_t
feedAll(HttpRequestParser &parser, const std::string &input)
{
    return parser.feed(input.data(), input.size());
}

/** Feed one byte at a time (the torn-read worst case). */
void
feedTorn(HttpRequestParser &parser, const std::string &input)
{
    std::size_t consumed = 0;
    while (consumed < input.size() && !parser.complete() &&
           !parser.failed()) {
        const std::size_t used =
            parser.feed(input.data() + consumed, 1);
        ASSERT_LE(used, 1u);
        consumed += used;
        if (used == 0)
            break; // terminal state refuses further input
    }
}

/** The terminal state must be identical however the bytes arrive. */
void
expectSplitInvariant(const std::string &input)
{
    HttpRequestParser whole;
    feedAll(whole, input);
    HttpRequestParser torn;
    feedTorn(torn, input);
    ASSERT_EQ(whole.complete(), torn.complete()) << input;
    ASSERT_EQ(whole.failed(), torn.failed()) << input;
    if (whole.failed())
        EXPECT_EQ(whole.errorStatus(), torn.errorStatus()) << input;
    if (whole.complete()) {
        EXPECT_EQ(whole.request().method, torn.request().method);
        EXPECT_EQ(whole.request().target, torn.request().target);
        EXPECT_EQ(whole.request().body, torn.request().body);
        EXPECT_EQ(whole.request().keepAlive, torn.request().keepAlive);
    }
}

TEST(GatewayHttpParser, SimpleGet)
{
    HttpRequestParser parser;
    const std::string input = "GET /v1/stats HTTP/1.1\r\n"
                              "Host: localhost\r\n\r\n";
    EXPECT_EQ(feedAll(parser, input), input.size());
    ASSERT_TRUE(parser.complete());
    const HttpRequest &req = parser.request();
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/v1/stats");
    EXPECT_TRUE(req.keepAlive);
    ASSERT_NE(req.header("host"), nullptr);
    EXPECT_EQ(*req.header("host"), "localhost");
}

TEST(GatewayHttpParser, PostWithBodyAndQuery)
{
    HttpRequestParser parser;
    const std::string body = "{\"policy\":\"standby\"}";
    const std::string input =
        "POST /v1/runs?stream=1&x=2 HTTP/1.1\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "\r\n" + body;
    EXPECT_EQ(feedAll(parser, input), input.size());
    ASSERT_TRUE(parser.complete());
    const HttpRequest &req = parser.request();
    EXPECT_EQ(req.path, "/v1/runs");
    EXPECT_EQ(req.query, "stream=1&x=2");
    EXPECT_TRUE(req.hasQueryParam("stream"));
    EXPECT_EQ(req.queryParam("stream"), "1");
    EXPECT_EQ(req.queryParam("x"), "2");
    EXPECT_FALSE(req.hasQueryParam("y"));
    EXPECT_EQ(req.body, body);
}

TEST(GatewayHttpParser, TornArrivalMatchesWholeArrival)
{
    const std::string body = "{\"days\": 1}";
    const std::vector<std::string> corpus = {
        "GET / HTTP/1.1\r\n\r\n",
        "GET /v1/runs/17 HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        "POST /v1/runs HTTP/1.1\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body,
        "DELETE /v1/runs/3 HTTP/1.1\r\nHost: h\r\n\r\n",
        // Bare-LF line endings are tolerated.
        "GET /lf HTTP/1.1\nHost: h\n\n",
        // Leading blank lines before the request line are ignored.
        "\r\n\r\nGET /after-blanks HTTP/1.1\r\n\r\n",
        // And the malformed ones must fail identically too.
        "BROKEN\r\n\r\n",
        "GET /x HTTP/2.0\r\n\r\n",
        "GET /x SMTP/1.1\r\n\r\n",
        "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    };
    for (const std::string &input : corpus)
        expectSplitInvariant(input);
}

TEST(GatewayHttpParser, RandomizedSplitPointsNeverDiverge)
{
    const std::string body(257, 'x');
    const std::string input =
        "POST /v1/runs HTTP/1.1\r\n"
        "Host: box\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "\r\n" + body;
    Rng rng(20260808u);
    for (int trial = 0; trial < 64; ++trial) {
        HttpRequestParser parser;
        std::size_t offset = 0;
        while (offset < input.size() && !parser.complete() &&
               !parser.failed()) {
            const std::size_t remaining = input.size() - offset;
            const std::size_t step =
                1 + static_cast<std::size_t>(rng.next() %
                                             std::min<std::uint64_t>(
                                                 remaining, 41));
            offset += parser.feed(input.data() + offset, step);
        }
        ASSERT_TRUE(parser.complete()) << "trial " << trial;
        EXPECT_EQ(parser.request().body, body);
    }
}

TEST(GatewayHttpParser, PipelinedRequestsStopAtBoundaries)
{
    const std::string first = "GET /a HTTP/1.1\r\n\r\n";
    const std::string second = "GET /b HTTP/1.1\r\n\r\n";
    const std::string wire = first + second;

    HttpRequestParser parser;
    const std::size_t used = parser.feed(wire.data(), wire.size());
    EXPECT_EQ(used, first.size()); // stops at the request boundary
    ASSERT_TRUE(parser.complete());
    EXPECT_EQ(parser.request().path, "/a");

    parser.reset();
    const std::size_t used2 =
        parser.feed(wire.data() + used, wire.size() - used);
    EXPECT_EQ(used2, second.size());
    ASSERT_TRUE(parser.complete());
    EXPECT_EQ(parser.request().path, "/b");
}

TEST(GatewayHttpParser, MalformedInputsYieldConcreteStatuses)
{
    struct Case
    {
        std::string input;
        int status;
    };
    const std::vector<Case> corpus = {
        {"GARBAGE NO VERSION\r\n\r\n", 400},
        {"GET\r\n\r\n", 400},
        {"GET /x HTTP/1.1 extra\r\n\r\n", 400},
        {"G@T / HTTP/1.1\r\n\r\n", 400},           // bad method char
        {"GET x-no-slash HTTP/1.1\r\n\r\n", 400},  // not origin-form
        {"GET /\x01 HTTP/1.1\r\n\r\n", 400},       // ctl in target
        {"GET / HTTP/2.0\r\n\r\n", 505},
        {"GET / FTP/1.1\r\n\r\n", 400},
        {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
        {"GET / HTTP/1.1\r\n X: folded\r\n\r\n", 400}, // obs-fold
        {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
        {"POST / HTTP/1.1\r\nContent-Length: 1\r\n"
         "Content-Length: 2\r\n\r\n", 400},
        {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
        {"GET / HTTP/1.1\r\nExpect: something-else\r\n\r\n", 417},
    };
    for (const Case &c : corpus) {
        HttpRequestParser parser;
        feedAll(parser, c.input);
        ASSERT_TRUE(parser.failed()) << c.input;
        EXPECT_EQ(parser.errorStatus(), c.status) << c.input;
        EXPECT_FALSE(parser.errorReason().empty());
    }
}

TEST(GatewayHttpParser, OversizedInputsAreBoundedNotBuffered)
{
    HttpRequestParser::Limits limits;
    limits.maxRequestLineBytes = 64;
    limits.maxHeaderBytes = 128;
    limits.maxHeaderCount = 4;
    limits.maxBodyBytes = 32;

    { // request line too long -> 414
        HttpRequestParser parser(limits);
        const std::string input =
            "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
        feedAll(parser, input);
        ASSERT_TRUE(parser.failed());
        EXPECT_EQ(parser.errorStatus(), 414);
    }
    { // headers too large -> 431
        HttpRequestParser parser(limits);
        const std::string input = "GET / HTTP/1.1\r\nX-Pad: " +
                                  std::string(200, 'b') + "\r\n\r\n";
        feedAll(parser, input);
        ASSERT_TRUE(parser.failed());
        EXPECT_EQ(parser.errorStatus(), 431);
    }
    { // too many headers -> 431
        HttpRequestParser parser(limits);
        std::string input = "GET / HTTP/1.1\r\n";
        for (int i = 0; i < 8; ++i)
            input += "H" + std::to_string(i) + ": v\r\n";
        input += "\r\n";
        feedAll(parser, input);
        ASSERT_TRUE(parser.failed());
        EXPECT_EQ(parser.errorStatus(), 431);
    }
    { // declared body over the cap -> 413, before any body byte
        HttpRequestParser parser(limits);
        const std::string input =
            "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        feedAll(parser, input);
        ASSERT_TRUE(parser.failed());
        EXPECT_EQ(parser.errorStatus(), 413);
    }
    { // an endless unterminated line cannot grow the buffer forever
        HttpRequestParser parser(limits);
        const std::string flood(4096, 'z'); // no newline at all
        const std::size_t used = parser.feed(flood.data(), flood.size());
        ASSERT_TRUE(parser.failed());
        EXPECT_EQ(parser.errorStatus(), 414);
        EXPECT_LE(used, flood.size());
        // A failed parser refuses further input outright.
        EXPECT_EQ(parser.feed(flood.data(), flood.size()), 0u);
    }
}

TEST(GatewayHttpParser, RandomGarbageNeverHangsOrSucceedsByAccident)
{
    Rng rng(0xFEEDFACEu);
    for (int trial = 0; trial < 256; ++trial) {
        std::string noise;
        const std::size_t len = 1 + rng.next() % 512;
        for (std::size_t i = 0; i < len; ++i)
            noise.push_back(
                static_cast<char>(rng.next() % 256));
        HttpRequestParser parser;
        std::size_t offset = 0;
        int rounds = 0;
        while (offset < noise.size() && !parser.failed() &&
               !parser.complete() && rounds < 4096) {
            const std::size_t used =
                parser.feed(noise.data() + offset,
                            noise.size() - offset);
            offset += used;
            ++rounds;
            if (used == 0)
                break;
        }
        ASSERT_LT(rounds, 4096) << "parser failed to make progress";
        if (parser.failed()) {
            EXPECT_GE(parser.errorStatus(), 400);
            EXPECT_LE(parser.errorStatus(), 599);
        }
    }
}

TEST(GatewayHttpParser, KeepAliveDefaultsFollowTheSpec)
{
    struct Case
    {
        std::string input;
        bool keepAlive;
    };
    const std::vector<Case> corpus = {
        {"GET / HTTP/1.1\r\n\r\n", true},
        {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
        {"GET / HTTP/1.0\r\n\r\n", false},
        {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
        {"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true},
        {"GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n", false},
    };
    for (const Case &c : corpus) {
        HttpRequestParser parser;
        feedAll(parser, c.input);
        ASSERT_TRUE(parser.complete()) << c.input;
        EXPECT_EQ(parser.request().keepAlive, c.keepAlive) << c.input;
    }
}

TEST(GatewayHttpParser, ExpectContinueIsSurfacedMidBody)
{
    HttpRequestParser parser;
    const std::string head = "POST / HTTP/1.1\r\n"
                             "Expect: 100-continue\r\n"
                             "Content-Length: 5\r\n\r\n";
    feedAll(parser, head);
    EXPECT_FALSE(parser.complete());
    EXPECT_EQ(parser.phase(), HttpRequestParser::Phase::Body);
    EXPECT_TRUE(parser.request().expectContinue);
    const std::string body = "hello";
    feedAll(parser, body);
    ASSERT_TRUE(parser.complete());
    EXPECT_EQ(parser.request().body, "hello");
}

TEST(GatewayHttpParser, ResetReusesLimitsAcrossKeepAlive)
{
    HttpRequestParser::Limits limits;
    limits.maxBodyBytes = 8;
    HttpRequestParser parser(limits);
    feedAll(parser, "GET /one HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(parser.complete());
    parser.reset();
    feedAll(parser, "POST /two HTTP/1.1\r\nContent-Length: 99\r\n\r\n");
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.errorStatus(), 413);
}

// ---- Response builders + client-side response parser ----

TEST(GatewayHttpResponse, BuilderRoundTripsThroughParser)
{
    const std::string wire = buildHttpResponse(
        200, "application/json", "{\"ok\":true}", true,
        {{"X-Extra", "7"}});
    HttpResponseParser parser;
    EXPECT_EQ(parser.feed(wire.data(), wire.size()), wire.size());
    ASSERT_TRUE(parser.complete());
    const HttpResponse &resp = parser.response();
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "{\"ok\":true}");
    ASSERT_NE(resp.header("x-extra"), nullptr);
    EXPECT_EQ(*resp.header("x-extra"), "7");
    ASSERT_NE(resp.header("content-length"), nullptr);
    EXPECT_EQ(*resp.header("content-length"), "11");
}

TEST(GatewayHttpResponse, ChunkedStreamRoundTrips)
{
    std::string wire = buildChunkedHead(200, "application/x-ndjson",
                                        true);
    wire += encodeChunk("{\"event\":\"accepted\"}\n");
    wire += encodeChunk("{\"event\":\"status\"}\n");
    wire += encodeChunk(""); // no bytes; must not terminate the stream
    wire += encodeChunk("{\"event\":\"done\"}\n");
    wire += finalChunk();

    // Torn delivery again: one byte at a time.
    HttpResponseParser parser;
    for (const char c : wire) {
        ASSERT_FALSE(parser.failed()) << parser.errorReason();
        parser.feed(&c, 1);
    }
    ASSERT_TRUE(parser.complete()) << parser.errorReason();
    EXPECT_TRUE(parser.response().chunked);
    EXPECT_EQ(parser.response().body,
              "{\"event\":\"accepted\"}\n{\"event\":\"status\"}\n"
              "{\"event\":\"done\"}\n");
}

TEST(GatewayHttpResponse, ContinueInterimThenFinal)
{
    std::string wire = continueResponse();
    wire += buildHttpResponse(200, "application/json", "{}", false);
    // A 100 interim response is followed by the real one; the parser
    // must not treat the interim as terminal.
    HttpResponseParser parser;
    std::size_t used = parser.feed(wire.data(), wire.size());
    ASSERT_TRUE(parser.complete());
    if (parser.response().status == 100) {
        parser.reset();
        used += parser.feed(wire.data() + used, wire.size() - used);
        ASSERT_TRUE(parser.complete());
    }
    EXPECT_EQ(parser.response().status, 200);
    EXPECT_EQ(used, wire.size());
}

TEST(GatewayHttpResponse, ReasonPhrasesCoverEmittedStatuses)
{
    for (const int status : {200, 202, 400, 404, 405, 413, 414, 417,
                             429, 431, 500, 501, 502, 503, 504, 505}) {
        EXPECT_NE(std::string(httpStatusReason(status)), "")
            << status;
    }
}

} // namespace
} // namespace ecolo::gateway
