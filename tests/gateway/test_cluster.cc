/**
 * @file
 * Property tests for the cluster layer: the --workers list parser and
 * the rendezvous (highest-random-weight) placement -- determinism
 * across gateways, balance across workers, minimal remap on membership
 * churn (the property that keeps warm worker caches warm), and
 * healthy-first re-ranking.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gateway/cluster.hh"
#include "serve/result_cache.hh"
#include "util/rng.hh"

namespace ecolo::gateway {
namespace {

std::vector<WorkerAddress>
makeWorkers(std::size_t n, std::uint16_t base_port = 7471)
{
    std::vector<WorkerAddress> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({"127.0.0.1",
                       static_cast<std::uint16_t>(base_port + i)});
    return out;
}

WorkerPool::Options
noProbe()
{
    WorkerPool::Options options;
    options.probeIntervalMs = 0; // no background thread in unit tests
    return options;
}

TEST(GatewayWorkerList, ParsesHostsPortsAndIpv6)
{
    auto parsed = parseWorkerList(
        "127.0.0.1:7471, edge-box:7472,[::1]:7473");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    const auto &workers = parsed.value();
    ASSERT_EQ(workers.size(), 3u);
    EXPECT_EQ(workers[0].host, "127.0.0.1");
    EXPECT_EQ(workers[0].port, 7471);
    EXPECT_EQ(workers[1].host, "edge-box");
    EXPECT_EQ(workers[1].port, 7472);
    EXPECT_EQ(workers[2].host, "::1");
    EXPECT_EQ(workers[2].port, 7473);
    EXPECT_EQ(workers[0].label(), "127.0.0.1:7471");
}

TEST(GatewayWorkerList, RejectsMalformedEntries)
{
    for (const char *text :
         {"", ",", "127.0.0.1", "host:", ":7471", "host:0",
          "host:70000", "host:12x4", "a:1,,b:2", "[::1]7473",
          "[::1:7473"}) {
        auto parsed = parseWorkerList(text);
        EXPECT_FALSE(parsed.ok()) << "accepted: '" << text << "'";
        if (!parsed.ok())
            EXPECT_EQ(parsed.error().code,
                      util::ErrorCode::ValidationError);
    }
}

TEST(GatewayRendezvous, RankingIsDeterministicAcrossPools)
{
    WorkerPool a(makeWorkers(5), noProbe());
    WorkerPool b(makeWorkers(5), noProbe());
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t key = rng.next();
        EXPECT_EQ(a.rankForKey(key), b.rankForKey(key));
    }
}

TEST(GatewayRendezvous, EveryRankingIsAPermutation)
{
    WorkerPool pool(makeWorkers(7), noProbe());
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        auto order = pool.rankForKey(rng.next());
        ASSERT_EQ(order.size(), 7u);
        std::vector<bool> seen(7, false);
        for (const std::size_t idx : order) {
            ASSERT_LT(idx, 7u);
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
}

TEST(GatewayRendezvous, KeysSpreadAcrossWorkers)
{
    WorkerPool pool(makeWorkers(4), noProbe());
    std::map<std::size_t, int> owners;
    Rng rng(13);
    const int keys = 4000;
    for (int i = 0; i < keys; ++i)
        ++owners[pool.rankForKey(rng.next())[0]];
    ASSERT_EQ(owners.size(), 4u);
    for (const auto &[worker, count] : owners) {
        // Perfectly uniform would be 1000 each; allow a wide margin.
        EXPECT_GT(count, keys / 8) << "worker " << worker;
        EXPECT_LT(count, keys / 2) << "worker " << worker;
    }
}

TEST(GatewayRendezvous, MembershipChurnRemapsOnlyTheLostShard)
{
    // Remove one worker from a 5-node pool: the only keys whose owner
    // changes are the ones that worker owned -- rendezvous hashing's
    // defining property. Scores are per-(worker, key), so the 4-node
    // pool built from the surviving addresses must agree with the
    // 5-node pool on every other key's owner.
    const auto five = makeWorkers(5);
    auto four = five;
    const std::size_t removed = 2;
    four.erase(four.begin() + removed);

    WorkerPool poolFive(five, noProbe());
    WorkerPool poolFour(four, noProbe());

    Rng rng(14);
    int owned_by_removed = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = rng.next();
        const std::size_t ownerFive = poolFive.rankForKey(key)[0];
        const std::size_t ownerFour = poolFour.rankForKey(key)[0];
        if (ownerFive == removed) {
            ++owned_by_removed;
            continue; // these must remap somewhere; anywhere is fine
        }
        // Index shift: workers after the removed one slide down by 1.
        const std::size_t expected =
            ownerFive < removed ? ownerFive : ownerFive - 1;
        EXPECT_EQ(ownerFour, expected) << "key " << key;
    }
    EXPECT_GT(owned_by_removed, 0); // the property was actually tested
}

TEST(GatewayRendezvous, ScoreMatchesThePublishedFormula)
{
    // The score function is part of the cross-gateway contract: every
    // coordinator must compute the same placement with no coordination.
    const WorkerAddress addr{"127.0.0.1", 7471};
    std::uint64_t x = serve::fnv1a64(addr.label()) ^
                      (99u + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    EXPECT_EQ(WorkerPool::rendezvousScore(addr, 99), x);
}

TEST(GatewayRendezvous, UnhealthyWorkersSinkToTheBack)
{
    WorkerPool pool(makeWorkers(4), noProbe());
    Rng rng(15);
    const std::uint64_t key = rng.next();
    const auto before = pool.rankForKey(key);

    const std::size_t preferred = before[0];
    pool.setHealthy(preferred, false);
    const auto after = pool.rankForKey(key);
    // The dead preferred worker is now ranked last...
    EXPECT_EQ(after.back(), preferred);
    // ...and the healthy workers keep their relative rendezvous order.
    std::vector<std::size_t> healthyBefore(before.begin() + 1,
                                           before.end());
    std::vector<std::size_t> healthyAfter(after.begin(),
                                          after.end() - 1);
    EXPECT_EQ(healthyAfter, healthyBefore);

    // Revival restores the original ranking exactly.
    pool.setHealthy(preferred, true);
    EXPECT_EQ(pool.rankForKey(key), before);
    EXPECT_EQ(pool.healthyCount(), 4u);
}

TEST(GatewayRendezvous, AllWorkersUnreachableIsATypedError)
{
    // Ports in the dynamic range with nothing listening: connect fails
    // fast on loopback, the pool walks every replica, and the caller
    // gets one typed error naming the cluster size.
    WorkerPool::Options options = noProbe();
    options.retry.maxAttempts = 1;
    options.retry.baseBackoffMs = 1;
    WorkerPool pool(makeWorkers(2, 1), options); // ports 1 and 2
    serve::RequestSpec spec;
    spec.policy = "standby";
    spec.horizonMinutes = 60;
    auto outcome = pool.submit(spec, 1234);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, util::ErrorCode::IoError);
    EXPECT_NE(outcome.error().message.find("2 workers unreachable"),
              std::string::npos)
        << outcome.error().message;
    EXPECT_EQ(pool.healthyCount(), 0u);
    EXPECT_EQ(pool.counters(0).transportErrors +
                  pool.counters(1).transportErrors,
              2u);
}

} // namespace
} // namespace ecolo::gateway
