/**
 * @file
 * In-process end-to-end tests for the HTTP/JSON gateway: two real
 * serve::Servers on ephemeral loopback ports behind a real Gateway,
 * driven over raw sockets with the client-side response parser. Covers
 * the PR's acceptance criteria: a gateway run's report matches a direct
 * engine render byte for byte, a warm re-submit is a byte-identical
 * cache hit, failover from a dead worker address completes with a typed
 * outcome, chunked streaming, keep-alive pipelining, cancellation, the
 * 4xx mappings, the stats document, and a seeded chaos run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "faults/chaos.hh"
#include "gateway/gateway.hh"
#include "gateway/http.hh"
#include "gateway/json.hh"
#include "serve/server.hh"
#include "util/keyvalue.hh"
#include "util/sim_time.hh"
#include "util/socket.hh"

namespace ecolo::gateway {
namespace {

using namespace std::chrono_literals;

/** One worker server on an ephemeral port; drained at scope exit. */
class WorkerHarness
{
  public:
    explicit WorkerHarness(serve::ServerOptions options = {})
        : server_(std::move(options))
    {
        const auto started = server_.start();
        EXPECT_TRUE(started.ok()) << started.error().describe();
    }

    ~WorkerHarness()
    {
        server_.requestDrain();
        server_.waitUntilStopped();
    }

    std::uint16_t port() const { return server_.port(); }

  private:
    serve::Server server_;
};

/** A gateway over explicit worker addresses; drained at scope exit. */
class GatewayHarness
{
  public:
    explicit GatewayHarness(std::vector<WorkerAddress> workers,
                            GatewayOptions options = {})
        : gateway_((options.workers = std::move(workers),
                    std::move(options)))
    {
        const auto started = gateway_.start();
        EXPECT_TRUE(started.ok()) << started.error().describe();
    }

    ~GatewayHarness()
    {
        gateway_.requestDrain();
        gateway_.waitUntilStopped();
    }

    Gateway &operator*() { return gateway_; }
    Gateway *operator->() { return &gateway_; }
    std::uint16_t port() const { return gateway_.port(); }

  private:
    Gateway gateway_;
};

/** Fast retries so dead-worker failover doesn't slow the suite. */
GatewayOptions
fastOptions()
{
    GatewayOptions options;
    options.pool.retry.maxAttempts = 2;
    options.pool.retry.baseBackoffMs = 2;
    options.pool.retry.maxBackoffMs = 10;
    options.pool.probeIntervalMs = 0; // health probes off in tests
    options.numForwarders = 3;
    return options;
}

std::string
httpGet(const std::string &path)
{
    return "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string
httpDelete(const std::string &path)
{
    return "DELETE " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string
httpPost(const std::string &path, const std::string &body)
{
    return "POST " + path + " HTTP/1.1\r\nHost: t\r\n"
           "Content-Type: application/json\r\n"
           "Content-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
}

/** One keep-alive connection; supports pipelined round trips. */
class HttpSession
{
  public:
    explicit HttpSession(std::uint16_t port)
    {
        auto conn = util::connectLoopback(port);
        EXPECT_TRUE(conn.ok()) << conn.error().describe();
        if (conn.ok())
            conn_ = conn.take();
    }

    util::Result<void> send(const std::string &wire)
    { return conn_.writeAll(wire.data(), wire.size()); }

    /** Read exactly one response off the stream. */
    util::Result<HttpResponse> readResponse()
    {
        HttpResponseParser parser;
        for (;;) {
            if (!buffer_.empty()) {
                const std::size_t used =
                    parser.feed(buffer_.data(), buffer_.size());
                buffer_.erase(0, used);
            }
            if (parser.failed())
                return ECOLO_ERROR(util::ErrorCode::ParseError,
                                   "http response: ",
                                   parser.errorReason());
            if (parser.complete())
                return parser.response();
            char buf[4096];
            auto chunk = conn_.tryRead(buf, sizeof buf);
            if (!chunk)
                return chunk.error();
            if (chunk.value().eof)
                return ECOLO_ERROR(util::ErrorCode::IoError,
                                   "eof before response completed");
            buffer_.append(buf, chunk.value().bytes);
        }
    }

    util::Result<HttpResponse> roundTrip(const std::string &wire)
    {
        if (auto sent = send(wire); !sent.ok())
            return sent.error();
        return readResponse();
    }

  private:
    util::TcpConnection conn_;
    std::string buffer_;
};

/** One-shot request on a fresh connection. */
util::Result<HttpResponse>
request(std::uint16_t port, const std::string &wire)
{
    HttpSession session(port);
    return session.roundTrip(wire);
}

/** Parse a response body that must be a JSON object. */
JsonValue
jsonBody(const HttpResponse &resp)
{
    auto doc = JsonValue::parse(resp.body);
    EXPECT_TRUE(doc.ok())
        << doc.error().describe() << "\nbody: " << resp.body;
    return doc.ok() ? doc.take() : JsonValue();
}

std::string
runBody(std::uint64_t seed, const std::string &extra = "")
{
    return "{\"policy\":\"myopic\",\"days\":1,"
           "\"scenario\":\"seed = " + std::to_string(seed) + "\\n\","
           "\"client_id\":\"t\"" + extra + "}";
}

/** What the engine renders for this request, bypassing the cluster. */
std::string
directReport(std::uint64_t seed, double days = 1.0)
{
    core::SimulationConfig config =
        core::SimulationConfig::paperDefault();
    std::istringstream is("seed = " + std::to_string(seed) + "\n");
    auto kv = KeyValueConfig::tryParse(is, "<test>");
    EXPECT_TRUE(kv.ok());
    EXPECT_TRUE(core::tryApplyScenario(kv.value(), config).ok());
    const double param = core::defaultPolicyParam("myopic");
    auto policy = core::tryMakePolicyByName(config, "myopic", param);
    EXPECT_TRUE(policy.ok());
    const auto horizon = static_cast<std::int64_t>(
        days * static_cast<double>(kMinutesPerDay));
    core::Simulation sim(config, policy.take());
    sim.run(horizon);
    core::ReportInputs inputs;
    inputs.policyName = "myopic";
    inputs.policyParameter = param;
    inputs.simulatedDays =
        static_cast<double>(horizon) /
        static_cast<double>(kMinutesPerDay);
    std::ostringstream os;
    core::writeMarkdownReport(os, config, sim.metrics(), inputs);
    return os.str();
}

/** The cache-key hash the gateway shards `seed`'s request on. */
std::uint64_t
keyHashFor(std::uint64_t seed)
{
    serve::SubmitPayload payload;
    payload.clientId = "t";
    payload.policy = "myopic";
    payload.horizonMinutes = kMinutesPerDay;
    payload.scenarioText = "seed = " + std::to_string(seed) + "\n";
    auto prepared =
        serve::prepareSubmitPayload(payload, 366L * 24 * 60 * 100);
    EXPECT_TRUE(prepared.ok()) << prepared.error().describe();
    return prepared.ok() ? prepared.value().key.hash : 0;
}

TEST(GatewayE2E, SyncRunMatchesDirectEngineRender)
{
    WorkerHarness w1, w2;
    GatewayHarness gw({{"127.0.0.1", w1.port()},
                       {"127.0.0.1", w2.port()}},
                      fastOptions());

    auto resp = request(gw.port(), httpPost("/v1/runs", runBody(4242)));
    ASSERT_TRUE(resp.ok()) << resp.error().describe();
    EXPECT_EQ(resp.value().status, 200);
    const JsonValue doc = jsonBody(resp.value());
    ASSERT_NE(doc.member("status"), nullptr);
    EXPECT_EQ(doc.member("status")->asString(), "completed");
    ASSERT_NE(doc.member("report"), nullptr);
    EXPECT_EQ(doc.member("report")->asString(), directReport(4242));
    ASSERT_NE(doc.member("cache_hit"), nullptr);
    EXPECT_FALSE(doc.member("cache_hit")->asBool());
    ASSERT_NE(doc.member("failovers"), nullptr);
    EXPECT_DOUBLE_EQ(doc.member("failovers")->asNumber(), 0.0);
}

TEST(GatewayE2E, WarmResubmitIsAByteIdenticalCacheHit)
{
    WorkerHarness w1, w2;
    GatewayHarness gw({{"127.0.0.1", w1.port()},
                       {"127.0.0.1", w2.port()}},
                      fastOptions());

    auto cold = request(gw.port(), httpPost("/v1/runs", runBody(7)));
    ASSERT_TRUE(cold.ok()) << cold.error().describe();
    ASSERT_EQ(cold.value().status, 200);
    const JsonValue coldDoc = jsonBody(cold.value());
    EXPECT_FALSE(coldDoc.member("cache_hit")->asBool());

    // The same content-addressed request lands on the same worker and
    // hits its cache: byte-identical report, cache_hit true.
    auto warm = request(gw.port(), httpPost("/v1/runs", runBody(7)));
    ASSERT_TRUE(warm.ok()) << warm.error().describe();
    ASSERT_EQ(warm.value().status, 200);
    const JsonValue warmDoc = jsonBody(warm.value());
    EXPECT_TRUE(warmDoc.member("cache_hit")->asBool());
    EXPECT_EQ(warmDoc.member("report")->asString(),
              coldDoc.member("report")->asString());
    EXPECT_EQ(warmDoc.member("worker")->asString(),
              coldDoc.member("worker")->asString());
}

TEST(GatewayE2E, FailoverFromDeadWorkerCompletesTheRun)
{
    WorkerHarness live;
    const WorkerAddress dead{"127.0.0.1", 9}; // nothing listens here
    const WorkerAddress alive{"127.0.0.1", live.port()};
    GatewayHarness gw({dead, alive}, fastOptions());

    // Pick a seed whose rendezvous-preferred worker IS the dead one,
    // so the failover path runs deterministically.
    std::uint64_t seed = 0;
    for (std::uint64_t candidate = 1; candidate < 64; ++candidate) {
        const std::uint64_t hash = keyHashFor(candidate);
        if (WorkerPool::rendezvousScore(dead, hash) >
            WorkerPool::rendezvousScore(alive, hash)) {
            seed = candidate;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no seed preferred the dead worker";

    auto resp = request(gw.port(),
                        httpPost("/v1/runs", runBody(seed)));
    ASSERT_TRUE(resp.ok()) << resp.error().describe();
    EXPECT_EQ(resp.value().status, 200);
    const JsonValue doc = jsonBody(resp.value());
    EXPECT_EQ(doc.member("status")->asString(), "completed");
    EXPECT_EQ(doc.member("report")->asString(), directReport(seed));
    EXPECT_DOUBLE_EQ(doc.member("failovers")->asNumber(), 1.0);
    EXPECT_EQ(doc.member("worker")->asString(), alive.label());

    // The walk marked the dead worker out and counted the failover.
    EXPECT_FALSE(gw->pool().healthy(0));
    EXPECT_GE(gw->pool().counters(0).transportErrors, 1u);
    EXPECT_GE(gw->pool().counters(0).failoversFrom, 1u);
    EXPECT_GE(gw->pool().counters(1).answered, 1u);
}

TEST(GatewayE2E, StreamingRunEmitsNdjsonEventsThenTheEnvelope)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    auto resp = request(
        gw.port(),
        httpPost("/v1/runs", runBody(21, ",\"stream\":true")));
    ASSERT_TRUE(resp.ok()) << resp.error().describe();
    EXPECT_EQ(resp.value().status, 200);
    EXPECT_TRUE(resp.value().chunked);
    ASSERT_NE(resp.value().header("content-type"), nullptr);
    EXPECT_EQ(*resp.value().header("content-type"),
              "application/x-ndjson");

    // The decoded stream is NDJSON: an accepted event first, then the
    // terminal envelope on the last line.
    std::vector<std::string> lines;
    std::istringstream is(resp.value().body);
    for (std::string line; std::getline(is, line);)
        if (!line.empty())
            lines.push_back(line);
    ASSERT_GE(lines.size(), 2u) << resp.value().body;

    auto first = JsonValue::parse(lines.front());
    ASSERT_TRUE(first.ok()) << lines.front();
    ASSERT_NE(first.value().member("event"), nullptr);
    EXPECT_EQ(first.value().member("event")->asString(), "accepted");

    auto last = JsonValue::parse(lines.back());
    ASSERT_TRUE(last.ok()) << lines.back();
    ASSERT_NE(last.value().member("status"), nullptr);
    EXPECT_EQ(last.value().member("status")->asString(), "completed");
    EXPECT_EQ(last.value().member("report")->asString(),
              directReport(21));
}

TEST(GatewayE2E, AsyncRunIsAcceptedThenPollable)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    auto accepted = request(
        gw.port(),
        httpPost("/v1/runs", runBody(33, ",\"async\":true")));
    ASSERT_TRUE(accepted.ok()) << accepted.error().describe();
    EXPECT_EQ(accepted.value().status, 202);
    const JsonValue doc = jsonBody(accepted.value());
    ASSERT_NE(doc.member("id"), nullptr);
    const auto id = static_cast<std::uint64_t>(
        doc.member("id")->asNumber());
    EXPECT_EQ(doc.member("status")->asString(), "queued");

    // Poll until the run reaches its terminal envelope.
    const std::string path = "/v1/runs/" + std::to_string(id);
    const auto deadline =
        std::chrono::steady_clock::now() + 30s;
    for (;;) {
        auto polled = request(gw.port(), httpGet(path));
        ASSERT_TRUE(polled.ok()) << polled.error().describe();
        ASSERT_EQ(polled.value().status, 200);
        const JsonValue state = jsonBody(polled.value());
        ASSERT_NE(state.member("status"), nullptr);
        const std::string &status = state.member("status")->asString();
        if (status == "completed") {
            EXPECT_EQ(state.member("report")->asString(),
                      directReport(33));
            break;
        }
        ASSERT_TRUE(status == "queued" || status == "running")
            << polled.value().body;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "async run never completed";
        std::this_thread::sleep_for(20ms);
    }

    // The registry lists it.
    auto list = request(gw.port(), httpGet("/v1/runs"));
    ASSERT_TRUE(list.ok());
    const JsonValue listDoc = jsonBody(list.value());
    ASSERT_NE(listDoc.member("runs"), nullptr);
    ASSERT_TRUE(listDoc.member("runs")->isArray());
    EXPECT_GE(listDoc.member("runs")->items().size(), 1u);
}

TEST(GatewayE2E, FleetScatterGathersEveryRun)
{
    WorkerHarness w1, w2;
    GatewayHarness gw({{"127.0.0.1", w1.port()},
                       {"127.0.0.1", w2.port()}},
                      fastOptions());

    const std::string body = "{\"runs\":[" + runBody(101) + "," +
                             runBody(102) + "," + runBody(103) + "]}";
    auto resp = request(gw.port(), httpPost("/v1/fleet", body));
    ASSERT_TRUE(resp.ok()) << resp.error().describe();
    EXPECT_EQ(resp.value().status, 200);
    const JsonValue doc = jsonBody(resp.value());
    ASSERT_NE(doc.member("count"), nullptr);
    EXPECT_DOUBLE_EQ(doc.member("count")->asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(doc.member("completed")->asNumber(), 3.0);
    ASSERT_TRUE(doc.member("runs")->isArray());
    ASSERT_EQ(doc.member("runs")->items().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const JsonValue &entry = doc.member("runs")->items()[i];
        EXPECT_EQ(entry.member("status")->asString(), "completed");
        EXPECT_EQ(entry.member("report")->asString(),
                  directReport(101 + i));
    }
}

TEST(GatewayE2E, KeepAlivePipeliningAnswersInOrder)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    HttpSession session(gw.port());
    // Two requests written back to back on one connection; the second
    // is parked until the first (worker-bound) one resolves.
    ASSERT_TRUE(session
                    .send(httpPost("/v1/runs", runBody(55)) +
                          httpGet("/v1/healthz"))
                    .ok());
    auto first = session.readResponse();
    ASSERT_TRUE(first.ok()) << first.error().describe();
    EXPECT_EQ(first.value().status, 200);
    EXPECT_EQ(jsonBody(first.value()).member("status")->asString(),
              "completed");
    auto second = session.readResponse();
    ASSERT_TRUE(second.ok()) << second.error().describe();
    EXPECT_EQ(second.value().status, 200);
    EXPECT_EQ(jsonBody(second.value()).member("status")->asString(),
              "ok");

    // And the connection still serves a third round trip.
    auto third = session.roundTrip(httpGet("/v1/healthz"));
    ASSERT_TRUE(third.ok()) << third.error().describe();
    EXPECT_EQ(third.value().status, 200);
}

TEST(GatewayE2E, CancelPaths)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    // Cancelling a completed run is a no-op with cancelled:false.
    auto done = request(gw.port(), httpPost("/v1/runs", runBody(61)));
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done.value().status, 200);
    const auto id = static_cast<std::uint64_t>(
        jsonBody(done.value()).member("id")->asNumber());
    auto cancel = request(
        gw.port(), httpDelete("/v1/runs/" + std::to_string(id)));
    ASSERT_TRUE(cancel.ok());
    EXPECT_EQ(cancel.value().status, 200);
    const JsonValue doc = jsonBody(cancel.value());
    EXPECT_EQ(doc.member("status")->asString(), "completed");
    EXPECT_FALSE(doc.member("cancelled")->asBool());

    // Cancelling an unknown id is a 404 with the typed code.
    auto missing = request(gw.port(), httpDelete("/v1/runs/999999"));
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing.value().status, 404);
    EXPECT_EQ(jsonBody(missing.value())
                  .member("error")->member("code")->asString(),
              "unknown_request");
}

TEST(GatewayE2E, ValidationAndRoutingErrorsMapToTypedBodies)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    struct Case
    {
        std::string wire;
        int status;
        std::string code;
    };
    const std::vector<Case> corpus = {
        {httpPost("/v1/runs", "{not json"), 400, "parse_error"},
        {httpPost("/v1/runs", "[1,2]"), 400, "validation_error"},
        {httpPost("/v1/runs", "{\"days\":1,\"bogus\":true}"), 400,
         "validation_error"},
        {httpPost("/v1/runs", "{\"policy\":\"myopic\"}"), 400,
         "validation_error"}, // no horizon
        {httpPost("/v1/runs",
                  "{\"days\":1,\"horizon_minutes\":60}"),
         400, "validation_error"}, // both
        {httpPost("/v1/runs",
                  "{\"days\":1,\"policy\":\"nonsense\"}"),
         400, "validation_error"},
        {httpPost("/v1/runs",
                  "{\"days\":1,\"stream\":true,\"async\":true}"),
         400, "validation_error"},
        {httpPost("/v1/fleet", "{\"runs\":[]}"), 400,
         "validation_error"},
        {httpGet("/v1/nope"), 404, "not_found"},
        {httpGet("/v1/runs/notanumber"), 404, "not_found"},
        {"PUT /v1/runs HTTP/1.1\r\nHost: t\r\n\r\n", 405,
         "method_not_allowed"},
        {"BROKEN\r\n\r\n", 400, "bad_request"},
    };
    for (const Case &c : corpus) {
        auto resp = request(gw.port(), c.wire);
        ASSERT_TRUE(resp.ok())
            << c.wire << "\n" << resp.error().describe();
        EXPECT_EQ(resp.value().status, c.status) << c.wire;
        const JsonValue doc = jsonBody(resp.value());
        ASSERT_NE(doc.member("error"), nullptr) << c.wire;
        EXPECT_EQ(doc.member("error")->member("code")->asString(),
                  c.code)
            << c.wire;
    }

    // A 405 names the allowed methods.
    auto put = request(gw.port(),
                       "PUT /v1/runs HTTP/1.1\r\nHost: t\r\n\r\n");
    ASSERT_TRUE(put.ok());
    ASSERT_NE(put.value().header("allow"), nullptr);
    EXPECT_EQ(*put.value().header("allow"), "GET, POST");
}

TEST(GatewayE2E, StatsDocumentCarriesGatewayMetrics)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());

    ASSERT_TRUE(request(gw.port(),
                        httpPost("/v1/runs", runBody(71))).ok());
    ASSERT_TRUE(request(gw.port(), httpGet("/v1/healthz")).ok());

    auto resp = request(gw.port(), httpGet("/v1/stats"));
    ASSERT_TRUE(resp.ok()) << resp.error().describe();
    ASSERT_EQ(resp.value().status, 200);
    const JsonValue doc = jsonBody(resp.value());
    ASSERT_NE(doc.member("schema"), nullptr);
    EXPECT_EQ(doc.member("schema")->asString(),
              "edgetherm-metrics-v1");
    const JsonValue *stats = doc.member("stats");
    ASSERT_NE(stats, nullptr);
    // Each registry stat serializes as {"kind":...,"value":N}.
    const auto metric = [stats](const std::string &name) -> double {
        const JsonValue *v = stats->member(name);
        EXPECT_NE(v, nullptr) << name;
        if (v == nullptr)
            return -1.0;
        const JsonValue *value = v->member("value");
        EXPECT_NE(value, nullptr) << name;
        return value != nullptr && value->isNumber()
                   ? value->asNumber()
                   : -1.0;
    };
    EXPECT_GE(metric("gateway.http.requests"), 2.0);
    EXPECT_GE(metric("gateway.http.responses_2xx"), 2.0);
    EXPECT_GE(metric("gateway.runs.submitted"), 1.0);
    EXPECT_GE(metric("gateway.runs.completed"), 1.0);
    EXPECT_GE(metric("gateway.worker.0.forwarded"), 1.0);
    EXPECT_GE(metric("gateway.worker.0.answered"), 1.0);
    EXPECT_EQ(metric("gateway.worker.0.healthy"), 1.0);
    EXPECT_GE(metric("gateway.latency.runs.count"), 1.0);
    EXPECT_GE(metric("gateway.latency.runs.p99_us"), 0.0);
    EXPECT_GE(metric("gateway.workers.healthy"), 1.0);

    // The stats route pulls each worker's micro-batching and
    // setup-cache counters over a STATS RPC and mirrors them in. One
    // lone run batches with nobody, so it shows up as a scalar
    // fallback and a setup-cache miss, per worker and cluster-wide.
    EXPECT_GE(metric("gateway.worker.0.serve.batch.scalar_fallbacks"),
              1.0);
    EXPECT_GE(metric("gateway.worker.0.serve.batch.occupancy.mean"),
              1.0);
    EXPECT_GE(metric("gateway.worker.0.serve.setup_cache.misses"), 1.0);
    EXPECT_GE(metric("gateway.cluster.setup_cache.misses"), 1.0);
    EXPECT_GE(metric("gateway.cluster.batch.batches"), 0.0);

    // healthz agrees.
    auto health = request(gw.port(), httpGet("/v1/healthz"));
    ASSERT_TRUE(health.ok());
    const JsonValue hd = jsonBody(health.value());
    EXPECT_EQ(hd.member("status")->asString(), "ok");
    EXPECT_DOUBLE_EQ(hd.member("workers")->asNumber(), 1.0);
}

TEST(GatewayE2E, ChaosShortOpsAreInvisibleToTheByteStream)
{
    // Clamp every socket chunk (gateway client side AND worker side)
    // to 7 bytes: the partial-I/O retry loops must reassemble the
    // stream byte-identically end to end.
    faults::ChaosSchedule schedule;
    schedule.setSeed(99);
    faults::ChaosRule rule;
    rule.kind = faults::ChaosKind::ShortOp;
    rule.op = faults::ChaosOp::Both;
    rule.probability = 1.0;
    rule.maxBytes = 7;
    ASSERT_TRUE(schedule.add(rule).ok());
    auto injector = faults::installGlobalChaosInjector(schedule);
    ASSERT_NE(injector, nullptr);

    {
        WorkerHarness w1;
        GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());
        auto resp =
            request(gw.port(), httpPost("/v1/runs", runBody(81)));
        ASSERT_TRUE(resp.ok()) << resp.error().describe();
        EXPECT_EQ(resp.value().status, 200);
        const JsonValue doc = jsonBody(resp.value());
        EXPECT_EQ(doc.member("status")->asString(), "completed");
        EXPECT_EQ(doc.member("report")->asString(), directReport(81));
        EXPECT_GT(injector->stats().shortOps, 0u);
    }
    util::setGlobalSocketFaultInjector(nullptr);
}

TEST(GatewayE2E, DrainingGatewayRejectsNewConnectionsWith503)
{
    WorkerHarness w1;
    GatewayHarness gw({{"127.0.0.1", w1.port()}}, fastOptions());
    // Park one idle connection so the drain loop stays alive long
    // enough for the 503 race to be observable... actually the
    // listener closes on drain, so probe via connection refusal OR an
    // in-flight 503. Either terminal state is a correct drain answer.
    gw->requestDrain();
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    for (;;) {
        auto conn = util::connectLoopback(gw.port());
        if (!conn.ok())
            break; // listener closed: connection refused
        const std::string wire = httpGet("/v1/healthz");
        if (!conn.value().writeAll(wire.data(), wire.size()).ok())
            break; // raced the close
        HttpResponseParser parser;
        char buf[4096];
        bool gone = false;
        while (!parser.complete() && !parser.failed()) {
            auto chunk = conn.value().tryRead(buf, sizeof buf);
            if (!chunk.ok() || chunk.value().eof) {
                gone = true; // accepted-then-closed during drain
                break;
            }
            parser.feed(buf, chunk.value().bytes);
        }
        if (gone)
            break;
        if (parser.complete() &&
            parser.response().status == 503) {
            auto doc = JsonValue::parse(parser.response().body);
            ASSERT_TRUE(doc.ok());
            EXPECT_EQ(doc.value()
                          .member("error")->member("code")->asString(),
                      "unavailable");
            break;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(5ms);
    }
}

} // namespace
} // namespace ecolo::gateway
