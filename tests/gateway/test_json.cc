/**
 * @file
 * The gateway's JSON layer: strict RFC 8259 acceptance, typed rejection
 * of everything else (with byte offsets), bounded nesting, and the
 * quoting helpers the response writers lean on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gateway/json.hh"

namespace ecolo::gateway {
namespace {

TEST(GatewayJson, ParsesScalars)
{
    auto v = JsonValue::parse("null");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v.value().isNull());

    v = JsonValue::parse("true");
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v.value().isBool());
    EXPECT_TRUE(v.value().asBool());

    v = JsonValue::parse("false");
    ASSERT_TRUE(v.ok());
    EXPECT_FALSE(v.value().asBool());

    v = JsonValue::parse("-12.5e2");
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v.value().isNumber());
    EXPECT_DOUBLE_EQ(v.value().asNumber(), -1250.0);

    v = JsonValue::parse("\"hi\\n\\\"there\\\"\"");
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v.value().isString());
    EXPECT_EQ(v.value().asString(), "hi\n\"there\"");
}

TEST(GatewayJson, ParsesNestedStructures)
{
    const std::string text =
        "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}";
    auto v = JsonValue::parse(text);
    ASSERT_TRUE(v.ok()) << v.error().describe();
    const JsonValue &doc = v.value();
    ASSERT_TRUE(doc.isObject());
    ASSERT_EQ(doc.members().size(), 2u);
    // Member order is preserved.
    EXPECT_EQ(doc.members()[0].first, "a");
    EXPECT_EQ(doc.members()[1].first, "c");

    const JsonValue *a = doc.member("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    const JsonValue *b = a->items()[2].member("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->asBool());

    EXPECT_EQ(doc.member("nope"), nullptr);
}

TEST(GatewayJson, UnicodeEscapesIncludingSurrogatePairs)
{
    auto v = JsonValue::parse("\"\\u00e9\\u20ac\\ud83d\\ude00\"");
    ASSERT_TRUE(v.ok()) << v.error().describe();
    // e-acute (2 bytes), euro (3 bytes), emoji (4 bytes) as UTF-8.
    EXPECT_EQ(v.value().asString(),
              "\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");

    // A lone high surrogate is malformed.
    EXPECT_FALSE(JsonValue::parse("\"\\ud83d\"").ok());
}

TEST(GatewayJson, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",             // empty
        "  ",           // whitespace only
        "{",            // unterminated object
        "[1,]",         // trailing comma
        "{\"a\":1,}",   // trailing comma in object
        "{'a':1}",      // single quotes
        "{a:1}",        // unquoted key
        "01",           // leading zero
        "+1",           // leading plus
        "1.",           // bare trailing dot
        ".5",           // bare leading dot
        "NaN",          // not in RFC 8259
        "Infinity",     // ditto
        "nul",          // truncated literal
        "\"abc",        // unterminated string
        "\"\\x41\"",    // bad escape
        "\"\t\"",       // raw control char in string
        "1 2",          // trailing garbage
        "{} []",        // two documents
        "// hi\n1",     // comments
    };
    for (const char *text : bad) {
        auto v = JsonValue::parse(text);
        EXPECT_FALSE(v.ok()) << "accepted: " << text;
        if (!v.ok())
            EXPECT_EQ(v.error().code, util::ErrorCode::ParseError);
    }
}

TEST(GatewayJson, ErrorsCarryByteOffsets)
{
    auto v = JsonValue::parse("{\"a\": tru}");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("at byte"), std::string::npos)
        << v.error().message;
}

TEST(GatewayJson, RejectsDuplicateKeys)
{
    auto v = JsonValue::parse("{\"a\":1,\"a\":2}");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("duplicate"), std::string::npos)
        << v.error().message;
}

TEST(GatewayJson, DepthLimitIsEnforcedNotOverflowed)
{
    // 10k nested arrays must come back as a typed error, not a crash.
    std::string deep(10000, '[');
    deep += std::string(10000, ']');
    auto v = JsonValue::parse(deep);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.error().code, util::ErrorCode::ParseError);

    // Exactly at the limit parses fine.
    std::string ok(8, '[');
    ok += "1";
    ok += std::string(8, ']');
    EXPECT_TRUE(JsonValue::parse(ok, 16).ok());
    EXPECT_FALSE(JsonValue::parse(ok, 7).ok());
}

TEST(GatewayJson, QuoteRoundTripsThroughParse)
{
    const std::string nasty =
        "line\nbreak\ttab \"quotes\" back\\slash \x01 control";
    auto v = JsonValue::parse(jsonQuote(nasty));
    ASSERT_TRUE(v.ok()) << v.error().describe();
    EXPECT_EQ(v.value().asString(), nasty);
}

TEST(GatewayJson, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
    // Round-trips through the parser.
    auto v = JsonValue::parse(jsonNumber(0.1));
    ASSERT_TRUE(v.ok());
    EXPECT_DOUBLE_EQ(v.value().asNumber(), 0.1);
    // Non-finite values degrade to null rather than emitting invalid
    // JSON.
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

} // namespace
} // namespace ecolo::gateway
