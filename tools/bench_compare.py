#!/usr/bin/env python3
"""Gate perf regressions between two edgetherm bench JSON summaries.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                     [--normalize-by BENCHMARK] [--metric COUNTER]
                     [--direction {lower,higher}]

Compares every benchmark that reports the gated counter (``ns_per_slot``
by default) in both files and exits 1 if any of them regressed by more
than the threshold (default 15%). Exits 2 on usage or I/O errors, 0
otherwise. ``--direction higher`` flips the regression test for
throughput-style metrics (requests per second: a *drop* beyond the
threshold fails).

Raw nanoseconds are not comparable across machines, so CI passes
``--normalize-by`` with an anchor benchmark measured in the same run
(conventionally the dense reference kernel): each metric is divided by
the anchor's value in its own file first, which cancels the machine's
clock speed and leaves the *ratio* to the anchor -- a property of the
code, not the hardware. Without ``--normalize-by`` the comparison is
absolute and only meaningful on one machine (e.g. against a baseline
you just generated locally).

The input format is the ``edgetherm-bench-perf-v1`` summary that
bench_perf_kernels writes or the ``edgetherm-bench-serve-v1`` summary
that bench_serve_throughput writes (see docs/performance.md). Both
files must carry the same schema. Only Python's standard library is
used.
"""

import argparse
import json
import sys


def fail_usage(message):
    print("bench_compare: error: %s" % message, file=sys.stderr)
    sys.exit(2)


def load_metrics(path, metric):
    """Map benchmark name -> metric value for runs that report it."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        fail_usage("cannot read %s: %s" % (path, err))
    except json.JSONDecodeError as err:
        fail_usage("%s is not valid JSON: %s" % (path, err))

    schema = data.get("schema")
    known = ("edgetherm-bench-perf-v1", "edgetherm-bench-serve-v1")
    if schema not in known:
        fail_usage("%s has unexpected schema %r" % (path, schema))

    metrics = {}
    for run in data.get("benchmarks", []):
        value = run.get("counters", {}).get(metric)
        name = run.get("name")
        if name is None or value is None:
            continue
        if not isinstance(value, (int, float)) or value <= 0.0:
            fail_usage("%s: %s has non-positive %s" % (path, name, metric))
        metrics[name] = float(value)
    return metrics, schema


def normalize(metrics, anchor, path):
    if anchor not in metrics:
        fail_usage(
            "%s does not report the normalization anchor %r" % (path, anchor)
        )
    base = metrics[anchor]
    return {name: value / base for name, value in metrics.items()}


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Fail when a gated benchmark metric regresses.",
    )
    parser.add_argument("baseline", help="baseline BENCH_perf.json")
    parser.add_argument("current", help="current BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="allowed regression in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--normalize-by",
        metavar="BENCHMARK",
        help="divide each metric by this benchmark's value in the same "
        "file before comparing (hardware-independent ratios)",
    )
    parser.add_argument(
        "--metric",
        default="ns_per_slot",
        help="counter to gate on (default: %(default)s)",
    )
    parser.add_argument(
        "--direction",
        choices=("lower", "higher"),
        default="lower",
        help="whether lower or higher metric values are better "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        fail_usage("--threshold must be non-negative")

    baseline, baseline_schema = load_metrics(args.baseline, args.metric)
    current, current_schema = load_metrics(args.current, args.metric)
    if baseline_schema != current_schema:
        fail_usage(
            "schema mismatch: %s is %r but %s is %r"
            % (args.baseline, baseline_schema, args.current, current_schema)
        )
    if not baseline:
        fail_usage("%s reports no %s metrics" % (args.baseline, args.metric))
    if args.normalize_by:
        baseline = normalize(baseline, args.normalize_by, args.baseline)
        current = normalize(current, args.normalize_by, args.current)

    unit = "x anchor" if args.normalize_by else "ns"
    regressions = []
    width = max(len(name) for name in baseline)
    for name in sorted(baseline):
        if name not in current:
            print("MISSING   %-*s  (in baseline only; not gated)"
                  % (width, name))
            continue
        before, after = baseline[name], current[name]
        delta_pct = (after / before - 1.0) * 100.0
        regressed_pct = (
            delta_pct if args.direction == "lower" else -delta_pct
        )
        status = "OK"
        if regressed_pct > args.threshold:
            status = "REGRESSED"
            regressions.append((name, before, after, delta_pct))
        print(
            "%-10s%-*s  %12.4f -> %12.4f %s  (%+.1f%%)"
            % (status, width, name, before, after, unit, delta_pct)
        )
    for name in sorted(set(current) - set(baseline)):
        print("NEW       %-*s  %12.4f %s"
              % (width, name, current[name], unit))

    if regressions:
        print(
            "\nbench_compare: %d metric(s) regressed more than %.1f%%:"
            % (len(regressions), args.threshold),
            file=sys.stderr,
        )
        for name, before, after, delta_pct in regressions:
            print(
                "  %s: %.4f -> %.4f %s (%+.1f%%)"
                % (name, before, after, unit, delta_pct),
                file=sys.stderr,
            )
        return 1
    print("\nbench_compare: all %d gated metric(s) within %.1f%%"
          % (len([n for n in baseline if n in current]), args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
