/**
 * @file
 * edgetherm-serve: run simulations as a service over edgetherm-rpc-v2.
 *
 *   edgetherm_serve --port 4590 --workers 4 --drain-dir /var/spool/et
 *
 * Options:
 *   --port N          listen on 127.0.0.1:N (0 = ephemeral; the chosen
 *                     port is printed either way)
 *   --workers N       concurrent simulations (default 2)
 *   --max-queued N    admission bound across both lanes (default 32)
 *   --cache-mb N      result-cache budget in MiB (default 32)
 *   --cache-entries N result-cache entry budget (default 1024)
 *   --retry-after-ms N  backpressure hint for rejected clients
 *   --status-every N  STATUS frame granularity in simulated minutes
 *   --batch-window-ms N  how long a dispatching worker holds an
 *                     under-full micro-batch open for more
 *                     lane-compatible arrivals (default 2; interactive
 *                     requests never wait; 0 = batch only what is
 *                     already queued)
 *   --batch-lanes N   members per micro-batch (default 8, the SIMD
 *                     lane count)
 *   --no-batching     dispatch one scalar simulation per worker (the
 *                     pre-batching behavior; also disables the shared
 *                     setup cache)
 *   --drain-dir DIR   on drain, checkpoint in-flight runs here instead
 *                     of running them to their horizon
 *   --journal-dir DIR write-ahead journal admitted requests here; a
 *                     restarted server replays unfinished ones
 *   --chaos FILE      seed-reproducible network fault schedule applied
 *                     to every connection (chaos.* keys; see
 *                     docs/serving.md)
 *   --metrics-out FILE  dump serve.* + engine metrics JSON on exit
 *   --log-level LEVEL error | warn | info | debug
 *   --help            this text
 *
 * The server drains on SIGTERM/SIGINT or a SHUTDOWN frame: admission
 * stops, accepted work finishes (or checkpoints into --drain-dir), then
 * the process exits 0. Exit status follows edgetherm_cli's contract:
 * 0 success, 1 runtime failure, 2 usage error.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "faults/chaos.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/socket.hh"

namespace {

using namespace ecolo;

// Signal handlers may only touch lock-free atomics; the main loop polls.
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

struct ServeCliOptions
{
    serve::ServerOptions server;
    std::string metricsOut;
    std::string chaosFile;
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_serve [--port N] [--workers N]\n"
          "                       [--max-queued N] [--cache-mb N]\n"
          "                       [--cache-entries N] "
          "[--retry-after-ms N]\n"
          "                       [--status-every MINUTES] "
          "[--drain-dir DIR]\n"
          "                       [--batch-window-ms N] "
          "[--batch-lanes N] [--no-batching]\n"
          "                       [--journal-dir DIR] [--chaos FILE]\n"
          "                       [--metrics-out FILE] "
          "[--log-level LEVEL]\n"
          "                       [--help]\n";
}

template <typename... Args>
[[noreturn]] void
usageError(Args &&...args)
{
    printUsage(std::cerr);
    std::cerr << "edgetherm_serve: ";
    (std::cerr << ... << std::forward<Args>(args));
    std::cerr << "\n";
    std::exit(2);
}

long
parseLongArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid integer for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid integer for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range integer for ", flag, ": '", text, "'");
    }
}

long
parsePositiveArg(const char *flag, const char *text)
{
    const long v = parseLongArg(flag, text);
    if (v < 1)
        usageError(flag, " must be at least 1, got ", v);
    return v;
}

ServeCliOptions
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }

    ServeCliOptions opts;
    const std::size_t n = args.size();
    auto need_value = [&](std::size_t &i,
                          const std::string &flag) -> const char * {
        if (i + 1 >= n)
            usageError("missing value for ", flag);
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < n; ++i) {
        const char *arg = args[i].c_str();
        if (std::strcmp(arg, "--port") == 0) {
            const long port = parseLongArg(arg, need_value(i, arg));
            if (port < 0 || port > 65535)
                usageError("--port must be in [0, 65535], got ", port);
            opts.server.port = static_cast<std::uint16_t>(port);
        } else if (std::strcmp(arg, "--workers") == 0) {
            opts.server.numWorkers = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--max-queued") == 0) {
            opts.server.maxQueued = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--cache-mb") == 0) {
            opts.server.cacheMaxBytes =
                static_cast<std::size_t>(
                    parsePositiveArg(arg, need_value(i, arg)))
                << 20;
        } else if (std::strcmp(arg, "--cache-entries") == 0) {
            opts.server.cacheMaxEntries = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--retry-after-ms") == 0) {
            opts.server.retryAfterMs = static_cast<std::uint32_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--status-every") == 0) {
            opts.server.statusEveryMinutes =
                parsePositiveArg(arg, need_value(i, arg));
        } else if (std::strcmp(arg, "--batch-window-ms") == 0) {
            const long ms = parseLongArg(arg, need_value(i, arg));
            if (ms < 0 || ms > 60000)
                usageError("--batch-window-ms must be in [0, 60000], "
                           "got ", ms);
            opts.server.batchWindowMs = static_cast<std::uint32_t>(ms);
        } else if (std::strcmp(arg, "--batch-lanes") == 0) {
            opts.server.batchMaxLanes = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--no-batching") == 0) {
            opts.server.batching = false;
        } else if (std::strcmp(arg, "--drain-dir") == 0) {
            opts.server.drainCheckpointDir = need_value(i, arg);
        } else if (std::strcmp(arg, "--journal-dir") == 0) {
            opts.server.journalDir = need_value(i, arg);
        } else if (std::strcmp(arg, "--chaos") == 0) {
            opts.chaosFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--metrics-out") == 0) {
            opts.metricsOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--log-level") == 0) {
            const std::string text = need_value(i, arg);
            LogLevel level;
            if (!parseLogLevel(text, level)) {
                usageError("unknown --log-level '", text,
                           "' (expected error|warn|info|debug)");
            }
            setLogLevel(level);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option: ", arg);
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const ServeCliOptions opts = parseArgs(argc, argv);

    // Server::start() also installs this, but do it before any socket
    // exists: a dying peer must never take the service down.
    std::signal(SIGPIPE, SIG_IGN);

    if (!opts.chaosFile.empty()) {
        auto schedule = faults::loadChaosScheduleFile(opts.chaosFile);
        if (!schedule.ok()) {
            std::cerr << "edgetherm_serve: "
                      << schedule.error().describe() << "\n";
            return 1;
        }
        if (auto injector =
                faults::installGlobalChaosInjector(schedule.value())) {
            ecolo::inform("edgetherm-serve: chaos enabled (",
                          schedule.value().size(), " rule(s), seed ",
                          schedule.value().seed(), ")");
        }
    }

    serve::Server server(opts.server);
    if (auto started = server.start(); !started.ok()) {
        std::cerr << "edgetherm_serve: " << started.error().describe()
                  << "\n";
        return 1;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Drain on whichever comes first: a signal or a SHUTDOWN frame.
    while (g_signal.load(std::memory_order_relaxed) == 0 &&
           !server.drainRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (const int sig = g_signal.load(std::memory_order_relaxed);
        sig != 0) {
        ecolo::inform("edgetherm-serve: received ",
                      sig == SIGTERM ? "SIGTERM" : "signal", ", draining");
    }
    server.requestDrain();
    server.waitUntilStopped();

    const auto sched = server.schedulerStats();
    const auto cache = server.cacheStats();
    ecolo::inform("edgetherm-serve: drained (", sched.completed,
                  " completed, ", sched.cancelled, " cancelled, ",
                  cache.hits, " cache hits)");

    if (!opts.metricsOut.empty()) {
        std::ofstream os(opts.metricsOut, std::ios::trunc);
        if (!os) {
            std::cerr << "edgetherm_serve: cannot open metrics file: "
                      << opts.metricsOut << "\n";
            return 1;
        }
        os << server.metricsJson();
        if (!os) {
            std::cerr << "edgetherm_serve: short write to metrics file: "
                      << opts.metricsOut << "\n";
            return 1;
        }
    }
    return 0;
}
