/**
 * @file
 * edgetherm_client: submit simulation runs to edgetherm-serve.
 *
 *   edgetherm_client --port 4590 --policy myopic --days 30 --out run.md
 *   edgetherm_client --port 4590 --stats
 *   edgetherm_client --port 4590 --shutdown
 *
 * Options:
 *   --port N          server port (required)
 *   --host H          server host name or address (default 127.0.0.1);
 *                     resolution failure is a typed transport error
 *   --scenario FILE   key=value scenario file sent with the request
 *   --set KEY=VALUE   append one scenario line (repeatable)
 *   --policy NAME     standby | random | myopic | foresighted | oneshot
 *   --param X         policy parameter (server default when omitted)
 *   --days N          simulated days (default 30)
 *   --priority P      interactive | batch (default interactive)
 *   --client-id ID    fairness bucket (default "anon")
 *   --out FILE        write the report here instead of stdout
 *   --cancel-after-ms N  cancel the run N ms after it is accepted
 *                     (exercises cooperative cancellation)
 *   --deadline-ms N   request budget; the server answers
 *                     DEADLINE_EXCEEDED when it expires (default none)
 *   --retries N       total submit attempts on transport failure or
 *                     RETRY_AFTER, with capped exponential backoff
 *                     (default 1 = no retry)
 *   --timeout-ms N    per-connection receive timeout; a stalled server
 *                     read fails (and is retried) instead of hanging
 *   --connect-retries N  retry the initial connect (server startup races)
 *   --stats           fetch the server's metrics JSON and exit
 *   --shutdown        ask the server to drain and exit
 *   --quiet           suppress progress chatter on stderr
 *   --help            this text
 *
 * The report goes to stdout (or --out) and nothing else does, so
 * `edgetherm_client ... > run.md` captures exactly the report bytes.
 * Exit status: 0 completed; 1 transport/server failure; 2 usage error;
 * 3 backpressured (RETRY_AFTER); 4 cancelled; 5 drained; 6 deadline
 * exceeded.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"

namespace {

using namespace ecolo;

struct ClientCliOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    bool portSet = false;
    std::string scenarioFile;
    std::vector<std::string> overrides;
    serve::RequestSpec spec;
    std::string outFile;
    long cancelAfterMs = -1;
    serve::RetryPolicy retry{1, 50, 2000, 1};
    int timeoutMs = 0;
    int connectRetries = 20;
    bool stats = false;
    bool shutdown = false;
    bool quiet = false;
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_client --port N [--host H] "
          "[--scenario FILE] [--set KEY=VALUE]...\n"
          "                        [--policy NAME] [--param X] "
          "[--days N]\n"
          "                        [--priority interactive|batch]\n"
          "                        [--client-id ID] [--out FILE]\n"
          "                        [--cancel-after-ms N] "
          "[--deadline-ms N]\n"
          "                        [--retries N] [--timeout-ms N] "
          "[--connect-retries N]\n"
          "                        [--stats] [--shutdown] [--quiet] "
          "[--help]\n";
}

template <typename... Args>
[[noreturn]] void
usageError(Args &&...args)
{
    printUsage(std::cerr);
    std::cerr << "edgetherm_client: ";
    (std::cerr << ... << std::forward<Args>(args));
    std::cerr << "\n";
    std::exit(2);
}

double
parseDoubleArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid number for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid number for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range number for ", flag, ": '", text, "'");
    }
}

long
parseLongArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid integer for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid integer for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range integer for ", flag, ": '", text, "'");
    }
}

ClientCliOptions
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }

    ClientCliOptions opts;
    double days = 30.0;
    const std::size_t n = args.size();
    auto need_value = [&](std::size_t &i,
                          const std::string &flag) -> const char * {
        if (i + 1 >= n)
            usageError("missing value for ", flag);
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < n; ++i) {
        const char *arg = args[i].c_str();
        if (std::strcmp(arg, "--port") == 0) {
            const long port = parseLongArg(arg, need_value(i, arg));
            if (port < 1 || port > 65535)
                usageError("--port must be in [1, 65535], got ", port);
            opts.port = static_cast<std::uint16_t>(port);
            opts.portSet = true;
        } else if (std::strcmp(arg, "--host") == 0) {
            opts.host = need_value(i, arg);
            if (opts.host.empty())
                usageError("--host must not be empty");
        } else if (std::strcmp(arg, "--scenario") == 0) {
            opts.scenarioFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--set") == 0) {
            const std::string kv = need_value(i, arg);
            if (kv.find('=') == std::string::npos)
                usageError("--set expects KEY=VALUE, got '", kv, "'");
            opts.overrides.push_back(kv);
        } else if (std::strcmp(arg, "--policy") == 0) {
            opts.spec.policy = need_value(i, arg);
        } else if (std::strcmp(arg, "--param") == 0) {
            opts.spec.param = parseDoubleArg(arg, need_value(i, arg));
            opts.spec.paramSet = true;
        } else if (std::strcmp(arg, "--days") == 0) {
            days = parseDoubleArg(arg, need_value(i, arg));
            if (days <= 0.0)
                usageError("--days must be positive, got ", days);
        } else if (std::strcmp(arg, "--priority") == 0) {
            const std::string p = need_value(i, arg);
            if (p == "interactive")
                opts.spec.priority = serve::Priority::Interactive;
            else if (p == "batch")
                opts.spec.priority = serve::Priority::Batch;
            else
                usageError("unknown --priority '", p,
                           "' (expected interactive|batch)");
        } else if (std::strcmp(arg, "--client-id") == 0) {
            opts.spec.clientId = need_value(i, arg);
        } else if (std::strcmp(arg, "--out") == 0) {
            opts.outFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--cancel-after-ms") == 0) {
            opts.cancelAfterMs = parseLongArg(arg, need_value(i, arg));
            if (opts.cancelAfterMs < 0)
                usageError("--cancel-after-ms must be >= 0");
        } else if (std::strcmp(arg, "--deadline-ms") == 0) {
            const long ms = parseLongArg(arg, need_value(i, arg));
            if (ms < 1 || ms > 0x7fffffffL)
                usageError("--deadline-ms must be >= 1, got ", ms);
            opts.spec.deadlineMs = static_cast<std::uint32_t>(ms);
        } else if (std::strcmp(arg, "--retries") == 0) {
            const long tries = parseLongArg(arg, need_value(i, arg));
            if (tries < 1)
                usageError("--retries must be >= 1, got ", tries);
            opts.retry.maxAttempts = static_cast<std::size_t>(tries);
        } else if (std::strcmp(arg, "--timeout-ms") == 0) {
            const long ms = parseLongArg(arg, need_value(i, arg));
            if (ms < 1)
                usageError("--timeout-ms must be >= 1, got ", ms);
            opts.timeoutMs = static_cast<int>(ms);
        } else if (std::strcmp(arg, "--connect-retries") == 0) {
            opts.connectRetries = static_cast<int>(
                parseLongArg(arg, need_value(i, arg)));
            if (opts.connectRetries < 0)
                usageError("--connect-retries must be >= 0");
        } else if (std::strcmp(arg, "--stats") == 0) {
            opts.stats = true;
        } else if (std::strcmp(arg, "--shutdown") == 0) {
            opts.shutdown = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option: ", arg);
        }
    }
    if (!opts.portSet)
        usageError("--port is required");
    opts.spec.horizonMinutes =
        static_cast<std::int64_t>(days * 24.0 * 60.0);
    return opts;
}

/** The scenario text the server will parse: file content + overrides. */
util::Result<std::string>
buildScenarioText(const ClientCliOptions &opts)
{
    std::ostringstream text;
    if (!opts.scenarioFile.empty()) {
        std::ifstream is(opts.scenarioFile);
        if (!is) {
            return ECOLO_ERROR(util::ErrorCode::IoError,
                               "cannot open scenario file: ",
                               opts.scenarioFile);
        }
        text << is.rdbuf();
        text << "\n";
    }
    for (const std::string &kv : opts.overrides)
        text << kv << "\n";
    return text.str();
}

/** Retry the first connect: in scripts the server may still be binding. */
template <typename Fn>
auto
withConnectRetries(int retries, Fn &&fn) -> decltype(fn())
{
    for (int attempt = 0;; ++attempt) {
        auto result = fn();
        if (result.ok() || attempt >= retries)
            return result;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const ClientCliOptions opts = parseArgs(argc, argv);
    serve::ServeClient client(opts.host, opts.port);

    if (opts.stats) {
        auto stats = withConnectRetries(
            opts.connectRetries, [&] { return client.stats(); });
        if (!stats.ok()) {
            std::cerr << "edgetherm_client: " << stats.error().describe()
                      << "\n";
            return 1;
        }
        std::cout << stats.value() << "\n";
        return 0;
    }
    if (opts.shutdown) {
        auto down = withConnectRetries(
            opts.connectRetries, [&] { return client.shutdown(); });
        if (!down.ok()) {
            std::cerr << "edgetherm_client: " << down.error().describe()
                      << "\n";
            return 1;
        }
        if (!opts.quiet)
            std::cerr << "server acknowledged shutdown\n";
        return 0;
    }

    serve::RequestSpec spec = opts.spec;
    if (auto scenario = buildScenarioText(opts); scenario.ok()) {
        spec.scenarioText = scenario.take();
    } else {
        std::cerr << "edgetherm_client: " << scenario.error().describe()
                  << "\n";
        return 1;
    }

    // --cancel-after-ms: a second connection carries the CANCEL once
    // ACCEPTED has told us our request id.
    std::thread canceller;
    auto on_accepted = [&](std::uint64_t request_id,
                           const serve::AcceptedPayload &accepted) {
        if (!opts.quiet) {
            std::cerr << "request " << request_id
                      << (accepted.cacheHit
                              ? " answered from cache"
                              : " accepted (" +
                                    std::to_string(accepted.queueDepth) +
                                    " ahead)")
                      << "\n";
        }
        if (opts.cancelAfterMs >= 0 && !accepted.cacheHit) {
            const long delay = opts.cancelAfterMs;
            canceller = std::thread([&client, request_id, delay] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
                (void)client.cancel(request_id);
            });
        }
    };
    auto on_status = [&](const serve::StatusPayload &status) {
        if (!opts.quiet) {
            std::cerr << "progress: " << status.minutesDone << "/"
                      << status.horizonMinutes << " minutes\n";
        }
    };

    if (opts.timeoutMs > 0)
        client.setReceiveTimeoutMs(opts.timeoutMs);

    // --retries > 1 routes through submitWithRetry, which already
    // retries transport failures (subsuming the connect-retry loop) and
    // additionally honors RETRY_AFTER backpressure with backoff.
    auto outcome = opts.retry.maxAttempts > 1
                       ? client.submitWithRetry(spec, opts.retry, nullptr,
                                                on_accepted, on_status)
                       : withConnectRetries(opts.connectRetries, [&] {
                             return client.submit(spec, on_accepted,
                                                  on_status);
                         });
    if (canceller.joinable())
        canceller.join();
    if (!outcome.ok()) {
        std::cerr << "edgetherm_client: " << outcome.error().describe()
                  << "\n";
        return 1;
    }

    const serve::SubmitOutcome &result = outcome.value();
    switch (result.status) {
    case serve::OutcomeStatus::Completed: {
        if (opts.outFile.empty()) {
            std::cout << result.report;
        } else {
            std::ofstream os(opts.outFile, std::ios::trunc);
            if (!os) {
                std::cerr << "edgetherm_client: cannot open output file: "
                          << opts.outFile << "\n";
                return 1;
            }
            os << result.report;
            if (!os) {
                std::cerr << "edgetherm_client: short write to "
                          << opts.outFile << "\n";
                return 1;
            }
        }
        if (!opts.quiet)
            std::cerr << "completed"
                      << (result.cacheHit ? " (cache hit)" : "") << "\n";
        return 0;
    }
    case serve::OutcomeStatus::Cancelled:
        if (!opts.quiet)
            std::cerr << "cancelled after " << result.minutesDone
                      << " simulated minutes\n";
        return 4;
    case serve::OutcomeStatus::Drained:
        if (!opts.quiet) {
            std::cerr << "drained after " << result.minutesDone
                      << " simulated minutes";
            if (!result.checkpointPath.empty())
                std::cerr << "; checkpoint at " << result.checkpointPath;
            std::cerr << "\n";
        }
        return 5;
    case serve::OutcomeStatus::RetryLater:
        if (!opts.quiet)
            std::cerr << "server busy; retry after "
                      << result.retryAfterMs << " ms\n";
        return 3;
    case serve::OutcomeStatus::Error:
        if (result.errorCode == serve::RpcErrorCode::DeadlineExceeded) {
            std::cerr << "edgetherm_client: " << result.errorMessage
                      << "\n";
            return 6;
        }
        std::cerr << "edgetherm_client: server rejected the request: "
                  << result.errorMessage << "\n";
        return 1;
    }
    return 1;
}
