/**
 * @file
 * edgetherm_cli: run an edge-colocation thermal-attack scenario from the
 * command line.
 *
 *   edgetherm_cli --policy foresighted --param 14 --days 90
 *   edgetherm_cli --scenario site.cfg --set battery.capacityKwh=0.4 \
 *                 --csv run.csv
 *   edgetherm_cli --describe
 *
 * Options:
 *   --scenario FILE   load a key=value scenario file (see
 *                     src/core/scenario.hh for the key list)
 *   --set KEY=VALUE   override a single scenario key (repeatable)
 *   --policy NAME     standby | random | myopic | foresighted | oneshot
 *   --param X         policy parameter: attack probability (random),
 *                     load threshold in kW (myopic/oneshot), reward
 *                     weight w (foresighted)
 *   --days N          simulated days (default 30)
 *   --csv FILE        write the per-minute record stream as CSV
 *   --describe        print the effective configuration and exit
 *   --quiet           suppress the banner, print only the summary table
 *   --help            this text
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cost.hh"
#include "core/engine.hh"
#include "core/scenario.hh"
#include "core/report.hh"
#include "core/threat_assessment.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

struct CliOptions
{
    std::string scenarioFile;
    std::vector<std::string> overrides;
    std::string policy = "myopic";
    double param = 7.4;
    bool paramSet = false;
    double days = 30.0;
    std::string csvFile;
    std::string reportFile;
    bool describe = false;
    bool assess = false;
    bool quiet = false;
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_cli [--scenario FILE] [--set KEY=VALUE]...\n"
          "                     [--policy standby|random|myopic|"
          "foresighted|oneshot]\n"
          "                     [--param X] [--days N] [--csv FILE]\n"
          "                     [--report FILE.md]\n"
          "                     [--describe] [--assess] [--quiet] "
          "[--help]\n";
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto need_value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            ECOLO_FATAL("missing value for ", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--scenario") == 0) {
            opts.scenarioFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--set") == 0) {
            opts.overrides.emplace_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--policy") == 0) {
            opts.policy = need_value(i, arg);
        } else if (std::strcmp(arg, "--param") == 0) {
            opts.param = std::stod(need_value(i, arg));
            opts.paramSet = true;
        } else if (std::strcmp(arg, "--days") == 0) {
            opts.days = std::stod(need_value(i, arg));
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csvFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--report") == 0) {
            opts.reportFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--describe") == 0) {
            opts.describe = true;
        } else if (std::strcmp(arg, "--assess") == 0) {
            opts.assess = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            printUsage(std::cerr);
            ECOLO_FATAL("unknown option: ", arg);
        }
    }
    return opts;
}

double
defaultParamFor(const std::string &policy)
{
    if (policy == "random")
        return 0.08;
    if (policy == "myopic")
        return 7.4;
    if (policy == "foresighted")
        return 14.0;
    if (policy == "oneshot")
        return 7.0;
    return 0.0;
}

std::unique_ptr<AttackPolicy>
makePolicy(const std::string &name, double param,
           const SimulationConfig &config)
{
    if (name == "standby")
        return std::make_unique<StandbyPolicy>();
    if (name == "random")
        return makeRandomPolicy(config, param);
    if (name == "myopic")
        return makeMyopicPolicy(config, Kilowatts(param));
    if (name == "foresighted")
        return makeForesightedPolicy(config, param);
    if (name == "oneshot")
        return makeOneShotPolicy(config, Kilowatts(param), 0);
    ECOLO_FATAL("unknown policy '", name,
                "' (expected standby|random|myopic|foresighted|oneshot)");
}

void
writeCsvHeader(std::ostream &os)
{
    os << "minute,metered_kw,actual_heat_kw,attack_battery_kw,"
          "benign_kw,max_inlet_c,supply_c,battery_soc,action,"
          "capping,outage\n";
}

void
writeCsvRow(std::ostream &os, const MinuteRecord &r)
{
    os << r.time << ',' << r.meteredTotal.value() << ','
       << r.actualHeat.value() << ',' << r.attackBatteryPower.value()
       << ',' << r.benignPower.value() << ',' << r.maxInlet.value() << ','
       << r.supply.value() << ',' << r.batterySoc << ','
       << toString(r.action) << ',' << (r.cappingActive ? 1 : 0) << ','
       << (r.outage ? 1 : 0) << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);

    SimulationConfig config = SimulationConfig::paperDefault();
    KeyValueConfig kv;
    if (!opts.scenarioFile.empty())
        kv = KeyValueConfig::parseFile(opts.scenarioFile);
    for (const std::string &override_str : opts.overrides) {
        const auto eq = override_str.find('=');
        if (eq == std::string::npos)
            ECOLO_FATAL("--set expects KEY=VALUE, got '", override_str,
                        "'");
        kv.set(override_str.substr(0, eq), override_str.substr(eq + 1));
    }
    applyScenario(kv, config);

    if (opts.describe) {
        describeConfig(std::cout, config);
        return 0;
    }
    if (opts.assess) {
        printAssessment(std::cout, config, assessThreat(config));
        return 0;
    }

    const double param =
        opts.paramSet ? opts.param : defaultParamFor(opts.policy);
    Simulation sim(config, makePolicy(opts.policy, param, config));

    std::ofstream csv;
    if (!opts.csvFile.empty()) {
        csv.open(opts.csvFile);
        if (!csv)
            ECOLO_FATAL("cannot open CSV output file: ", opts.csvFile);
        writeCsvHeader(csv);
        sim.setMinuteCallback(
            [&](const MinuteRecord &r) { writeCsvRow(csv, r); });
    }

    if (!opts.quiet) {
        std::cout << "edgetherm: " << opts.policy << " (param "
                  << fixed(param, 2) << ") for " << fixed(opts.days, 1)
                  << " days, seed " << config.seed << "\n";
    }
    sim.runDays(opts.days);

    const auto &m = sim.metrics();
    TextTable table({"metric", "value"});
    table.addRow("attack time (h/day)", fixed(m.attackHoursPerDay(), 2));
    table.addRow("emergencies declared", m.emergencies());
    table.addRow("emergency time (%)",
                 fixed(100.0 * m.emergencyFraction(), 2));
    table.addRow("emergency hours / year-equivalent",
                 fixed(m.emergencyHoursPerYear(), 0));
    table.addRow("outages", m.outages());
    table.addRow("mean inlet rise (C)", fixed(m.inletRise().mean(), 2));
    table.addRow("hottest inlet (C)", fixed(m.maxInlet().max(), 1));
    table.addRow("norm. 95p latency in emergencies",
                 m.emergencyPerf().count()
                     ? fixed(m.emergencyPerf().mean(), 2)
                     : "n/a");
    const CostModel cost;
    table.addRow("attacker cost ($/yr)",
                 fixed(cost.attackerAnnualCost(config, m).total(), 0));
    table.addRow("tenant damage ($/yr)",
                 fixed(cost.benignAnnualCost(config, m).total(), 0));
    table.print(std::cout);

    if (!opts.reportFile.empty()) {
        ReportInputs inputs;
        inputs.policyName = opts.policy;
        inputs.policyParameter = param;
        inputs.simulatedDays = opts.days;
        saveMarkdownReport(opts.reportFile, config, m, inputs);
        if (!opts.quiet)
            std::cout << "markdown report written to " << opts.reportFile
                      << "\n";
    }
    if (!opts.csvFile.empty() && !opts.quiet)
        std::cout << "per-minute records written to " << opts.csvFile
                  << "\n";
    return 0;
}
