/**
 * @file
 * edgetherm_cli: run an edge-colocation thermal-attack scenario from the
 * command line.
 *
 *   edgetherm_cli --policy foresighted --param 14 --days 90
 *   edgetherm_cli --scenario site.cfg --set battery.capacityKwh=0.4 \
 *                 --csv run.csv
 *   edgetherm_cli --describe
 *
 * Options:
 *   --scenario FILE   load a key=value scenario file (see
 *                     src/core/scenario.hh for the key list)
 *   --set KEY=VALUE   override a single scenario key (repeatable)
 *   --policy NAME     standby | random | myopic | foresighted | oneshot
 *   --param X         policy parameter: attack probability (random),
 *                     load threshold in kW (myopic/oneshot), reward
 *                     weight w (foresighted)
 *   --days N          simulated days (default 30)
 *   --csv FILE        write the per-minute record stream as CSV
 *   --faults FILE     load a fault-injection timeline (fault.* keys; see
 *                     docs/faults.md) on top of the scenario's
 *   --checkpoint FILE periodically save the full simulation state to FILE
 *                     (atomic tmp+rename); if FILE already exists, resume
 *                     from it instead of cold-starting
 *   --checkpoint-every N
 *                     minutes between checkpoint writes (default 1440)
 *   --metrics-out FILE  dump the telemetry stats registry as JSON
 *   --events-out FILE   dump the structured event log as JSONL
 *   --profile-out FILE  record a Chrome trace (chrome://tracing, Perfetto)
 *   --log-level LEVEL   error | warn | info | debug (default info)
 *   --describe        print the effective configuration and exit
 *   --quiet           suppress the banner, print only the summary table
 *   --help            this text
 *
 * Every option also accepts the --flag=VALUE spelling. Any of the three
 * telemetry sinks enables collection; without them the run pays no
 * telemetry cost (and is bit-identical either way).
 *
 * Exit status: 0 on success; 2 on a usage error (unknown option, bad
 * flag value, unknown policy -- usage goes to stderr); 1 on a runtime
 * failure (unreadable files, I/O errors). Scripts can tell "you called
 * me wrong" from "the run went wrong".
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/cost.hh"
#include "core/engine.hh"
#include "telemetry/telemetry.hh"
#include "core/scenario.hh"
#include "core/report.hh"
#include "core/threat_assessment.hh"
#include "faults/schedule.hh"
#include "util/logging.hh"
#include "util/result.hh"
#include "util/table.hh"

namespace {

using namespace ecolo;
using namespace ecolo::core;

struct CliOptions
{
    std::string scenarioFile;
    std::vector<std::string> overrides;
    std::string policy = "myopic";
    double param = 7.4;
    bool paramSet = false;
    double days = 30.0;
    std::string csvFile;
    std::string faultsFile;
    std::string checkpointFile;
    long checkpointEvery = 1440;
    std::string reportFile;
    std::string metricsOut;
    std::string eventsOut;
    std::string profileOut;
    std::string logLevel;
    bool describe = false;
    bool assess = false;
    bool quiet = false;

    bool
    wantsTelemetry() const
    {
        return !metricsOut.empty() || !eventsOut.empty() ||
               !profileOut.empty();
    }
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_cli [--scenario FILE] [--set KEY=VALUE]...\n"
          "                     [--policy standby|random|myopic|"
          "foresighted|oneshot]\n"
          "                     [--param X] [--days N] [--csv FILE]\n"
          "                     [--faults FILE] [--checkpoint FILE]\n"
          "                     [--checkpoint-every N]\n"
          "                     [--report FILE.md]\n"
          "                     [--metrics-out FILE] [--events-out FILE]\n"
          "                     [--profile-out FILE] "
          "[--log-level LEVEL]\n"
          "                     [--describe] [--assess] [--quiet] "
          "[--help]\n";
}

/**
 * Caller misuse: usage to stderr, then the complaint, then exit 2
 * (distinct from ECOLO_FATAL's exit 1 for runtime failures).
 */
template <typename... Args>
[[noreturn]] void
usageError(Args &&...args)
{
    printUsage(std::cerr);
    std::cerr << "edgetherm_cli: ";
    (std::cerr << ... << std::forward<Args>(args));
    std::cerr << "\n";
    std::exit(2);
}

double
parseDoubleArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid number for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid number for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range number for ", flag, ": '", text, "'");
    }
}

long
parseLongArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid integer for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid integer for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range integer for ", flag, ": '", text, "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    // Normalize --flag=VALUE into the two-token form first, so every
    // option accepts both spellings (only the first '=' splits; --set's
    // KEY=VALUE payload survives intact).
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }

    CliOptions opts;
    const std::size_t n = args.size();
    auto need_value = [&](std::size_t &i,
                          const std::string &flag) -> const char * {
        if (i + 1 >= n)
            usageError("missing value for ", flag);
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < n; ++i) {
        const char *arg = args[i].c_str();
        if (std::strcmp(arg, "--scenario") == 0) {
            opts.scenarioFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--set") == 0) {
            opts.overrides.emplace_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--policy") == 0) {
            opts.policy = need_value(i, arg);
        } else if (std::strcmp(arg, "--param") == 0) {
            opts.param = parseDoubleArg(arg, need_value(i, arg));
            opts.paramSet = true;
        } else if (std::strcmp(arg, "--days") == 0) {
            opts.days = parseDoubleArg(arg, need_value(i, arg));
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csvFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--faults") == 0) {
            opts.faultsFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--checkpoint") == 0) {
            opts.checkpointFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
            opts.checkpointEvery = parseLongArg(arg, need_value(i, arg));
            if (opts.checkpointEvery < 1)
                usageError("--checkpoint-every must be at least 1");
        } else if (std::strcmp(arg, "--report") == 0) {
            opts.reportFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--metrics-out") == 0) {
            opts.metricsOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--events-out") == 0) {
            opts.eventsOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--profile-out") == 0) {
            opts.profileOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--log-level") == 0) {
            opts.logLevel = need_value(i, arg);
            LogLevel level;
            if (!parseLogLevel(opts.logLevel, level)) {
                usageError("unknown --log-level '", opts.logLevel,
                           "' (expected error|warn|info|debug)");
            }
            setLogLevel(level);
        } else if (std::strcmp(arg, "--describe") == 0) {
            opts.describe = true;
        } else if (std::strcmp(arg, "--assess") == 0) {
            opts.assess = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option: ", arg);
        }
    }
    return opts;
}

/** Shared factory; an unknown name is caller misuse, so exit 2. */
std::unique_ptr<AttackPolicy>
makePolicy(const std::string &name, double param,
           const SimulationConfig &config)
{
    auto policy = tryMakePolicyByName(config, name, param);
    if (!policy.ok())
        usageError(policy.error().message);
    return policy.take();
}

void
writeCsvHeader(std::ostream &os)
{
    os << "minute,metered_kw,actual_heat_kw,attack_battery_kw,"
          "benign_kw,max_inlet_c,supply_c,battery_soc,action,"
          "capping,outage,degraded,shed_fraction,estimate_stale\n";
}

void
writeCsvRow(std::ostream &os, const MinuteRecord &r)
{
    os << r.time << ',' << r.meteredTotal.value() << ','
       << r.actualHeat.value() << ',' << r.attackBatteryPower.value()
       << ',' << r.benignPower.value() << ',' << r.maxInlet.value() << ','
       << r.supply.value() << ',' << r.batterySoc << ','
       << toString(r.action) << ',' << (r.cappingActive ? 1 : 0) << ','
       << (r.outage ? 1 : 0) << ',' << (r.degraded ? 1 : 0) << ','
       << r.shedFraction << ',' << (r.estimateStale ? 1 : 0) << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);

    if (opts.wantsTelemetry()) {
        telemetry::setEnabled(true);
        if (!opts.profileOut.empty())
            telemetry::trace().begin();
    }

    SimulationConfig config = SimulationConfig::paperDefault();
    KeyValueConfig kv;
    if (!opts.scenarioFile.empty())
        kv = KeyValueConfig::parseFile(opts.scenarioFile);
    for (const std::string &override_str : opts.overrides) {
        const auto eq = override_str.find('=');
        if (eq == std::string::npos)
            usageError("--set expects KEY=VALUE, got '", override_str,
                       "'");
        kv.set(override_str.substr(0, eq), override_str.substr(eq + 1));
    }
    applyScenario(kv, config);

    if (!opts.faultsFile.empty()) {
        auto fault_kv = KeyValueConfig::tryParseFile(opts.faultsFile);
        if (!fault_kv.ok()) {
            std::cerr << "edgetherm_cli: " << fault_kv.error().describe()
                      << "\n";
            return 1;
        }
        auto schedule = faults::FaultSchedule::fromKeyValue(fault_kv.value());
        if (!schedule.ok()) {
            std::cerr << "edgetherm_cli: " << schedule.error().describe()
                      << "\n";
            return 1;
        }
        // Compose with any fault.* keys the scenario itself carried.
        for (const auto &event : schedule.value().events()) {
            if (const auto added = config.faultSchedule.add(event);
                !added.ok()) {
                std::cerr << "edgetherm_cli: " << added.error().describe()
                          << "\n";
                return 1;
            }
        }
    }

    if (opts.describe) {
        describeConfig(std::cout, config);
        return 0;
    }
    if (opts.assess) {
        printAssessment(std::cout, config, assessThreat(config));
        return 0;
    }

    const double param =
        opts.paramSet ? opts.param : defaultPolicyParam(opts.policy);
    auto sim = std::make_unique<Simulation>(
        config, makePolicy(opts.policy, param, config));

    // Resume rather than cold-start when a previous run left a
    // checkpoint behind; an unreadable/mismatched checkpoint degrades to
    // a cold start with a warning instead of killing the run.
    if (!opts.checkpointFile.empty() &&
        std::ifstream(opts.checkpointFile).good()) {
        if (const auto loaded = loadSimulationCheckpoint(
                opts.checkpointFile, *sim, opts.policy);
            !loaded.ok()) {
            std::cerr << "edgetherm_cli: checkpoint restore failed ("
                      << loaded.error().describe()
                      << "); cold-starting instead\n";
            sim = std::make_unique<Simulation>(
                config, makePolicy(opts.policy, param, config));
        } else if (!opts.quiet) {
            std::cout << "resumed from " << opts.checkpointFile
                      << " at minute " << sim->now() << "\n";
        }
    }

    std::ofstream csv;
    if (!opts.csvFile.empty()) {
        csv.open(opts.csvFile);
        if (!csv)
            ECOLO_FATAL("cannot open CSV output file: ", opts.csvFile);
        writeCsvHeader(csv);
        sim->setMinuteCallback(
            [&](const MinuteRecord &r) { writeCsvRow(csv, r); });
    }

    if (!opts.quiet) {
        std::cout << "edgetherm: " << opts.policy << " (param "
                  << fixed(param, 2) << ") for " << fixed(opts.days, 1)
                  << " days, seed " << config.seed << "\n";
    }
    if (opts.checkpointFile.empty()) {
        sim->runDays(opts.days);
    } else {
        const auto total = static_cast<MinuteIndex>(
            opts.days * static_cast<double>(kMinutesPerDay));
        while (sim->now() < total) {
            const MinuteIndex chunk = std::min<MinuteIndex>(
                opts.checkpointEvery, total - sim->now());
            sim->run(chunk);
            if (const auto saved = saveSimulationCheckpoint(
                    opts.checkpointFile, *sim, opts.policy);
                !saved.ok()) {
                std::cerr << "edgetherm_cli: checkpoint save failed ("
                          << saved.error().describe()
                          << "); continuing without\n";
            }
        }
    }

    const auto &m = sim->metrics();
    TextTable table({"metric", "value"});
    table.addRow("attack time (h/day)", fixed(m.attackHoursPerDay(), 2));
    table.addRow("emergencies declared", m.emergencies());
    table.addRow("emergency time (%)",
                 fixed(100.0 * m.emergencyFraction(), 2));
    table.addRow("emergency hours / year-equivalent",
                 fixed(m.emergencyHoursPerYear(), 0));
    table.addRow("outages", m.outages());
    table.addRow("degraded-mode minutes", m.degradedMinutes());
    table.addRow("mean inlet rise (C)", fixed(m.inletRise().mean(), 2));
    table.addRow("hottest inlet (C)", fixed(m.maxInlet().max(), 1));
    table.addRow("norm. 95p latency in emergencies",
                 m.emergencyPerf().count()
                     ? fixed(m.emergencyPerf().mean(), 2)
                     : "n/a");
    const CostModel cost;
    table.addRow("attacker cost ($/yr)",
                 fixed(cost.attackerAnnualCost(config, m).total(), 0));
    table.addRow("tenant damage ($/yr)",
                 fixed(cost.benignAnnualCost(config, m).total(), 0));
    table.print(std::cout);

    if (!opts.reportFile.empty()) {
        ReportInputs inputs;
        inputs.policyName = opts.policy;
        inputs.policyParameter = param;
        inputs.simulatedDays = opts.days;
        saveMarkdownReport(opts.reportFile, config, m, inputs);
        if (!opts.quiet)
            std::cout << "markdown report written to " << opts.reportFile
                      << "\n";
    }
    if (!opts.csvFile.empty() && !opts.quiet)
        std::cout << "per-minute records written to " << opts.csvFile
                  << "\n";

    // ---- Telemetry sinks (written last so they cover the whole run). ----
    if (!opts.metricsOut.empty()) {
        if (const auto r = telemetry::registry().writeJsonFile(
                opts.metricsOut);
            !r.ok()) {
            std::cerr << "edgetherm_cli: " << r.error().describe() << "\n";
            return 1;
        }
        if (!opts.quiet)
            std::cout << "metrics written to " << opts.metricsOut << "\n";
    }
    if (!opts.eventsOut.empty()) {
        if (const auto r = telemetry::events().writeJsonlFile(
                opts.eventsOut);
            !r.ok()) {
            std::cerr << "edgetherm_cli: " << r.error().describe() << "\n";
            return 1;
        }
        if (!opts.quiet)
            std::cout << "events written to " << opts.eventsOut << "\n";
    }
    if (!opts.profileOut.empty()) {
        telemetry::trace().end();
        if (const auto r = telemetry::trace().writeChromeJsonFile(
                opts.profileOut);
            !r.ok()) {
            std::cerr << "edgetherm_cli: " << r.error().describe() << "\n";
            return 1;
        }
        if (!opts.quiet)
            std::cout << "profile written to " << opts.profileOut << "\n";
    }
    return 0;
}
