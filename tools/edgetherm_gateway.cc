/**
 * @file
 * edgetherm-gateway: the HTTP/JSON coordinator in front of a sharded
 * edgetherm-serve cluster.
 *
 *   edgetherm_gateway --port 7470 \
 *       --workers 127.0.0.1:7471,127.0.0.1:7472
 *
 * Options:
 *   --port N            listen on 127.0.0.1:N (0 = ephemeral; the
 *                       chosen port is printed either way)
 *   --workers LIST      comma-separated host:port worker endpoints
 *                       (required; IPv6 literals as [addr]:port)
 *   --forwarders N      concurrent worker RPCs (default 4)
 *   --max-connections N client connection cap (default 128)
 *   --idle-timeout-ms N reap idle keep-alive clients (default 30000)
 *   --max-body-bytes N  request body cap (default 1 MiB)
 *   --retry-attempts N  per-worker submit attempts (default 3)
 *   --receive-timeout-ms N  worker conversation timeout (default 30000)
 *   --probe-interval-ms N   unhealthy-worker re-probe cadence
 *   --chaos FILE        seed-reproducible network fault schedule applied
 *                       to both client-facing and worker-facing sockets
 *   --metrics-out FILE  dump gateway.* metrics JSON on exit
 *   --log-level LEVEL   error | warn | info | debug
 *   --help              this text
 *
 * Drains on SIGTERM/SIGINT: the listener closes, streaming and queued
 * runs finish against the workers, then the process exits 0. Exit
 * status follows edgetherm_cli's contract: 0 success, 1 runtime
 * failure, 2 usage error.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "faults/chaos.hh"
#include "gateway/gateway.hh"
#include "util/logging.hh"

namespace {

using namespace ecolo;

// Signal handlers may only touch lock-free atomics; the main loop polls.
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

struct GatewayCliOptions
{
    gateway::GatewayOptions gateway;
    std::string workersText;
    std::string metricsOut;
    std::string chaosFile;
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_gateway --workers HOST:PORT[,HOST:PORT...]\n"
          "                         [--port N] [--forwarders N]\n"
          "                         [--max-connections N]\n"
          "                         [--idle-timeout-ms N]\n"
          "                         [--max-body-bytes N]\n"
          "                         [--retry-attempts N]\n"
          "                         [--receive-timeout-ms N]\n"
          "                         [--probe-interval-ms N]\n"
          "                         [--chaos FILE] [--metrics-out FILE]\n"
          "                         [--log-level LEVEL] [--help]\n";
}

template <typename... Args>
[[noreturn]] void
usageError(Args &&...args)
{
    printUsage(std::cerr);
    std::cerr << "edgetherm_gateway: ";
    (std::cerr << ... << std::forward<Args>(args));
    std::cerr << "\n";
    std::exit(2);
}

long
parseLongArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid integer for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid integer for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range integer for ", flag, ": '", text, "'");
    }
}

long
parsePositiveArg(const char *flag, const char *text)
{
    const long v = parseLongArg(flag, text);
    if (v < 1)
        usageError(flag, " must be at least 1, got ", v);
    return v;
}

GatewayCliOptions
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }

    GatewayCliOptions opts;
    const std::size_t n = args.size();
    auto need_value = [&](std::size_t &i,
                          const std::string &flag) -> const char * {
        if (i + 1 >= n)
            usageError("missing value for ", flag);
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < n; ++i) {
        const char *arg = args[i].c_str();
        if (std::strcmp(arg, "--port") == 0) {
            const long port = parseLongArg(arg, need_value(i, arg));
            if (port < 0 || port > 65535)
                usageError("--port must be in [0, 65535], got ", port);
            opts.gateway.port = static_cast<std::uint16_t>(port);
        } else if (std::strcmp(arg, "--workers") == 0) {
            opts.workersText = need_value(i, arg);
        } else if (std::strcmp(arg, "--forwarders") == 0) {
            opts.gateway.numForwarders = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--max-connections") == 0) {
            opts.gateway.maxConnections = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--idle-timeout-ms") == 0) {
            opts.gateway.idleTimeoutMs = static_cast<int>(
                parseLongArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--max-body-bytes") == 0) {
            opts.gateway.http.maxBodyBytes = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--retry-attempts") == 0) {
            opts.gateway.pool.retry.maxAttempts =
                static_cast<std::size_t>(
                    parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--receive-timeout-ms") == 0) {
            opts.gateway.pool.receiveTimeoutMs = static_cast<int>(
                parseLongArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--probe-interval-ms") == 0) {
            opts.gateway.pool.probeIntervalMs = static_cast<int>(
                parseLongArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--chaos") == 0) {
            opts.chaosFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--metrics-out") == 0) {
            opts.metricsOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--log-level") == 0) {
            const std::string text = need_value(i, arg);
            LogLevel level;
            if (!parseLogLevel(text, level)) {
                usageError("unknown --log-level '", text,
                           "' (expected error|warn|info|debug)");
            }
            setLogLevel(level);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option: ", arg);
        }
    }
    if (opts.workersText.empty())
        usageError("--workers is required");
    auto workers = gateway::parseWorkerList(opts.workersText);
    if (!workers.ok())
        usageError(workers.error().message);
    opts.gateway.workers = workers.take();
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    GatewayCliOptions opts = parseArgs(argc, argv);

    // A dying peer (client or worker) must never take the gateway down.
    std::signal(SIGPIPE, SIG_IGN);

    if (!opts.chaosFile.empty()) {
        auto schedule = faults::loadChaosScheduleFile(opts.chaosFile);
        if (!schedule.ok()) {
            std::cerr << "edgetherm_gateway: "
                      << schedule.error().describe() << "\n";
            return 1;
        }
        if (auto injector =
                faults::installGlobalChaosInjector(schedule.value())) {
            ecolo::inform("edgetherm-gateway: chaos enabled (",
                          schedule.value().size(), " rule(s), seed ",
                          schedule.value().seed(), ")");
        }
    }

    gateway::Gateway gw(std::move(opts.gateway));
    if (auto started = gw.start(); !started.ok()) {
        std::cerr << "edgetherm_gateway: " << started.error().describe()
                  << "\n";
        return 1;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    while (g_signal.load(std::memory_order_relaxed) == 0 &&
           !gw.drainRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (const int sig = g_signal.load(std::memory_order_relaxed);
        sig != 0) {
        ecolo::inform("edgetherm-gateway: received ",
                      sig == SIGTERM ? "SIGTERM" : "signal",
                      ", draining");
    }

    // Snapshot before teardown: metricsJson is safe while running, and
    // the drained gateway has nothing new to say.
    const std::string metrics = gw.metricsJson();
    gw.requestDrain();
    gw.waitUntilStopped();

    const auto http = gw.httpStats();
    ecolo::inform("edgetherm-gateway: drained (", http.requests,
                  " requests, ", http.responses2xx, " ok, ",
                  http.responses4xx + http.responses5xx, " errors)");

    if (!opts.metricsOut.empty()) {
        std::ofstream os(opts.metricsOut, std::ios::trunc);
        if (!os) {
            std::cerr
                << "edgetherm_gateway: cannot open metrics file: "
                << opts.metricsOut << "\n";
            return 1;
        }
        os << metrics;
        if (!os) {
            std::cerr
                << "edgetherm_gateway: short write to metrics file: "
                << opts.metricsOut << "\n";
            return 1;
        }
    }
    return 0;
}
