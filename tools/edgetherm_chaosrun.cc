/**
 * @file
 * edgetherm_chaosrun: the chaos invariant harness for edgetherm-serve.
 *
 * Starts an in-process server, installs a seed-reproducible network
 * chaos schedule on every socket in the process (both the server's and
 * the clients' ends), then hammers the server from concurrent client
 * threads using the retrying client. Every request's expected report is
 * rendered up front by driving the simulation engine directly, so the
 * harness can assert the serving invariant exactly:
 *
 *   every submitted request terminates with either a byte-identical
 *   report or a typed error -- never silence, and never wrong bytes.
 *
 * Transport failures mid-conversation are what the chaos layer injects
 * on purpose; the retrying client is expected to absorb them (the
 * content-addressed cache makes re-submits idempotent). A request whose
 * retries are exhausted without a typed answer counts as a violation,
 * as does a completed report whose bytes differ from the reference.
 *
 *   edgetherm_chaosrun --seed 7 --requests 48 --threads 8 \
 *                      --metrics-out tail_latency.json
 *
 * Options:
 *   --seed N          chaos + jitter master seed (default 1)
 *   --requests N      total submits across all threads (default 24)
 *   --threads N       concurrent client threads (default 4)
 *   --retries N       per-request submit attempts (default 12)
 *   --timeout-ms N    per-connection receive timeout (default 5000)
 *   --chaos FILE      chaos schedule file; default: a built-in mixed
 *                     schedule (delays, short ops, drops, resets,
 *                     truncated frames) seeded from --seed
 *   --journal-dir DIR run the server with a write-ahead request journal
 *   --metrics-out FILE  dump the server's metrics JSON (includes
 *                     serve.latency.* per-lane tail latencies)
 *   --slo-p99-interactive-ms N  fail if the interactive lane's p99
 *                     exceeds this (measured at the server)
 *   --slo-p99-batch-ms N        same for the batch lane
 *   --quiet           summary only
 *   --help            this text
 *
 * Exit status: 0 invariant (and SLOs) held; 1 violation or runtime
 * failure; 2 usage error.
 */

#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "faults/chaos.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/sim_time.hh"

namespace {

using namespace ecolo;

struct ChaosRunOptions
{
    std::uint64_t seed = 1;
    std::size_t requests = 24;
    std::size_t threads = 4;
    std::size_t retries = 12;
    int timeoutMs = 5000;
    std::string chaosFile;
    std::string journalDir;
    std::string metricsOut;
    long sloP99InteractiveMs = 0; //!< 0 = not asserted
    long sloP99BatchMs = 0;
    bool quiet = false;
};

void
printUsage(std::ostream &os)
{
    os << "usage: edgetherm_chaosrun [--seed N] [--requests N] "
          "[--threads N]\n"
          "                          [--retries N] [--timeout-ms N]\n"
          "                          [--chaos FILE] [--journal-dir DIR]\n"
          "                          [--metrics-out FILE]\n"
          "                          [--slo-p99-interactive-ms N]\n"
          "                          [--slo-p99-batch-ms N] [--quiet] "
          "[--help]\n";
}

template <typename... Args>
[[noreturn]] void
usageError(Args &&...args)
{
    printUsage(std::cerr);
    std::cerr << "edgetherm_chaosrun: ";
    (std::cerr << ... << std::forward<Args>(args));
    std::cerr << "\n";
    std::exit(2);
}

long
parseLongArg(const char *flag, const char *text)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos);
        if (pos != std::strlen(text))
            usageError("invalid integer for ", flag, ": '", text, "'");
        return v;
    } catch (const std::invalid_argument &) {
        usageError("invalid integer for ", flag, ": '", text, "'");
    } catch (const std::out_of_range &) {
        usageError("out-of-range integer for ", flag, ": '", text, "'");
    }
}

long
parsePositiveArg(const char *flag, const char *text)
{
    const long v = parseLongArg(flag, text);
    if (v < 1)
        usageError(flag, " must be at least 1, got ", v);
    return v;
}

ChaosRunOptions
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }

    ChaosRunOptions opts;
    const std::size_t n = args.size();
    auto need_value = [&](std::size_t &i,
                          const std::string &flag) -> const char * {
        if (i + 1 >= n)
            usageError("missing value for ", flag);
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < n; ++i) {
        const char *arg = args[i].c_str();
        if (std::strcmp(arg, "--seed") == 0) {
            opts.seed = static_cast<std::uint64_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--requests") == 0) {
            opts.requests = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--threads") == 0) {
            opts.threads = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--retries") == 0) {
            opts.retries = static_cast<std::size_t>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--timeout-ms") == 0) {
            opts.timeoutMs = static_cast<int>(
                parsePositiveArg(arg, need_value(i, arg)));
        } else if (std::strcmp(arg, "--chaos") == 0) {
            opts.chaosFile = need_value(i, arg);
        } else if (std::strcmp(arg, "--journal-dir") == 0) {
            opts.journalDir = need_value(i, arg);
        } else if (std::strcmp(arg, "--metrics-out") == 0) {
            opts.metricsOut = need_value(i, arg);
        } else if (std::strcmp(arg, "--slo-p99-interactive-ms") == 0) {
            opts.sloP99InteractiveMs =
                parsePositiveArg(arg, need_value(i, arg));
        } else if (std::strcmp(arg, "--slo-p99-batch-ms") == 0) {
            opts.sloP99BatchMs =
                parsePositiveArg(arg, need_value(i, arg));
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option: ", arg);
        }
    }
    return opts;
}

/**
 * The default chaos mix: every fault kind, bounded by maxTriggers so a
 * finite retry budget always outlasts the destructive rules.
 */
faults::ChaosSchedule
builtinSchedule(std::uint64_t seed)
{
    faults::ChaosSchedule schedule;
    schedule.setSeed(seed);
    const auto add = [&schedule](faults::ChaosRule rule) {
        if (auto added = schedule.add(rule); !added.ok())
            ECOLO_FATAL("builtin chaos rule invalid: ",
                        added.error().message);
    };
    faults::ChaosRule delay;
    delay.kind = faults::ChaosKind::Delay;
    delay.op = faults::ChaosOp::Write;
    delay.probability = 0.05;
    delay.delayMs = 20;
    delay.maxTriggers = 40;
    add(delay);
    faults::ChaosRule short_op;
    short_op.kind = faults::ChaosKind::ShortOp;
    short_op.op = faults::ChaosOp::Both;
    short_op.probability = 0.2;
    short_op.maxBytes = 7;
    add(short_op);
    faults::ChaosRule drop;
    drop.kind = faults::ChaosKind::Drop;
    drop.op = faults::ChaosOp::Write;
    drop.everyOps = 97;
    drop.maxTriggers = 3;
    add(drop);
    faults::ChaosRule reset;
    reset.kind = faults::ChaosKind::Reset;
    reset.op = faults::ChaosOp::Write;
    reset.everyOps = 131;
    reset.afterOps = 50;
    reset.maxTriggers = 3;
    add(reset);
    faults::ChaosRule truncate;
    truncate.kind = faults::ChaosKind::Truncate;
    truncate.op = faults::ChaosOp::Write;
    truncate.everyOps = 181;
    truncate.maxTriggers = 2;
    truncate.maxBytes = 16;
    add(truncate);
    return schedule;
}

/** One submit target plus its pre-rendered reference report. */
struct Workload
{
    serve::RequestSpec spec;
    std::string expected;
};

/**
 * Render the report the server must produce, by the same path the
 * server takes: default config, named policy (server-default param),
 * run to the horizon, markdown report.
 */
util::Result<std::string>
renderReference(const std::string &policy_name,
                std::int64_t horizon_minutes)
{
    core::SimulationConfig config = core::SimulationConfig::paperDefault();
    ECOLO_TRY_VOID(config.validated());
    const double param = core::defaultPolicyParam(policy_name);
    auto policy = core::tryMakePolicyByName(config, policy_name, param);
    if (!policy)
        return policy.error();
    core::Simulation sim(config, policy.take());
    sim.run(horizon_minutes);
    std::ostringstream os;
    core::ReportInputs inputs;
    inputs.policyName = policy_name;
    inputs.policyParameter = param;
    inputs.simulatedDays = static_cast<double>(horizon_minutes) /
                           static_cast<double>(kMinutesPerDay);
    core::writeMarkdownReport(os, config, sim.metrics(), inputs);
    return os.str();
}

struct Tally
{
    std::atomic<std::uint64_t> completedMatch{0};
    std::atomic<std::uint64_t> completedMismatch{0};
    std::atomic<std::uint64_t> typedErrors{0};
    std::atomic<std::uint64_t> backpressured{0};
    std::atomic<std::uint64_t> transportExhausted{0};
    std::atomic<std::uint64_t> unexpectedOutcomes{0};
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> cacheHits{0};
};

} // namespace

int
main(int argc, char **argv)
{
    const ChaosRunOptions opts = parseArgs(argc, argv);

    // The distinct request shapes; duplicates across the request stream
    // exercise the result cache under chaos. Short horizons keep the
    // reference renders and the serving runs fast.
    const struct
    {
        const char *policy;
        std::int64_t days;
        serve::Priority priority;
    } kShapes[] = {
        {"standby", 1, serve::Priority::Interactive},
        {"myopic", 1, serve::Priority::Interactive},
        {"standby", 2, serve::Priority::Batch},
        {"foresighted", 1, serve::Priority::Batch},
    };

    std::vector<Workload> workloads;
    for (const auto &shape : kShapes) {
        Workload w;
        w.spec.policy = shape.policy;
        w.spec.priority = shape.priority;
        w.spec.horizonMinutes = shape.days * kMinutesPerDay;
        auto expected =
            renderReference(shape.policy, w.spec.horizonMinutes);
        if (!expected.ok()) {
            std::cerr << "edgetherm_chaosrun: reference render failed: "
                      << expected.error().describe() << "\n";
            return 1;
        }
        w.expected = expected.take();
        workloads.push_back(std::move(w));
    }

    // Chaos goes in before the server binds so every socket -- both
    // ends of every conversation -- sees the schedule.
    faults::ChaosSchedule schedule;
    if (!opts.chaosFile.empty()) {
        auto loaded = faults::loadChaosScheduleFile(opts.chaosFile);
        if (!loaded.ok()) {
            std::cerr << "edgetherm_chaosrun: "
                      << loaded.error().describe() << "\n";
            return 1;
        }
        schedule = loaded.take();
        schedule.setSeed(opts.seed);
    } else {
        schedule = builtinSchedule(opts.seed);
    }
    auto injector = faults::installGlobalChaosInjector(schedule);

    serve::ServerOptions server_options;
    server_options.port = 0;
    server_options.numWorkers = 2;
    server_options.maxQueued = opts.requests + opts.threads;
    server_options.journalDir = opts.journalDir;
    serve::Server server(server_options);
    if (auto started = server.start(); !started.ok()) {
        std::cerr << "edgetherm_chaosrun: server start failed: "
                  << started.error().describe() << "\n";
        return 1;
    }

    Tally tally;
    std::atomic<std::size_t> nextRequest{0};
    std::mutex report_mutex; // serializes violation reports on stderr

    const auto worker = [&](std::size_t thread_index) {
        serve::ServeClient client(server.port());
        client.setReceiveTimeoutMs(opts.timeoutMs);
        serve::RetryPolicy retry;
        retry.maxAttempts = opts.retries;
        retry.baseBackoffMs = 10;
        retry.maxBackoffMs = 500;
        retry.jitterSeed = opts.seed ^ (0x9e37u + thread_index);
        for (;;) {
            const std::size_t index =
                nextRequest.fetch_add(1, std::memory_order_relaxed);
            if (index >= opts.requests)
                return;
            const Workload &w = workloads[index % workloads.size()];
            serve::RequestSpec spec = w.spec;
            spec.clientId = "chaos-" + std::to_string(thread_index);
            std::size_t attempts = 0;
            bool cache_hit = false;
            auto outcome = client.submitWithRetry(
                spec, retry, &attempts,
                [&cache_hit](std::uint64_t,
                             const serve::AcceptedPayload &accepted) {
                    cache_hit = accepted.cacheHit;
                });
            tally.attempts.fetch_add(attempts,
                                     std::memory_order_relaxed);
            if (!outcome.ok()) {
                tally.transportExhausted.fetch_add(
                    1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(report_mutex);
                std::cerr << "VIOLATION: request " << index << " ("
                          << spec.policy
                          << "): no typed answer after " << attempts
                          << " attempts: "
                          << outcome.error().message << "\n";
                continue;
            }
            const serve::SubmitOutcome &result = outcome.value();
            switch (result.status) {
            case serve::OutcomeStatus::Completed:
                if (cache_hit)
                    tally.cacheHits.fetch_add(1,
                                              std::memory_order_relaxed);
                if (result.report == w.expected) {
                    tally.completedMatch.fetch_add(
                        1, std::memory_order_relaxed);
                } else {
                    tally.completedMismatch.fetch_add(
                        1, std::memory_order_relaxed);
                    std::lock_guard<std::mutex> lock(report_mutex);
                    std::cerr << "VIOLATION: request " << index << " ("
                              << spec.policy << "): report differs from "
                              << "the reference (" << result.report.size()
                              << " vs " << w.expected.size()
                              << " bytes)\n";
                }
                break;
            case serve::OutcomeStatus::Error:
                tally.typedErrors.fetch_add(1,
                                            std::memory_order_relaxed);
                break;
            case serve::OutcomeStatus::RetryLater:
                tally.backpressured.fetch_add(1,
                                              std::memory_order_relaxed);
                break;
            default:
                tally.unexpectedOutcomes.fetch_add(
                    1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(report_mutex);
                std::cerr << "VIOLATION: request " << index << " ("
                          << spec.policy << "): unexpected outcome "
                          << toString(result.status) << "\n";
                break;
            }
        }
    };

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < opts.threads; ++t)
        threads.emplace_back(worker, t);
    for (std::thread &thread : threads)
        thread.join();

    // Drain before snapshotting: the RESULT frame is written before the
    // job's latency/journal accounting runs, so a snapshot taken the
    // moment the last client returns could still miss it.
    server.requestDrain();
    server.waitUntilStopped();
    const std::string metrics = server.metricsJson();
    const auto interactive =
        server.latencySnapshot(serve::Lane::Interactive);
    const auto batch = server.latencySnapshot(serve::Lane::Batch);

    if (!opts.metricsOut.empty()) {
        std::ofstream os(opts.metricsOut, std::ios::trunc);
        os << metrics;
        if (!os) {
            std::cerr << "edgetherm_chaosrun: cannot write metrics to "
                      << opts.metricsOut << "\n";
            return 1;
        }
    }

    const std::uint64_t violations =
        tally.completedMismatch.load() + tally.transportExhausted.load() +
        tally.unexpectedOutcomes.load();
    if (!opts.quiet) {
        const auto lane = [](const char *name,
                             const telemetry::TailLatency::Snapshot &s) {
            std::cerr << "  " << name << ": n=" << s.count
                      << " p50=" << s.p50 / 1000.0
                      << "ms p95=" << s.p95 / 1000.0
                      << "ms p99=" << s.p99 / 1000.0
                      << "ms jitter=" << s.jitter / 1000.0 << "ms\n";
        };
        std::cerr << "chaosrun: seed " << opts.seed << ", "
                  << opts.requests << " requests, " << opts.threads
                  << " threads, " << tally.attempts.load()
                  << " attempts\n"
                  << "  completed " << tally.completedMatch.load()
                  << " byte-identical (" << tally.cacheHits.load()
                  << " cache hits), " << tally.typedErrors.load()
                  << " typed errors, " << tally.backpressured.load()
                  << " backpressured\n";
        lane("interactive", interactive);
        lane("batch", batch);
        if (injector) {
            const auto stats = injector->stats();
            std::cerr << "  chaos: " << stats.injected()
                      << " faults injected over " << stats.readOps
                      << " read + " << stats.writeOps << " write ops ("
                      << stats.delays << " delays, " << stats.shortOps
                      << " short ops, " << stats.drops << " drops, "
                      << stats.resets << " resets, " << stats.truncates
                      << " truncates)\n";
        }
    }

    bool slo_failed = false;
    const auto check_slo = [&](const char *name, long limit_ms,
                               double p99_us) {
        if (limit_ms > 0 && p99_us > static_cast<double>(limit_ms) * 1000.0) {
            std::cerr << "SLO VIOLATION: " << name << " p99 "
                      << p99_us / 1000.0 << "ms > " << limit_ms
                      << "ms\n";
            slo_failed = true;
        }
    };
    check_slo("interactive", opts.sloP99InteractiveMs, interactive.p99);
    check_slo("batch", opts.sloP99BatchMs, batch.p99);

    if (violations > 0) {
        std::cerr << "edgetherm_chaosrun: " << violations
                  << " invariant violation(s)\n";
        return 1;
    }
    if (tally.completedMatch.load() == 0) {
        std::cerr << "edgetherm_chaosrun: vacuous run -- nothing "
                     "completed\n";
        return 1;
    }
    if (slo_failed)
        return 1;
    std::cerr << "chaosrun: invariant held (" << tally.completedMatch.load()
              << " byte-identical completions, 0 silent failures)\n";
    return 0;
}
